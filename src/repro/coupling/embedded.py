"""The embedded-star-cluster simulation (Pelupessy & Portegies Zwart 2011).

This is the workload of every experiment in the paper (Sec. 6): "an early
star cluster is simulated, including the gas from which the stars formed.
The stars interact with the gas, which is eventually pushed out of the
cluster completely.  Also, the stars themselves evolve, leading to
several of the bigger stars exploding in a supernova during the
simulation."

Four models cooperate (paper Fig. 7):

* PhiGRAPE — gravity between stars (CPU or GPU kernel);
* SSE — stellar evolution (lookup; exchanged every n-th inner step);
* Gadget — SPH gas dynamics;
* Octgrav *or* Fi — the coupling model computing the mutual star↔gas
  gravity applied as bridge "p-kicks".

Stellar mass loss is pushed into the gravity model, and the lost mass
carries feedback energy into the surrounding gas (winds continuously,
supernovae impulsively), which is what expels the gas and produces the
four stages of paper Fig. 6.
"""

from __future__ import annotations

import numpy as np

from ..codes import EvolveGroup, Fi, Gadget, Octgrav, PhiGRAPE, SSE
from ..ic import (
    new_plummer_gas_model,
    new_plummer_model,
    new_salpeter_mass_distribution,
)
from ..units import nbody as nbody_system
from ..units import units as u
from ..units.core import Quantity
from .bridge import Bridge, CouplingField

__all__ = ["EmbeddedClusterSimulation", "ClusterDiagnostics"]

#: canonical kinetic energy released by one core-collapse supernova
SN_ENERGY = Quantity(1.0e44, u.J)


class ClusterDiagnostics(dict):
    """Snapshot of the cluster state; behaves as a plain dict with the
    keys: time_myr, bound_gas_fraction, gas_half_mass_radius_pc,
    star_half_mass_radius_pc, shell_radius_pc, stage, n_supernovae,
    total_star_mass_msun, gas_mass_msun."""

    @property
    def stage(self):
        return self["stage"]


class EmbeddedClusterSimulation:
    """Driver wiring the four models into one simulation.

    Parameters mirror the experiment knobs of Sec. 6: which kernel runs
    the gravity (``gravity_kernel``), which code does the coupling
    (``coupling_code`` — "octgrav" needs a GPU, "fi" is the CPU
    fallback), and which channel each worker uses.
    """

    def __init__(
        self,
        n_stars=64,
        n_gas=512,
        star_mass_fraction=0.25,
        cluster_radius=(0.5, "parsec"),
        mass_min=0.3,
        mass_max=25.0,
        gravity_kernel="cpu",
        coupling_code="fi",
        channel_type="direct",
        channel_types=None,
        bridge_timestep_myr=0.05,
        se_interval=5,
        wind_speed_kms=20.0,
        sn_efficiency=0.01,
        feedback_neighbours=8,
        rng=None,
        code_factory=None,
    ):
        self.rng = (
            rng if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        channels = dict(
            gravity=channel_type, hydro=channel_type,
            se=channel_type, coupling=channel_type,
        )
        if channel_types:
            channels.update(channel_types)

        # -- initial conditions ------------------------------------------------
        star_masses = new_salpeter_mass_distribution(
            n_stars, mass_min=mass_min, mass_max=mass_max, rng=self.rng
        )
        total_star_mass = star_masses.sum()
        total_mass = total_star_mass / star_mass_fraction
        gas_mass = total_mass - total_star_mass
        radius = Quantity(cluster_radius[0], getattr(u, cluster_radius[1]))
        self.converter = nbody_system.nbody_to_si(total_mass, radius)

        stars = new_plummer_model(
            n_stars, convert_nbody=self.converter, rng=self.rng
        )
        stars.mass = star_masses
        gas = new_plummer_gas_model(
            n_gas, convert_nbody=self.converter, rng=self.rng,
            gas_fraction=float(
                (gas_mass / total_mass).number
                * (gas_mass / total_mass).unit.factor
            ),
        )
        self.initial_stars = stars
        self.initial_gas = gas

        # -- model codes ------------------------------------------------------------
        make = code_factory or _default_code_factory
        self.gravity = make(
            PhiGRAPE, self.converter, channels["gravity"],
            kernel=gravity_kernel, eps2=1e-4, eta=0.05,
        )
        self.hydro = make(
            Gadget, self.converter, channels["hydro"],
            n_neighbours=16, max_dt=1.0 / 16.0,
        )
        self.se = make(SSE, None, channels["se"])
        coupling_cls = {"octgrav": Octgrav, "fi": Fi}[coupling_code]
        self.coupling = make(
            coupling_cls, self.converter, channels["coupling"], eps2=1e-4
        )
        self.coupling_name = coupling_code

        self.gravity.add_particles(stars)
        self.hydro.add_particles(gas)
        self.se.add_particles(stars)

        # -- bridge (paper Fig. 7) ------------------------------------------------------
        self.bridge = Bridge(
            timestep=Quantity(bridge_timestep_myr, u.Myr)
        )
        gas_on_stars = CouplingField(self.coupling, [self.hydro])
        stars_on_gas = CouplingField(self.coupling, [self.gravity])
        self.bridge.add_system(self.gravity, [gas_on_stars])
        self.bridge.add_system(self.hydro, [stars_on_gas])

        self.se_interval = int(se_interval)
        self.wind_speed = Quantity(wind_speed_kms, u.kms)
        self.sn_efficiency = float(sn_efficiency)
        self.feedback_neighbours = int(feedback_neighbours)
        self.iteration = 0
        self.n_supernovae = 0
        self._previous_types = np.asarray(
            self.se.particles.stellar_type
        ).copy()

        # conservation baselines for metrics(): the ensemble campaign
        # layer aggregates drift/loss relative to the initial state
        self._initial_star_mass_msun = float(
            stars.mass.value_in(u.MSun).sum()
        )
        self._initial_gas_mass_msun = float(
            gas.mass.value_in(u.MSun).sum()
        )
        self._initial_gravity_energy_j = float(
            self.gravity.total_energy.value_in(u.J)
        )

    # -- time stepping ---------------------------------------------------------

    @property
    def model_time(self):
        return self.bridge.time

    def evolve_one_iteration(self):
        """One outer iteration: a bridge KDK step, plus the slower
        stellar-evolution exchange every ``se_interval`` iterations."""
        target = self.bridge.time + self.bridge.timestep
        self.bridge.evolve_model(target)
        self.iteration += 1
        if self.iteration % self.se_interval == 0:
            self.exchange_stellar_evolution()
        return self.model_time

    def run(self, n_iterations, callback=None):
        """Run *n_iterations*; optional per-iteration callback(sim)."""
        for _ in range(int(n_iterations)):
            self.evolve_one_iteration()
            if callback is not None:
                callback(self)
        return self.diagnostics()

    # -- stellar evolution & feedback coupling --------------------------------------

    def exchange_stellar_evolution(self):
        """Advance SSE to the current time; apply mass loss to the
        gravity model and feedback energy to nearby gas."""
        self.se.evolve_model(self.model_time)
        new_mass = self.se.particles.mass
        old_mass = self.gravity.particles.mass
        dm = old_mass - new_mass
        dm_msun = np.maximum(dm.value_in(u.MSun), 0.0)

        types = np.asarray(self.se.particles.stellar_type)
        exploded = (types >= 13) & (self._previous_types < 13)
        self.n_supernovae += int(exploded.sum())

        # push masses: SE -> gravitational dynamics (paper Fig. 7)
        self.gravity.particles.mass = new_mass
        self.gravity.push_masses()

        if dm_msun.sum() > 0 and len(self.hydro.particles):
            self._inject_feedback(dm_msun, exploded)
        self._previous_types = types.copy()

    def _inject_feedback(self, dm_msun, exploded):
        """Deposit wind + SN energy into each losing star's nearest gas."""
        gas_pos = self.hydro.particles.position.value_in(u.m)
        star_pos = self.gravity.particles.position.value_in(u.m)
        gas_mass_kg = self.hydro.particles.mass.value_in(u.kg)
        k = min(self.feedback_neighbours, len(gas_pos))
        from scipy.spatial import cKDTree

        tree = cKDTree(gas_pos)
        losers = np.flatnonzero(dm_msun > 0)
        du_j_per_kg = np.zeros(len(gas_pos))
        wind_v = self.wind_speed.value_in(u.m / u.s)
        for star_idx in losers:
            _, neigh = tree.query(star_pos[star_idx], k=k)
            neigh = np.atleast_1d(neigh)
            if exploded[star_idx]:
                energy = self.sn_efficiency * SN_ENERGY.value_in(u.J)
            else:
                dm_kg = dm_msun[star_idx] * u.MSun.factor
                energy = 0.5 * dm_kg * wind_v ** 2
            du_j_per_kg[neigh] += energy / (
                gas_mass_kg[neigh].sum()
            )
        targets = np.flatnonzero(du_j_per_kg > 0)
        if len(targets):
            self.hydro.inject_energy(
                targets, Quantity(du_j_per_kg[targets], u.J / u.kg)
            )

    # -- diagnostics (Fig. 6 stages) ---------------------------------------------------

    def gas_specific_energy(self):
        """Specific energy of each gas particle in the combined
        potential (J/kg): ½v² + u + φ_stars + φ_gas."""
        gas = self.hydro.particles
        v2 = (gas.velocity.value_in(u.m / u.s) ** 2).sum(axis=1)
        uu = gas.u.value_in(u.J / u.kg)
        phi_gas = self.hydro.get_potential_at_point(
            Quantity(0.0, u.m), gas.position
        ).value_in(u.J / u.kg)
        phi_stars = CouplingField(
            self.coupling, [self.gravity]
        ).get_potential_at_point(
            Quantity(0.0, u.m), gas.position
        ).value_in(u.J / u.kg)
        return 0.5 * v2 + uu + phi_gas + phi_stars

    def diagnostics(self):
        """Snapshot used by the Fig. 6 stage bench and the examples."""
        gas = self.hydro.particles
        stars = self.gravity.particles
        espec = self.gas_specific_energy()
        gm = gas.mass.value_in(u.MSun)
        bound_fraction = float(gm[espec < 0].sum() / gm.sum())

        star_center = stars.center_of_mass()
        gas_r_pc = np.linalg.norm(
            gas.position.value_in(u.parsec)
            - star_center.value_in(u.parsec),
            axis=1,
        )
        shell_radius = float(np.median(gas_r_pc))
        gas_half = _half_mass_radius(gas_r_pc, gm)
        star_r_pc = np.linalg.norm(
            stars.position.value_in(u.parsec)
            - star_center.value_in(u.parsec),
            axis=1,
        )
        star_half = _half_mass_radius(
            star_r_pc, stars.mass.value_in(u.MSun)
        )
        return ClusterDiagnostics(
            time_myr=float(self.model_time.value_in(u.Myr)),
            iteration=self.iteration,
            bound_gas_fraction=bound_fraction,
            gas_half_mass_radius_pc=gas_half,
            star_half_mass_radius_pc=star_half,
            shell_radius_pc=shell_radius,
            n_supernovae=self.n_supernovae,
            total_star_mass_msun=float(
                stars.mass.value_in(u.MSun).sum()
            ),
            gas_mass_msun=float(gm.sum()),
            stage=_classify_stage(bound_fraction),
        )

    def metrics(self):
        """Scalar conservation metrics for campaign aggregation.

        Energy drift is measured on the stellar-dynamics code (the
        bridge's kicks and SN feedback make the *total* energy
        intentionally non-conserved); mass metrics are fractions of
        the initial star/gas reservoirs.  Everything is a plain float
        so the dict feeds straight into
        :class:`~repro.ensemble.aggregate.StreamingAggregate` and a
        JSON result cache entry.
        """
        d = self.diagnostics()
        e0 = self._initial_gravity_energy_j
        e1 = float(self.gravity.total_energy.value_in(u.J))
        star_loss = 1.0 - (
            d["total_star_mass_msun"] / self._initial_star_mass_msun
        )
        gas_loss = 1.0 - (
            d["gas_mass_msun"] / self._initial_gas_mass_msun
        )
        return {
            "energy_drift": abs((e1 - e0) / e0) if e0 else 0.0,
            "mass_loss": star_loss,
            "gas_mass_loss": gas_loss,
            "bound_gas_fraction": d["bound_gas_fraction"],
            "time_myr": d["time_myr"],
            "n_supernovae": float(d["n_supernovae"]),
        }

    def stop(self):
        EvolveGroup(
            (self.gravity, self.hydro, self.se, self.coupling)
        ).stop()

    # -- cost-model hooks ----------------------------------------------------------

    def codes_by_role(self):
        """role -> high-level code, for deployment/cost accounting."""
        return {
            "gravity": self.gravity,
            "hydro": self.hydro,
            "se": self.se,
            "coupling": self.coupling,
        }


def _default_code_factory(cls, converter, channel_type, **params):
    if converter is None:
        return cls(channel_type=channel_type, **params)
    return cls(converter, channel_type=channel_type, **params)


def _half_mass_radius(radii, masses):
    order = np.argsort(radii)
    cum = np.cumsum(masses[order])
    if cum[-1] <= 0:
        return 0.0
    idx = int(np.searchsorted(cum, 0.5 * cum[-1]))
    return float(radii[order][min(idx, len(radii) - 1)])


def _classify_stage(bound_fraction):
    """Map bound-gas fraction to the four stages of paper Fig. 6."""
    if bound_fraction > 0.8:
        return "embedded"
    if bound_fraction > 0.4:
        return "expanding"
    if bound_fraction > 0.1:
        return "shell"
    return "expelled"
