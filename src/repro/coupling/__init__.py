"""The AMUSE coupler: BRIDGE coupling and the embedded-cluster driver."""

from .bridge import Bridge, CouplingField
from .embedded import ClusterDiagnostics, EmbeddedClusterSimulation

__all__ = [
    "Bridge",
    "CouplingField",
    "EmbeddedClusterSimulation",
    "ClusterDiagnostics",
]
