"""BRIDGE-style coupling of independently evolving model codes.

Paper Fig. 7 shows the AMUSE gravitational/hydro/stellar-evolution
integrator: during one time step of the combined solver the gas dynamics
and gravitational (stellar) dynamics models *evolve in parallel*, and the
mutual gravity between the two systems is applied as half-step velocity
kicks ("p-kicks") computed by the *coupling model* (Octgrav on a GPU or
Fi on a CPU).

:class:`Bridge` implements that second-order kick–drift–kick operator
splitting (Fujii et al. 2007), with the drift phase issued as
*asynchronous* channel calls so the models genuinely overlap — this is
the inter-model parallelism that makes the paper's jungle scenario 4
faster than any single-resource scenario.

:class:`CouplingField` wraps a tree code as the field solver: before
every kick it uploads the current source-particle configuration and
evaluates gravity at the kicked system's positions, exactly the role
Octgrav/Fi play in the embedded-cluster run.
"""

from __future__ import annotations

import numpy as np

from ..codes.group import EvolveGroup
from ..rpc import AggregateRequestError, remote_method, wait_all
from ..units import nbody as nbody_system
from ..units.core import Quantity

__all__ = ["Bridge", "CouplingField"]


class CouplingField:
    """A tree code acting as gravity-field solver for bridge kicks.

    Each field evaluation issues ONE batched frame over the channel:
    the source-particle upload and the field query travel together and
    the worker executes them in order — halving the round trips per
    kick compared to one frame per call.  Both queries are
    :class:`~repro.rpc.futures.remote_method`\\ s, so the bridge can
    launch every system's field evaluation asynchronously and overlap
    them (``field.get_gravity_at_point.async_(...)``).
    """

    def __init__(self, field_code, source_systems, eps=None):
        """*field_code* is a high-level tree code (Octgrav/Fi); *source
        systems* are the codes whose particles generate the field."""
        self.code = field_code
        self.sources = list(source_systems)
        self.eps = eps

    def _gather_sources(self):
        masses = []
        positions = []
        for system in self.sources:
            p = system.particles
            masses.append(self.code._to_code(p.mass, self.code._MASS_UNIT))
            positions.append(
                self.code._to_code(p.position, self.code._LENGTH_UNIT)
            )
        return np.concatenate(masses), np.concatenate(positions)

    @remote_method
    def get_gravity_at_point(self, eps, points):
        return self.code.get_gravity_at_point.async_(
            self.eps or eps, points, sources=self._gather_sources()
        )

    @remote_method
    def get_potential_at_point(self, eps, points):
        return self.code.get_potential_at_point.async_(
            self.eps or eps, points, sources=self._gather_sources()
        )


class Bridge:
    """Kick–drift–kick coupling of multiple dynamical systems.

    Each registered system owns its particles and integrator; its
    *partners* provide the external gravity it feels.  ``evolve_model``
    advances everything to the requested time in steps of ``timestep``.

    Parameters
    ----------
    timestep : Quantity (time)
        The bridge (outer) step; models sub-cycle internally.
    use_async : bool
        Issue drift calls asynchronously (parallel models, as in the
        paper).  Synchronous mode exists for the coupler-bottleneck
        ablation benchmark.
    """

    def __init__(self, timestep, use_async=True):
        self.timestep = timestep
        self.use_async = use_async
        self.systems = []          # (code, partners)
        self.time = None
        #: wall-clock style accounting for the monitoring displays
        self.kick_count = 0
        self.drift_count = 0

    def add_system(self, code, partners=()):
        """Register *code*; *partners* are field providers (codes or
        :class:`CouplingField` instances) whose gravity kicks it."""
        self.systems.append((code, list(partners)))
        if self.time is None:
            self.time = code.model_time
        return code

    @property
    def group(self):
        """The registered codes as an :class:`EvolveGroup` — derived
        from ``systems`` so the two can never fall out of sync."""
        return EvolveGroup([code for code, _ in self.systems])

    @property
    def particles(self):
        """All particles across systems (fresh copies, script units)."""
        sets = [code.particles for code, _ in self.systems]
        out = sets[0].copy()
        for more in sets[1:]:
            out.add_particles(more.copy())
        return out

    # -- phases ------------------------------------------------------------

    def kick_systems(self, dt):
        """Apply partner gravity to every system for interval *dt*.

        All field evaluations are launched asynchronously first — the
        uploads and queries of every (system, partner) pair pipeline
        over the channels and overlap — then each system's kick is
        launched as its accelerations resolve (one ``add_velocity``
        round trip per code, overlapping across codes) and joined at
        the end.
        """
        softening = Quantity(0.0, nbody_system.length)
        pending = []
        try:
            for code, partners in self.systems:
                if not partners or not len(code.particles):
                    continue
                pos = code.particles.position
                eps = self._eps_for(code, softening)
                futures = []
                pending.append((code, futures))
                for partner in partners:
                    futures.append((
                        partner,
                        partner.get_gravity_at_point.async_(eps, pos),
                    ))
        except BaseException:
            # a failed launch (stopped partner) must not leave the
            # earlier systems' field futures dangling un-joined
            for _code, futures in pending:
                for _partner, future in futures:
                    future.exception()
            raise
        # every launched kick future is ALWAYS joined below, even when
        # a sibling's field query or kick fails — otherwise its
        # in-flight 'kick' transition would strand and its mirror
        # would diverge from the worker; the first error is re-raised
        # after the joins
        errors = []
        kicks = []
        kick_attempts = 0
        for code, futures in pending:
            total = None
            failed = False
            for partner, future in futures:
                try:
                    acc = future.result()
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    # name the FIELD PROVIDER that failed (the future's
                    # description carries the field code's class), not
                    # the system being kicked
                    errors.append((
                        getattr(future, "description", None)
                        or f"{type(partner).__name__} field for "
                           f"{type(code).__name__}",
                        exc,
                    ))
                    failed = True
                    continue
                total = acc if total is None else total + acc
            if failed or errors:
                # after the first failure no FURTHER kicks are
                # launched (kicks already in flight for earlier
                # systems are still joined and mirrored below); the
                # remaining field futures above still get joined
                continue
            dv = total * dt
            kick_attempts += 1
            try:
                kicks.append((code, dv, code.kick.async_(dv)))
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append((f"{type(code).__name__}.kick", exc))
        for code, dv, future in kicks:
            try:
                future.result()
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append((f"{type(code).__name__}.kick", exc))
                continue
            # keep the local mirror coherent with the worker
            code.particles.velocity = code.particles.velocity + dv
        if errors:
            # the same error surface as the drift phase's wait_all:
            # one aggregate naming every failed model, out of all the
            # field/kick calls this phase attempted
            attempted = sum(
                len(futures) for _c, futures in pending
            ) + kick_attempts
            raise AggregateRequestError(errors, total=attempted)
        self.kick_count += 1

    def _eps_for(self, code, default):
        if self.systems and code.converter is not None:
            return code.converter.to_si(default)
        return default

    def drift_systems(self, t_end):
        """Evolve every system to *t_end*, in parallel when async.

        The async path goes through the :class:`EvolveGroup`: every
        code's ``evolve_model.async_`` future is launched, the workers
        advance concurrently, and the join refreshes each mirror —
        the inter-model parallelism of the paper's jungle scenario.
        Synchronous mode evolves one code at a time (the
        coupler-bottleneck ablation).
        """
        if self.use_async:
            wait_all(self.group.evolve_async(t_end))
        else:
            for code, _ in self.systems:
                code.evolve_model(t_end)
        self.drift_count += 1

    # -- main loop --------------------------------------------------------------

    def evolve_model(self, t_end):
        """Advance the coupled system to *t_end* (script-side units)."""
        if self.time is None:
            raise RuntimeError("no systems registered")
        while self.time < t_end - 1e-12 * self.timestep:
            dt = self.timestep
            remaining = t_end - self.time
            if remaining < dt:
                dt = remaining
            self.kick_systems(dt * 0.5)
            self.drift_systems(self.time + dt)
            self.kick_systems(dt * 0.5)
            self.time = self.time + dt
        return self.time

    # -- diagnostics --------------------------------------------------------------

    def kinetic_energy(self):
        total = None
        for code, _ in self.systems:
            e = code.kinetic_energy
            total = e if total is None else total + e
        return total

    def potential_energy(self):
        """Internal potential energies plus cross terms via partners."""
        total = None
        for code, _ in self.systems:
            e = code.potential_energy
            total = e if total is None else total + e
        # cross-system potential (each pair counted once via kick fields)
        for i, (code, partners) in enumerate(self.systems):
            if not partners or not len(code.particles):
                continue
            pos = code.particles.position
            for partner in partners:
                phi = partner.get_potential_at_point(
                    self._eps_for(code, Quantity(0.0, nbody_system.length)),
                    pos,
                )
                cross = (code.particles.mass * phi).sum() * 0.5
                total = cross if total is None else total + cross
        return total

    def stop(self):
        # the group knows the cleanup protocol: skip stopped members,
        # force-shutdown busy ones, never leak the rest of the workers
        self.group.stop()
