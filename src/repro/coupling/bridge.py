"""BRIDGE-style coupling of independently evolving model codes.

Paper Fig. 7 shows the AMUSE gravitational/hydro/stellar-evolution
integrator: during one time step of the combined solver the gas dynamics
and gravitational (stellar) dynamics models *evolve in parallel*, and the
mutual gravity between the two systems is applied as half-step velocity
kicks ("p-kicks") computed by the *coupling model* (Octgrav on a GPU or
Fi on a CPU).

:class:`Bridge` implements that second-order kick–drift–kick operator
splitting (Fujii et al. 2007).  In async mode each step runs as a
:class:`~repro.rpc.taskgraph.TaskGraph` with *per-edge* joins instead
of three phase barriers: per system the chain is ``kick1 → drift →
kick2``, and a system's second kick additionally waits only for the
drifts of the systems that SOURCE its coupling fields.  Systems whose
partner graphs are disjoint therefore pipeline independently — a fast
code's kicks ride the slack of the slowest drift (paper Fig. 7's
uneven per-model costs) instead of queueing at a global barrier.  The
numerics are identical to the barrier schedule: every field
evaluation still reads exactly the mirror state the operator
splitting prescribes, because the graph edges encode precisely those
data dependencies.  This is the inter-model parallelism that makes
the paper's jungle scenario 4 faster than any single-resource
scenario.

:class:`CouplingField` wraps a tree code as the field solver: before
every kick it uploads the current source-particle configuration and
evaluates gravity at the kicked system's positions, exactly the role
Octgrav/Fi play in the embedded-cluster run.
"""

from __future__ import annotations

import numpy as np

from ..codes.group import EvolveGroup
from ..rpc import (
    AggregateRequestError,
    Future,
    TaskGraph,
    remote_method,
    wait_all,
)
from ..units import nbody as nbody_system
from ..units.core import Quantity

__all__ = ["Bridge", "CouplingField"]


class CouplingField:
    """A tree code acting as gravity-field solver for bridge kicks.

    Each field evaluation issues ONE batched frame over the channel:
    the source-particle upload and the field query travel together and
    the worker executes them in order — halving the round trips per
    kick compared to one frame per call.  Both queries are
    :class:`~repro.rpc.futures.remote_method`\\ s, so the bridge can
    launch every system's field evaluation asynchronously and overlap
    them (``field.get_gravity_at_point.async_(...)``).
    """

    def __init__(self, field_code, source_systems, eps=None):
        """*field_code* is a high-level tree code (Octgrav/Fi); *source
        systems* are the codes whose particles generate the field."""
        self.code = field_code
        self.sources = list(source_systems)
        self.eps = eps

    def _gather_sources(self):
        masses = []
        positions = []
        for system in self.sources:
            p = system.particles
            masses.append(self.code._to_code(p.mass, self.code._MASS_UNIT))
            positions.append(
                self.code._to_code(p.position, self.code._LENGTH_UNIT)
            )
        return np.concatenate(masses), np.concatenate(positions)

    @remote_method
    def get_gravity_at_point(self, eps, points):
        return self.code.get_gravity_at_point.async_(
            self.eps or eps, points, sources=self._gather_sources()
        )

    @remote_method
    def get_potential_at_point(self, eps, points):
        return self.code.get_potential_at_point.async_(
            self.eps or eps, points, sources=self._gather_sources()
        )


class Bridge:
    """Kick–drift–kick coupling of multiple dynamical systems.

    Each registered system owns its particles and integrator; its
    *partners* provide the external gravity it feels.  ``evolve_model``
    advances everything to the requested time in steps of ``timestep``.

    Parameters
    ----------
    timestep : Quantity (time)
        The bridge (outer) step; models sub-cycle internally.
    use_async : bool
        Schedule each step as a dependency-aware
        :class:`~repro.rpc.taskgraph.TaskGraph` (parallel models with
        per-edge joins, as in the paper).  Synchronous mode exists for
        the coupler-bottleneck ablation benchmark.
    fault_policy : FaultPolicy, optional
        Passed to the step graph: ``RESTART`` lets a step survive a
        dying worker (respawn + replay + resume), ``IGNORE`` drops the
        failed model's contribution for the step.  Default RAISE.
    """

    def __init__(self, timestep, use_async=True, fault_policy=None):
        self.timestep = timestep
        self.use_async = use_async
        self.fault_policy = fault_policy
        self.systems = []          # (code, partners)
        self.time = None
        #: wall-clock style accounting for the monitoring displays
        self.kick_count = 0
        self.drift_count = 0

    def add_system(self, code, partners=()):
        """Register *code*; *partners* are field providers (codes or
        :class:`CouplingField` instances) whose gravity kicks it."""
        self.systems.append((code, list(partners)))
        if self.time is None:
            self.time = code.model_time
        return code

    @property
    def group(self):
        """The registered codes as an :class:`EvolveGroup` — derived
        from ``systems`` so the two can never fall out of sync."""
        return EvolveGroup([code for code, _ in self.systems])

    @property
    def particles(self):
        """All particles across systems (fresh copies, script units)."""
        sets = [code.particles for code, _ in self.systems]
        out = sets[0].copy()
        for more in sets[1:]:
            out.add_particles(more.copy())
        return out

    # -- phases ------------------------------------------------------------

    def kick_systems(self, dt):
        """Apply partner gravity to every system for interval *dt*.

        All field evaluations are launched asynchronously first — the
        uploads and queries of every (system, partner) pair pipeline
        over the channels and overlap — then each system's kick is
        launched as its accelerations resolve (one ``add_velocity``
        round trip per code, overlapping across codes) and joined at
        the end.
        """
        softening = Quantity(0.0, nbody_system.length)
        pending = []
        try:
            for code, partners in self.systems:
                if not partners or not len(code.particles):
                    continue
                pos = code.particles.position
                eps = self._eps_for(code, softening)
                futures = []
                pending.append((code, futures))
                for partner in partners:
                    futures.append((
                        partner,
                        partner.get_gravity_at_point.async_(eps, pos),
                    ))
        except BaseException:
            # a failed launch (stopped partner) must not leave the
            # earlier systems' field futures dangling un-joined
            for _code, futures in pending:
                for _partner, future in futures:
                    future.exception()
            raise
        # every launched kick future is ALWAYS joined below, even when
        # a sibling's field query or kick fails — otherwise its
        # in-flight 'kick' transition would strand and its mirror
        # would diverge from the worker; the first error is re-raised
        # after the joins
        errors = []
        kicks = []
        kick_attempts = 0
        for code, futures in pending:
            total = None
            failed = False
            for partner, future in futures:
                try:
                    acc = future.result()
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    # name the FIELD PROVIDER that failed (the future's
                    # description carries the field code's class), not
                    # the system being kicked
                    errors.append((
                        getattr(future, "description", None)
                        or f"{type(partner).__name__} field for "
                           f"{type(code).__name__}",
                        exc,
                    ))
                    failed = True
                    continue
                total = acc if total is None else total + acc
            if failed or errors:
                # after the first failure no FURTHER kicks are
                # launched (kicks already in flight for earlier
                # systems are still joined and mirrored below); the
                # remaining field futures above still get joined
                continue
            dv = total * dt
            kick_attempts += 1
            try:
                kicks.append((code, dv, code.kick.async_(dv)))
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append((f"{type(code).__name__}.kick", exc))
        for code, dv, future in kicks:
            try:
                future.result()
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append((f"{type(code).__name__}.kick", exc))
                continue
            # keep the local mirror coherent with the worker
            code.particles.velocity = code.particles.velocity + dv
        if errors:
            # the same error surface as the drift phase's wait_all:
            # one aggregate naming every failed model, out of all the
            # field/kick calls this phase attempted
            attempted = sum(
                len(futures) for _c, futures in pending
            ) + kick_attempts
            raise AggregateRequestError(errors, total=attempted)
        self.kick_count += 1

    def _eps_for(self, code, default):
        if self.systems and code.converter is not None:
            return code.converter.to_si(default)
        return default

    def drift_systems(self, t_end):
        """Evolve every system to *t_end*, in parallel when async.

        The async path goes through the :class:`EvolveGroup`: every
        code's ``evolve_model.async_`` future is launched, the workers
        advance concurrently, and the join refreshes each mirror —
        the inter-model parallelism of the paper's jungle scenario.
        Synchronous mode evolves one code at a time (the
        coupler-bottleneck ablation).
        """
        if self.use_async:
            wait_all(self.group.evolve_async(t_end))
        else:
            for code, _ in self.systems:
                code.evolve_model(t_end)
        self.drift_count += 1

    # -- DAG-scheduled step ------------------------------------------------

    def _system_names(self):
        """Stable unique display name per registered system."""
        names = []
        seen = {}
        for code, _partners in self.systems:
            base = type(code).__name__
            count = seen.get(base, 0)
            seen[base] = count + 1
            names.append(base if count == 0 else f"{base}#{count}")
        return names

    def _partner_source_codes(self, partner):
        """The system codes whose DRIFT must complete before *partner*
        can evaluate a post-drift field: a CouplingField reads its
        source systems' mirrors at launch time; a system code used
        directly as field provider reads its own worker state."""
        sources = getattr(partner, "sources", None)
        if sources is not None:
            return list(sources)
        return [partner]

    @staticmethod
    def _partner_queried_workers(partner):
        """The codes whose WORKER the partner's field evaluation
        queries: a CouplingField queries its field code, a system code
        used directly as provider queries itself.  A first-kick query
        against a registered system's worker must therefore order
        BEFORE that system's drift (the barrier schedule's kick phase
        invariant)."""
        field_code = getattr(partner, "code", None)
        if field_code is not None and hasattr(partner, "sources"):
            return [field_code]
        return [partner]

    def _launch_fields(self, code, partners, dt):
        """Launch every partner's field evaluation for *code*; returns
        a future resolving to the summed velocity delta for *dt*.

        A launch failing partway (a stopped partner) joins the futures
        already launched, so no sibling field query is left dangling.
        """
        softening = Quantity(0.0, nbody_system.length)
        pos = code.particles.position
        eps = self._eps_for(code, softening)
        futures = []
        try:
            for partner in partners:
                futures.append(
                    partner.get_gravity_at_point.async_(eps, pos)
                )
        except BaseException:
            for future in futures:
                future.exception()
            raise

        def _sum(accelerations):
            total = accelerations[0]
            for acc in accelerations[1:]:
                total = total + acc
            return total * dt

        return Future(
            requests=futures, transform=_sum,
            description=f"{type(code).__name__} field sum",
        )

    def _launch_kick(self, code, field_node):
        """Launch the kick for the dv computed by *field_node*; the
        join keeps the local mirror coherent with the worker."""
        dv = field_node.result
        kick_future = code.kick.async_(dv)

        def _apply(_value):
            code.particles.velocity = code.particles.velocity + dv
            return

        return Future(
            request=kick_future, transform=_apply,
            description=f"{type(code).__name__}.kick",
        )

    def _step_graph(self, dt):
        """One kick–drift–kick step as a TaskGraph with per-edge joins.

        Per system ``s``: ``kick1:s`` (field eval + kick) has no
        dependencies (it reads the pre-drift mirrors, exactly like the
        barrier schedule's first phase); ``drift:s`` follows its own
        first kick plus any sibling's first-kick field query against
        ``s``'s worker (so a pre-drift field read can never race the
        drift on a shared worker); ``kick2:s`` follows its own drift
        plus the drifts of every system sourcing its coupling fields —
        the minimal edges under which first kicks read pre-drift state
        and second kicks read post-drift state, so the numerics match
        the barrier schedule while a fast chain never waits for an
        unrelated slow one.
        """
        half = dt * 0.5
        names = self._system_names()
        graph = TaskGraph()
        drift_nodes = {}
        first_kicks = {}
        worker_queries = {}     # system code id -> kick1 field nodes
                                # querying that system's worker
        kicked = [
            bool(partners) and len(code.particles)
            for code, partners in self.systems
        ]
        for (code, partners), name, kicks in zip(
            self.systems, names, kicked, strict=True,
        ):
            if not kicks:
                continue
            field = graph.add(
                f"kick1:{name}:field",
                (lambda code=code, partners=partners:
                 self._launch_fields(code, partners, half)),
            )
            first_kicks[id(code)] = graph.add(
                f"kick1:{name}",
                (lambda code=code, field=field:
                 self._launch_kick(code, field)),
                after=[field], code=code,
            )
            for partner in partners:
                for queried in self._partner_queried_workers(partner):
                    worker_queries.setdefault(
                        id(queried), []
                    ).append(field)
        for (code, _partners), name in zip(self.systems, names,
                                           strict=True):
            # a drift waits for the system's own first kick AND for
            # every first-kick field query against this system's
            # worker — otherwise an unkicked system's drift could
            # overtake a sibling's pre-drift field evaluation on the
            # shared worker (order-dependent numerics)
            deps = []
            if id(code) in first_kicks:
                deps.append(first_kicks[id(code)])
            for field in worker_queries.get(id(code), ()):
                if field not in deps:
                    deps.append(field)
            drift_nodes[id(code)] = graph.add(
                f"drift:{name}",
                (lambda code=code:
                 code.evolve_model.async_(self.time + dt)),
                after=deps, code=code,
            )
        for (code, partners), name, kicks in zip(
            self.systems, names, kicked, strict=True,
        ):
            if not kicks:
                continue
            deps = [drift_nodes[id(code)]]
            for partner in partners:
                for source in self._partner_source_codes(partner):
                    node = drift_nodes.get(id(source))
                    if node is not None and node not in deps:
                        deps.append(node)
            field = graph.add(
                f"kick2:{name}:field",
                (lambda code=code, partners=partners:
                 self._launch_fields(code, partners, half)),
                after=deps,
            )
            graph.add(
                f"kick2:{name}",
                (lambda code=code, field=field:
                 self._launch_kick(code, field)),
                after=[field], code=code,
            )
        graph.run(fault_policy=self.fault_policy)
        self.kick_count += 2
        self.drift_count += 1
        return graph

    # -- main loop --------------------------------------------------------------

    def evolve_model(self, t_end):
        """Advance the coupled system to *t_end* (script-side units)."""
        if self.time is None:
            raise RuntimeError("no systems registered")
        while self.time < t_end - 1e-12 * self.timestep:
            dt = self.timestep
            remaining = t_end - self.time
            if remaining < dt:
                dt = remaining
            if self.use_async:
                self._step_graph(dt)
            else:
                self.kick_systems(dt * 0.5)
                self.drift_systems(self.time + dt)
                self.kick_systems(dt * 0.5)
            self.time = self.time + dt
        return self.time

    # -- diagnostics --------------------------------------------------------------

    def kinetic_energy(self):
        total = None
        for code, _ in self.systems:
            e = code.kinetic_energy
            total = e if total is None else total + e
        return total

    def potential_energy(self):
        """Internal potential energies plus cross terms via partners."""
        total = None
        for code, _ in self.systems:
            e = code.potential_energy
            total = e if total is None else total + e
        # cross-system potential (each pair counted once via kick fields)
        for code, partners in self.systems:
            if not partners or not len(code.particles):
                continue
            pos = code.particles.position
            for partner in partners:
                phi = partner.get_potential_at_point(
                    self._eps_for(code, Quantity(0.0, nbody_system.length)),
                    pos,
                )
                cross = (code.particles.mass * phi).sum() * 0.5
                total = cross if total is None else total + cross
        return total

    def stop(self):
        # the group knows the cleanup protocol: skip stopped members,
        # force-shutdown busy ones, never leak the rest of the workers
        self.group.stop()
