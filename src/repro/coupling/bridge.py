"""BRIDGE-style coupling of independently evolving model codes.

Paper Fig. 7 shows the AMUSE gravitational/hydro/stellar-evolution
integrator: during one time step of the combined solver the gas dynamics
and gravitational (stellar) dynamics models *evolve in parallel*, and the
mutual gravity between the two systems is applied as half-step velocity
kicks ("p-kicks") computed by the *coupling model* (Octgrav on a GPU or
Fi on a CPU).

:class:`Bridge` implements that second-order kick–drift–kick operator
splitting (Fujii et al. 2007), with the drift phase issued as
*asynchronous* channel calls so the models genuinely overlap — this is
the inter-model parallelism that makes the paper's jungle scenario 4
faster than any single-resource scenario.

:class:`CouplingField` wraps a tree code as the field solver: before
every kick it uploads the current source-particle configuration and
evaluates gravity at the kicked system's positions, exactly the role
Octgrav/Fi play in the embedded-cluster run.
"""

from __future__ import annotations

import numpy as np

from ..units import nbody as nbody_system
from ..units.core import Quantity

__all__ = ["Bridge", "CouplingField"]


class CouplingField:
    """A tree code acting as gravity-field solver for bridge kicks.

    Each field evaluation issues ONE batched frame over the channel:
    the source-particle upload and the field query travel together and
    the worker executes them in order — halving the round trips per
    kick compared to one frame per call.
    """

    def __init__(self, field_code, source_systems, eps=None):
        """*field_code* is a high-level tree code (Octgrav/Fi); *source
        systems* are the codes whose particles generate the field."""
        self.code = field_code
        self.sources = list(source_systems)
        self.eps = eps

    def _gather_sources(self):
        masses = []
        positions = []
        for system in self.sources:
            p = system.particles
            masses.append(self.code._to_code(p.mass, self.code._MASS_UNIT))
            positions.append(
                self.code._to_code(p.position, self.code._LENGTH_UNIT)
            )
        return np.concatenate(masses), np.concatenate(positions)

    def get_gravity_at_point(self, eps, points):
        return self.code.get_gravity_at_point(
            self.eps or eps, points, sources=self._gather_sources()
        )

    def get_potential_at_point(self, eps, points):
        return self.code.get_potential_at_point(
            self.eps or eps, points, sources=self._gather_sources()
        )


class Bridge:
    """Kick–drift–kick coupling of multiple dynamical systems.

    Each registered system owns its particles and integrator; its
    *partners* provide the external gravity it feels.  ``evolve_model``
    advances everything to the requested time in steps of ``timestep``.

    Parameters
    ----------
    timestep : Quantity (time)
        The bridge (outer) step; models sub-cycle internally.
    use_async : bool
        Issue drift calls asynchronously (parallel models, as in the
        paper).  Synchronous mode exists for the coupler-bottleneck
        ablation benchmark.
    """

    def __init__(self, timestep, use_async=True):
        self.timestep = timestep
        self.use_async = use_async
        self.systems = []          # (code, partners)
        self.time = None
        #: wall-clock style accounting for the monitoring displays
        self.kick_count = 0
        self.drift_count = 0

    def add_system(self, code, partners=()):
        """Register *code*; *partners* are field providers (codes or
        :class:`CouplingField` instances) whose gravity kicks it."""
        self.systems.append((code, list(partners)))
        if self.time is None:
            self.time = code.model_time
        return code

    @property
    def particles(self):
        """All particles across systems (fresh copies, script units)."""
        sets = [code.particles for code, _ in self.systems]
        out = sets[0].copy()
        for more in sets[1:]:
            out.add_particles(more.copy())
        return out

    # -- phases ------------------------------------------------------------

    def kick_systems(self, dt):
        """Apply partner gravity to every system for interval *dt*."""
        softening = Quantity(0.0, nbody_system.length)
        for code, partners in self.systems:
            if not partners or not len(code.particles):
                continue
            pos = code.particles.position
            total = None
            for partner in partners:
                acc = partner.get_gravity_at_point(
                    self._eps_for(code, softening), pos
                )
                total = acc if total is None else total + acc
            dv = total * dt
            code.kick(dv)
            # keep the local mirror coherent with the worker
            code.particles.velocity = code.particles.velocity + dv
        self.kick_count += 1

    def _eps_for(self, code, default):
        if self.systems and code.converter is not None:
            return code.converter.to_si(default)
        return default

    def drift_systems(self, t_end):
        """Evolve every system to *t_end*, in parallel when async."""
        if self.use_async:
            requests = []
            for code, _ in self.systems:
                t = code._to_code(t_end, code._TIME_UNIT)
                requests.append(
                    code.channel.async_call("evolve_model", float(t))
                )
            for request in requests:
                request.result()
        else:
            for code, _ in self.systems:
                t = code._to_code(t_end, code._TIME_UNIT)
                code.channel.call("evolve_model", float(t))
        for code, _ in self.systems:
            code.pull_state()
        self.drift_count += 1

    # -- main loop --------------------------------------------------------------

    def evolve_model(self, t_end):
        """Advance the coupled system to *t_end* (script-side units)."""
        if self.time is None:
            raise RuntimeError("no systems registered")
        while self.time < t_end - 1e-12 * self.timestep:
            dt = self.timestep
            remaining = t_end - self.time
            if remaining < dt:
                dt = remaining
            self.kick_systems(dt * 0.5)
            self.drift_systems(self.time + dt)
            self.kick_systems(dt * 0.5)
            self.time = self.time + dt
        return self.time

    # -- diagnostics --------------------------------------------------------------

    def kinetic_energy(self):
        total = None
        for code, _ in self.systems:
            e = code.kinetic_energy
            total = e if total is None else total + e
        return total

    def potential_energy(self):
        """Internal potential energies plus cross terms via partners."""
        total = None
        for code, _ in self.systems:
            e = code.potential_energy
            total = e if total is None else total + e
        # cross-system potential (each pair counted once via kick fields)
        for i, (code, partners) in enumerate(self.systems):
            if not partners or not len(code.particles):
                continue
            pos = code.particles.position
            for partner in partners:
                phi = partner.get_potential_at_point(
                    self._eps_for(code, Quantity(0.0, nbody_system.length)),
                    pos,
                )
                cross = (code.particles.mass * phi).sum() * 0.5
                total = cross if total is None else total + cross
        return total

    def stop(self):
        for code, _ in self.systems:
            code.stop()
