"""SI base and derived units.

The canonical seven SI base units plus the derived units needed by the
astrophysics (:mod:`repro.codes`) and climate (:mod:`repro.cesm`)
substrates.  Every name here is a :class:`repro.units.core.Unit`.
"""

from __future__ import annotations

from .core import NONE_UNIT, Unit, new_base_unit

__all__ = [
    "kg", "m", "s", "A", "K", "mol", "cd", "none",
    "g", "km", "cm", "mm", "Hz", "N", "Pa", "J", "W", "C", "V",
    "minute", "hour", "day", "ms", "us", "ns",
    "m2", "m3", "kms", "W_per_m2", "kg_per_m3", "J_per_kg",
]

kg = new_base_unit(0, "kg")
m = new_base_unit(1, "m")
s = new_base_unit(2, "s")
A = new_base_unit(3, "A")
K = new_base_unit(4, "K")
mol = new_base_unit(5, "mol")
cd = new_base_unit(6, "cd")

none = NONE_UNIT

# Scaled base units.
g = (0.001 * kg).named("g")
km = (1000.0 * m).named("km")
cm = (0.01 * m).named("cm")
mm = (0.001 * m).named("mm")
minute = (60.0 * s).named("min")
hour = (3600.0 * s).named("hour")
day = (86400.0 * s).named("day")
ms = (0.001 * s).named("ms")
us = (1e-6 * s).named("us")
ns = (1e-9 * s).named("ns")

# Derived units.
Hz = (s ** -1).named("Hz")
N = (kg * m / s ** 2).named("N")
Pa = (N / m ** 2).named("Pa")
J = (N * m).named("J")
W = (J / s).named("W")
C = (A * s).named("C")
V = (W / A).named("V")

# Convenience composites used throughout the codebase.
m2 = (m ** 2).named("m**2")
m3 = (m ** 3).named("m**3")
kms = (km / s).named("km/s")
W_per_m2 = (W / m ** 2).named("W/m**2")
kg_per_m3 = (kg / m ** 3).named("kg/m**3")
J_per_kg = (J / kg).named("J/kg")


def _unit_namespace():
    """All public units as a dict (used by the ``units`` namespace)."""
    return {name: globals()[name] for name in __all__}
