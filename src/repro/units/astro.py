"""Astronomical units and physical constants.

Values follow the IAU 2015 nominal conversions (same source AMUSE uses).
Constants are exported as quantities in :data:`repro.units.constants`.
"""

from __future__ import annotations

from .core import Quantity
from . import si

__all__ = [
    "AU", "parsec", "kpc", "Mpc", "lightyear",
    "MSun", "RSun", "LSun",
    "yr", "Myr", "Gyr", "julianyr",
    "G", "c", "kB", "sigma_SB", "a_rad", "h_planck",
]

# Lengths.
AU = (1.495978707e11 * si.m).named("AU")
parsec = (3.0856775814913673e16 * si.m).named("pc")
kpc = (1000.0 * parsec).named("kpc")
Mpc = (1.0e6 * parsec).named("Mpc")
lightyear = (9.4607304725808e15 * si.m).named("ly")

# Masses / radii / luminosities.
MSun = (1.98892e30 * si.kg).named("MSun")
RSun = (6.957e8 * si.m).named("RSun")
LSun = (3.828e26 * si.W).named("LSun")

# Times.
julianyr = (365.25 * si.day).named("julianyr")
yr = (3.15569252e7 * si.s).named("yr")
Myr = (1.0e6 * yr).named("Myr")
Gyr = (1.0e9 * yr).named("Gyr")

# Physical constants, as quantities.
G = Quantity(6.67430e-11, si.m ** 3 / (si.kg * si.s ** 2))
c = Quantity(299792458.0, si.m / si.s)
kB = Quantity(1.380649e-23, si.J / si.K)
sigma_SB = Quantity(5.670374419e-8, si.W / (si.m ** 2 * si.K ** 4))
a_rad = Quantity(7.5657e-16, si.J / (si.m ** 3 * si.K ** 4))
h_planck = Quantity(6.62607015e-34, si.J * si.s)


def _unit_namespace():
    out = {}
    for name in __all__:
        value = globals()[name]
        if not isinstance(value, Quantity):
            out[name] = value
    return out
