"""AMUSE-style unit system: checked quantities, SI + astro units, N-body
generic units and the generic↔SI converter.

Public surface::

    from repro.units import units, constants, nbody_system
    from repro.units import Quantity, IncompatibleUnitsError

    mass = 1.0 | units.MSun
    conv = nbody_system.nbody_to_si(1000.0 | units.MSun, 1.0 | units.parsec)
"""

from __future__ import annotations

import types

from .core import (
    IncompatibleUnitsError,
    Quantity,
    Unit,
    is_quantity,
    new_quantity,
    to_quantity,
)
from . import astro as _astro
from . import nbody as nbody_system
from . import si as _si

__all__ = [
    "units",
    "constants",
    "nbody_system",
    "Quantity",
    "Unit",
    "IncompatibleUnitsError",
    "is_quantity",
    "new_quantity",
    "to_quantity",
]


def _build_units_namespace():
    ns = types.SimpleNamespace()
    for name, unit in _si._unit_namespace().items():
        setattr(ns, name, unit)
    for name, unit in _astro._unit_namespace().items():
        setattr(ns, name, unit)
    return ns


def _build_constants_namespace():
    ns = types.SimpleNamespace()
    for name in ("G", "c", "kB", "sigma_SB", "a_rad", "h_planck"):
        setattr(ns, name, getattr(_astro, name))
    return ns


#: Namespace of all units: ``units.m``, ``units.MSun``, ``units.Myr``, ...
units = _build_units_namespace()

#: Namespace of physical constants as quantities: ``constants.G``, ...
constants = _build_constants_namespace()
