"""Unit and Quantity core for the AMUSE-style unit system.

The paper (Sec. 4.1) stresses that AMUSE performs *checked, automatic unit
conversion* for every value crossing the coupler, "a requirement for
combining different models".  This module provides that machinery:

* :class:`Unit` — a physical unit: a scale factor times a product of powers
  of base dimensions.  Seven SI base dimensions are supported plus three
  *generic* (N-body) dimensions used by :mod:`repro.units.nbody`.
* :class:`Quantity` — a number (scalar or :class:`numpy.ndarray`) tagged
  with a :class:`Unit`.  All arithmetic is dimension checked.

AMUSE idioms are kept:

>>> from repro.units import units
>>> m = 5.0 | units.MSun          # ``|`` attaches a unit to a value
>>> m.value_in(units.kg)          # doctest: +ELLIPSIS
9.94...e+30
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

__all__ = [
    "Unit",
    "Quantity",
    "IncompatibleUnitsError",
    "new_base_unit",
    "new_quantity",
    "to_quantity",
    "is_quantity",
]

# Base dimensions.  The first seven are SI; the final three are the
# *generic* N-body dimensions (mass, length, time) used by nbody_system.
BASE_SYMBOLS = ("kg", "m", "s", "A", "K", "mol", "cd", "⟨m⟩", "⟨l⟩", "⟨t⟩")
N_BASE = len(BASE_SYMBOLS)
_ZERO_POWERS = (Fraction(0),) * N_BASE

# Indices of the generic dimensions inside the powers vector.
GENERIC_MASS, GENERIC_LENGTH, GENERIC_TIME = 7, 8, 9
# SI dimensions the generic ones map onto.
SI_MASS, SI_LENGTH, SI_TIME = 0, 1, 2


class IncompatibleUnitsError(ValueError):
    """Raised when an operation mixes dimensionally incompatible units."""

    def __init__(self, left, right, operation="convert"):
        super().__init__(
            f"cannot {operation} between incompatible units "
            f"{left!r} and {right!r}"
        )
        self.left = left
        self.right = right


def _as_fraction_tuple(powers):
    return tuple(Fraction(p) for p in powers)


class Unit:
    """A physical unit: ``factor`` × ∏ base_i ** powers_i.

    Units are immutable and hashable.  Multiplying or dividing units (or
    raising them to rational powers) produces derived units; multiplying a
    plain Python number by a unit produces a *scaled* unit (the AMUSE idiom
    ``minute = 60 * s``), while ``value | unit`` produces a
    :class:`Quantity`.
    """

    __slots__ = ("factor", "powers", "symbol")

    # Make numpy defer all binary-op dispatch to this class so that e.g.
    # ``np.arange(3) | units.m`` builds a vector Quantity instead of an
    # object array.
    __array_ufunc__ = None

    def __init__(self, factor, powers, symbol=None):
        object.__setattr__(self, "factor", float(factor))
        object.__setattr__(self, "powers", _as_fraction_tuple(powers))
        object.__setattr__(self, "symbol", symbol)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Unit instances are immutable")

    # -- identity ---------------------------------------------------------

    def __hash__(self):
        return hash((self.factor, self.powers))

    def __eq__(self, other):
        if not isinstance(other, Unit):
            return NotImplemented
        return self.factor == other.factor and self.powers == other.powers

    def __ne__(self, other):
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    # -- properties -------------------------------------------------------

    @property
    def is_dimensionless(self):
        """True when all dimension exponents are zero."""
        return self.powers == _ZERO_POWERS

    @property
    def is_generic(self):
        """True when the unit involves any generic (N-body) dimension."""
        return any(
            self.powers[i] != 0
            for i in (GENERIC_MASS, GENERIC_LENGTH, GENERIC_TIME)
        )

    def has_same_base_as(self, other):
        """True when *other* has identical dimension exponents."""
        return self.powers == other.powers

    # -- algebra ----------------------------------------------------------

    def __mul__(self, other):
        if isinstance(other, Unit):
            return Unit(
                self.factor * other.factor,
                tuple(a + b for a, b in
                      zip(self.powers, other.powers, strict=True)),
            )
        if isinstance(other, (int, float)):
            return Unit(self.factor * other, self.powers)
        if isinstance(other, Quantity):
            return Quantity(other.number, self * other.unit)
        if isinstance(other, (np.ndarray, list, tuple)):
            return Quantity(np.asarray(other, dtype=float), self)
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, Unit):
            return Unit(
                self.factor / other.factor,
                tuple(a - b for a, b in
                      zip(self.powers, other.powers, strict=True)),
            )
        if isinstance(other, (int, float)):
            return Unit(self.factor / other, self.powers)
        return NotImplemented

    def __rtruediv__(self, other):
        if isinstance(other, (int, float)):
            return Unit(
                other / self.factor, tuple(-p for p in self.powers)
            )
        if isinstance(other, (np.ndarray, list, tuple)):
            return Quantity(np.asarray(other, dtype=float), self ** -1)
        return NotImplemented

    def __pow__(self, exponent):
        exponent = Fraction(exponent).limit_denominator(1000000)
        return Unit(
            self.factor ** float(exponent),
            tuple(p * exponent for p in self.powers),
        )

    def __ror__(self, value):
        """``value | unit`` — the AMUSE quantity constructor."""
        return new_quantity(value, self)

    # -- conversion -------------------------------------------------------

    def conversion_factor_to(self, other):
        """Multiplier taking a value in *self* to a value in *other*."""
        if self.powers != other.powers:
            raise IncompatibleUnitsError(self, other)
        return self.factor / other.factor

    def as_quantity(self):
        """This unit expressed as a quantity of its own base form."""
        return Quantity(self.factor, Unit(1.0, self.powers))

    def named(self, symbol):
        """A copy of this unit carrying a display symbol."""
        return Unit(self.factor, self.powers, symbol)

    def base_form(self):
        """The factor-1 unit with the same dimensions."""
        return Unit(1.0, self.powers)

    # -- display ----------------------------------------------------------

    def _power_string(self):
        parts = []
        for sym, p in zip(BASE_SYMBOLS, self.powers, strict=True):
            if p == 0:
                continue
            if p == 1:
                parts.append(sym)
            else:
                parts.append(f"{sym}**{p}")
        return " * ".join(parts) if parts else "1"

    def __repr__(self):
        if self.symbol:
            return self.symbol
        if self.factor == 1.0:
            return self._power_string()
        return f"{self.factor:g} * {self._power_string()}"

    __str__ = __repr__


def new_base_unit(index, symbol):
    """Create the canonical unit for base dimension *index*."""
    powers = [0] * N_BASE
    powers[index] = 1
    return Unit(1.0, powers, symbol)


NONE_UNIT = Unit(1.0, _ZERO_POWERS, "none")


def is_quantity(value):
    """True when *value* is a :class:`Quantity`."""
    return isinstance(value, Quantity)


def new_quantity(value, unit):
    """Build a Quantity; lists/tuples become float ndarrays."""
    if isinstance(value, Quantity):
        raise TypeError(
            "cannot attach a unit to a Quantity; use in_() to convert"
        )
    if isinstance(value, (list, tuple)):
        value = np.asarray(value, dtype=float)
    return Quantity(value, unit)


def to_quantity(value):
    """Coerce plain numbers to dimensionless quantities."""
    if isinstance(value, Quantity):
        return value
    return Quantity(value, NONE_UNIT)


class Quantity:
    """A value with a unit.  Scalar when ``number`` is a float, vector when
    it is an ndarray.  All arithmetic checks dimensions; addition converts
    the right operand into the left operand's unit.
    """

    __slots__ = ("number", "unit")
    __array_ufunc__ = None

    def __init__(self, number, unit):
        if not isinstance(unit, Unit):
            raise TypeError(f"unit must be a Unit, got {type(unit)!r}")
        object.__setattr__(self, "number", number)
        object.__setattr__(self, "unit", unit)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Quantity instances are immutable")

    # -- basic properties --------------------------------------------------

    @property
    def is_vector(self):
        return isinstance(self.number, np.ndarray)

    @property
    def shape(self):
        return np.shape(self.number)

    def __len__(self):
        return len(self.number)

    def __iter__(self):
        for value in self.number:
            yield Quantity(value, self.unit)

    def __getitem__(self, index):
        return Quantity(self.number[index], self.unit)

    def __setitem__(self, index, value):
        if not isinstance(value, Quantity):
            raise TypeError("can only assign quantities into a quantity")
        self.number[index] = value.value_in(self.unit)

    # -- conversion --------------------------------------------------------

    def value_in(self, unit):
        """The bare number of this quantity expressed in *unit*."""
        factor = self.unit.conversion_factor_to(unit)
        if factor == 1.0:
            return self.number
        return self.number * factor

    def in_(self, unit):
        """This quantity re-expressed in *unit* (a new Quantity)."""
        return Quantity(self.value_in(unit), unit)

    as_quantity_in = in_

    def in_base(self):
        """Re-expressed in the factor-1 base form of its unit."""
        return Quantity(self.number * self.unit.factor, self.unit.base_form())

    # -- arithmetic --------------------------------------------------------

    def _other_in_my_unit(self, other, operation):
        if isinstance(other, Quantity):
            try:
                return other.value_in(self.unit)
            except IncompatibleUnitsError:
                raise IncompatibleUnitsError(
                    self.unit, other.unit, operation
                ) from None
        if isinstance(other, (int, float, np.ndarray)):
            if self.unit.is_dimensionless:
                return np.asarray(other) / self.unit.factor \
                    if isinstance(other, np.ndarray) \
                    else other / self.unit.factor
        raise IncompatibleUnitsError(self.unit, other, operation)

    def __add__(self, other):
        return Quantity(
            self.number + self._other_in_my_unit(other, "add"), self.unit
        )

    __radd__ = __add__

    def __sub__(self, other):
        return Quantity(
            self.number - self._other_in_my_unit(other, "subtract"),
            self.unit,
        )

    def __rsub__(self, other):
        return Quantity(
            self._other_in_my_unit(other, "subtract") - self.number,
            self.unit,
        )

    def __mul__(self, other):
        if isinstance(other, Quantity):
            return Quantity(
                self.number * other.number, self.unit * other.unit
            )
        if isinstance(other, Unit):
            return Quantity(self.number, self.unit * other)
        return Quantity(self.number * other, self.unit)

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, Quantity):
            return Quantity(
                self.number / other.number, self.unit / other.unit
            )
        if isinstance(other, Unit):
            return Quantity(self.number, self.unit / other)
        return Quantity(self.number / other, self.unit)

    def __rtruediv__(self, other):
        if isinstance(other, (int, float, np.ndarray)):
            return Quantity(other / self.number, self.unit ** -1)
        return NotImplemented

    def __pow__(self, exponent):
        return Quantity(self.number ** exponent, self.unit ** exponent)

    def __neg__(self):
        return Quantity(-self.number, self.unit)

    def __pos__(self):
        return self

    def __abs__(self):
        return Quantity(abs(self.number), self.unit)

    def __mod__(self, other):
        return Quantity(
            np.mod(self.number, self._other_in_my_unit(other, "mod")),
            self.unit,
        )

    # -- comparisons -------------------------------------------------------

    def _compare(self, other, op):
        return op(self.number, self._other_in_my_unit(other, "compare"))

    def __eq__(self, other):
        if not isinstance(other, Quantity):
            return NotImplemented
        if self.unit.powers != other.unit.powers:
            return False
        return np.all(self.number == other.value_in(self.unit))

    def __ne__(self, other):
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __lt__(self, other):
        return self._compare(other, np.less)

    def __le__(self, other):
        return self._compare(other, np.less_equal)

    def __gt__(self, other):
        return self._compare(other, np.greater)

    def __ge__(self, other):
        return self._compare(other, np.greater_equal)

    def __hash__(self):
        base = self.in_base()
        num = base.number
        if isinstance(num, np.ndarray):
            num = num.tobytes()
        return hash((num, base.unit.powers))

    # -- numpy-flavoured helpers --------------------------------------------

    def sqrt(self):
        return Quantity(np.sqrt(self.number), self.unit ** Fraction(1, 2))

    def sum(self, axis=None):
        return Quantity(np.sum(self.number, axis=axis), self.unit)

    def mean(self, axis=None):
        return Quantity(np.mean(self.number, axis=axis), self.unit)

    def min(self, axis=None):
        return Quantity(np.min(self.number, axis=axis), self.unit)

    def max(self, axis=None):
        return Quantity(np.max(self.number, axis=axis), self.unit)

    def lengths(self):
        """Row-wise Euclidean norms for an (N, 3) vector quantity."""
        return Quantity(
            np.linalg.norm(np.atleast_2d(self.number), axis=-1), self.unit
        )

    def length(self):
        """Euclidean norm of a 1-D vector quantity."""
        return Quantity(np.linalg.norm(self.number), self.unit)

    def copy(self):
        number = self.number
        if isinstance(number, np.ndarray):
            number = number.copy()
        return Quantity(number, self.unit)

    def reshape(self, *shape):
        return Quantity(np.reshape(self.number, *shape), self.unit)

    def flatten(self):
        return Quantity(np.ravel(self.number), self.unit)

    def argsort(self, **kwargs):
        return np.argsort(self.number, **kwargs)

    def argmin(self):
        return int(np.argmin(self.number))

    def argmax(self):
        return int(np.argmax(self.number))

    def is_scalar(self):
        return not self.is_vector

    # -- display -----------------------------------------------------------

    def __repr__(self):
        return f"quantity<{self.number} {self.unit}>"

    def __str__(self):
        return f"{self.number} {self.unit}"

    def __format__(self, spec):
        return f"{format(self.number, spec)} {self.unit}"

    def __float__(self):
        if not self.unit.is_dimensionless:
            raise TypeError(
                f"cannot cast quantity with unit {self.unit} to float; "
                "use value_in()"
            )
        return float(self.number * self.unit.factor)

    def __bool__(self):
        return bool(np.any(self.number))
