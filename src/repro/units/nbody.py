"""Generic (N-body) units and the generic↔SI converter.

Gravitational N-body codes such as PhiGRAPE internally work in *N-body
units* where the gravitational constant G = 1.  AMUSE scripts construct a
:class:`ConvertBetweenGenericAndSiUnits` (spelled ``nbody_to_si`` here, as
in AMUSE) from two dimensionally independent anchor quantities — typically
the total mass and a scale radius — and the framework transparently
converts every value crossing a code boundary.

The converter solves, in log space, for the mass/length/time scale factors
(S_M, S_L, S_T) such that both anchors equal exactly 1 in N-body units and
G = 1 holds:  each anchor with SI dimension exponents (a_kg, a_m, a_s)
yields one linear equation  a_kg·x_M + a_m·x_L + a_s·x_T = ln(value_SI),
and the G constraint contributes  -x_M + 3·x_L - 2·x_T = ln(G_SI).
"""

from __future__ import annotations

import numpy as np

from .core import (
    GENERIC_LENGTH,
    GENERIC_MASS,
    GENERIC_TIME,
    SI_LENGTH,
    SI_MASS,
    SI_TIME,
    Quantity,
    Unit,
    new_base_unit,
)
from . import astro

__all__ = [
    "mass",
    "length",
    "time",
    "speed",
    "acceleration",
    "energy",
    "density",
    "G",
    "nbody_to_si",
    "ConvertBetweenGenericAndSiUnits",
]

# The generic base units.
mass = new_base_unit(GENERIC_MASS, "nbody_mass")
length = new_base_unit(GENERIC_LENGTH, "nbody_length")
time = new_base_unit(GENERIC_TIME, "nbody_time")

speed = (length / time).named("nbody_speed")
acceleration = (length / time ** 2).named("nbody_acceleration")
energy = (mass * speed ** 2).named("nbody_energy")
density = (mass / length ** 3).named("nbody_density")

# In generic units the gravitational constant is exactly one.
G = Quantity(1.0, length ** 3 / (mass * time ** 2))

_GENERIC_TO_SI = {
    GENERIC_MASS: SI_MASS,
    GENERIC_LENGTH: SI_LENGTH,
    GENERIC_TIME: SI_TIME,
}


class ConvertBetweenGenericAndSiUnits:
    """Converter between generic (N-body, G=1) units and SI units.

    Parameters
    ----------
    *anchors : Quantity
        Two SI quantities whose dimensions, together with the G = 1
        constraint, uniquely fix the mass/length/time scales.  Each anchor
        equals exactly 1 in N-body units.

    Examples
    --------
    >>> from repro.units import units, nbody_system
    >>> conv = nbody_system.nbody_to_si(1.0 | units.MSun, 1.0 | units.AU)
    >>> round(conv.to_si(1.0 | nbody_system.time).value_in(units.yr), 3)
    0.159
    """

    def __init__(self, *anchors):
        if len(anchors) != 2:
            raise ValueError(
                "need exactly two anchor quantities (e.g. total mass "
                f"and length scale); got {len(anchors)}"
            )
        rows = [
            # G constraint: L^3 M^-1 T^-2 = G_SI
            [-1.0, 3.0, -2.0],
        ]
        rhs = [np.log(astro.G.number)]
        for quantity in anchors:
            base = quantity.in_base()
            powers = base.unit.powers
            for idx, power in enumerate(powers):
                if power != 0 and idx not in (SI_MASS, SI_LENGTH, SI_TIME):
                    raise ValueError(
                        f"anchor {quantity!r} involves non-mechanical "
                        "dimensions; only mass/length/time anchors are "
                        "supported"
                    )
            if base.number <= 0:
                raise ValueError(f"anchor {quantity!r} must be positive")
            rows.append(
                [
                    float(powers[SI_MASS]),
                    float(powers[SI_LENGTH]),
                    float(powers[SI_TIME]),
                ]
            )
            rhs.append(np.log(base.number))
        matrix = np.array(rows)
        if abs(np.linalg.det(matrix)) < 1e-12:
            raise ValueError(
                "anchor quantities are not dimensionally independent "
                "given the G = 1 constraint"
            )
        solution = np.linalg.solve(matrix, np.array(rhs))
        # Scale factors: 1 nbody_mass = S_M kg, etc.
        self.mass_scale, self.length_scale, self.time_scale = np.exp(
            solution
        )

    # -- scale lookup -------------------------------------------------------

    def _scales(self):
        return {
            GENERIC_MASS: self.mass_scale,
            GENERIC_LENGTH: self.length_scale,
            GENERIC_TIME: self.time_scale,
        }

    def to_si(self, quantity):
        """Convert a (partly) generic quantity to pure SI."""
        base = quantity.in_base()
        powers = list(base.unit.powers)
        factor = 1.0
        for g_idx, scale in self._scales().items():
            p = powers[g_idx]
            if p != 0:
                factor *= scale ** float(p)
                powers[_GENERIC_TO_SI[g_idx]] += p
                powers[g_idx] = 0
        return Quantity(base.number * factor, Unit(1.0, powers))

    def to_nbody(self, quantity):
        """Convert a (partly) SI quantity to pure generic units."""
        base = quantity.in_base()
        powers = list(base.unit.powers)
        factor = 1.0
        for g_idx, scale in self._scales().items():
            si_idx = _GENERIC_TO_SI[g_idx]
            p = powers[si_idx]
            if p != 0:
                factor /= scale ** float(p)
                powers[g_idx] += p
                powers[si_idx] = 0
        return Quantity(base.number * factor, Unit(1.0, powers))

    to_generic = to_nbody

    def __repr__(self):
        return (
            f"nbody_to_si(mass_scale={self.mass_scale:.6g} kg, "
            f"length_scale={self.length_scale:.6g} m, "
            f"time_scale={self.time_scale:.6g} s)"
        )


def nbody_to_si(*anchors):
    """AMUSE-compatible spelling for the converter constructor."""
    return ConvertBetweenGenericAndSiUnits(*anchors)
