"""In-process MPI substrate with an mpi4py-flavoured API.

The paper's model codes (Gadget) and CESM's coupler are MPI programs.  We
provide an in-process substitute: ranks are Python threads, communication
goes through per-rank mailboxes, and the API mirrors mpi4py per the HPC
guides — lowercase methods (``send``/``recv``/``bcast``/...) move pickled
Python objects, uppercase methods (``Send``/``Recv``/``Bcast``/...) move
NumPy buffers without copies beyond the wire copy.  Point-to-point object
messages really cross a modeled wire: they are serialised through the
RPC layer's pickle-5 out-of-band encoding (see
:mod:`repro.rpc.protocol`), so large arrays travel as raw buffers with
one isolating copy and ranks get true value semantics.

Typical use::

    from repro.mpi import World

    def program(comm):
        rank, size = comm.rank, comm.size
        data = comm.bcast({"dt": 0.1} if rank == 0 else None, root=0)
        ...
        return comm.allreduce(local_energy, op="sum")

    results = World(4).run(program)

Determinism: message order per (source, dest, tag) is FIFO; collectives
are rendezvous-synchronised, so programs without wildcard receives are
deterministic.
"""

from __future__ import annotations

import pickle
import threading
from collections import deque

import numpy as np

from ..rpc.protocol import decode_payload, encode_payload

__all__ = ["World", "Intracomm", "Request", "ANY_SOURCE", "ANY_TAG", "MpiError"]

ANY_SOURCE = -1
ANY_TAG = -1

_REDUCERS = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
}


class MpiError(RuntimeError):
    """Raised for substrate-level failures (bad rank, dead world, ...)."""


def _pack_obj(obj):
    """Serialise an object-protocol message through the wire layer.

    Uses the RPC protocol's pickle-5 out-of-band encoding
    (:func:`repro.rpc.protocol.encode_payload`): metadata plus raw array
    buffers, copied once into the mailbox.  That single copy gives real
    MPI value semantics — the sender can mutate the object after
    ``send`` returns without corrupting the receiver.  Unpicklable
    objects fall back to by-reference transfer (in-process substrate
    escape hatch).
    """
    try:
        meta, buffers = encode_payload(obj)
    except (pickle.PicklingError, TypeError, AttributeError):
        return ("ref", obj)
    return ("obj", meta, [bytearray(b) for b in buffers])


def _unpack_obj(payload):
    kind = payload[0]
    if kind == "obj":
        return decode_payload(payload[1], payload[2])
    if kind in ("ref", "buf"):
        # unpicklable fallback / internal unblock sentinel, or a raw
        # array from the Send/Recv buffer protocol — by reference
        return payload[1]
    raise MpiError(f"unknown object-protocol kind {kind!r}")


class _Mailbox:
    """Buffered, condition-guarded message store for one rank."""

    def __init__(self):
        self._messages = deque()
        self._cond = threading.Condition()

    def put(self, source, tag, payload):
        with self._cond:
            self._messages.append((source, tag, payload))
            self._cond.notify_all()

    def get(self, source, tag, timeout):
        def _match():
            for i, (src, tg, _) in enumerate(self._messages):
                if source in (ANY_SOURCE, src) and tag in (ANY_TAG, tg):
                    return i
            return None

        with self._cond:
            idx = _match()
            while idx is None:
                if not self._cond.wait(timeout):
                    raise MpiError(
                        f"recv timed out waiting for source={source} "
                        f"tag={tag}"
                    )
                idx = _match()
            src, tg, payload = self._messages[idx]
            del self._messages[idx]
            return src, tg, payload

    def probe(self, source, tag):
        with self._cond:
            for src, tg, _ in self._messages:
                if source in (ANY_SOURCE, src) and tag in (ANY_TAG, tg):
                    return True
            return False


class _Rendezvous:
    """Reusable all-rank synchronisation point with a shared slot table."""

    def __init__(self, size):
        self.size = size
        self._cond = threading.Condition()
        self._slots = {}
        self._generation = 0
        self._arrived = 0

    def exchange(self, rank, value, timeout):
        """Deposit *value*, wait for everyone, return the full table."""
        with self._cond:
            gen = self._generation
            self._slots[rank] = value
            self._arrived += 1
            if self._arrived == self.size:
                self._generation += 1
                self._arrived = 0
                self._result = dict(self._slots)
                self._slots.clear()
                self._cond.notify_all()
            else:
                while self._generation == gen:
                    if not self._cond.wait(timeout):
                        raise MpiError("collective timed out")
            return self._result


class Request:
    """Handle for a non-blocking operation (mpi4py's Request)."""

    def __init__(self):
        self._event = threading.Event()
        self._value = None
        self._error = None

    def _complete(self, value=None, error=None):
        self._value = value
        self._error = error
        self._event.set()

    def test(self):
        if not self._event.is_set():
            return False, None
        if self._error is not None:
            raise self._error
        return True, self._value

    def wait(self, timeout=None):
        if not self._event.wait(timeout):
            raise MpiError("request wait timed out")
        if self._error is not None:
            raise self._error
        return self._value


class Intracomm:
    """A communicator over a set of world ranks."""

    def __init__(self, world, group_ranks, rank_in_group, timeout):
        self._world = world
        self._group = tuple(group_ranks)      # group index -> world rank
        self._rank = rank_in_group
        self._timeout = timeout
        key = ("rdv",) + self._group
        self._rendezvous = world._shared_structure(
            key, lambda: _Rendezvous(len(self._group))
        )
        # tags are namespaced per communicator so split comms don't collide
        self._tag_shift = hash(self._group) % 100003

    # -- mpi4py-style accessors ------------------------------------------------

    @property
    def rank(self):
        return self._rank

    @property
    def size(self):
        return len(self._group)

    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return len(self._group)

    # -- point to point -----------------------------------------------------------

    def _world_rank(self, group_rank):
        try:
            return self._group[group_rank]
        except IndexError:
            raise MpiError(
                f"rank {group_rank} out of range for communicator of "
                f"size {self.size}"
            ) from None

    def _encode_tag(self, tag):
        return tag if tag == ANY_TAG else tag + self._tag_shift

    def send(self, obj, dest, tag=0):
        self._world._mailboxes[self._world_rank(dest)].put(
            self._rank, self._encode_tag(tag), _pack_obj(obj)
        )

    def recv(self, source=ANY_SOURCE, tag=ANY_TAG):
        src, tg, payload = self._world._mailboxes[
            self._world_rank(self._rank)
        ].get(
            source, self._encode_tag(tag), self._timeout
        )
        return _unpack_obj(payload)

    def isend(self, obj, dest, tag=0):
        req = Request()
        try:
            self.send(obj, dest, tag)
        except Exception as exc:  # pragma: no cover - defensive
            req._complete(error=exc)
        else:
            req._complete(None)
        return req

    def irecv(self, source=ANY_SOURCE, tag=ANY_TAG):
        req = Request()

        def _worker():
            try:
                req._complete(self.recv(source, tag))
            except Exception as exc:
                req._complete(error=exc)

        thread = threading.Thread(target=_worker, daemon=True)
        thread.start()
        return req

    def sendrecv(self, obj, dest, source=ANY_SOURCE, sendtag=0, recvtag=ANY_TAG):
        req = self.isend(obj, dest, sendtag)
        value = self.recv(source, recvtag)
        req.wait()
        return value

    def probe(self, source=ANY_SOURCE, tag=ANY_TAG):
        return self._world._mailboxes[self._world_rank(self._rank)].probe(
            source, self._encode_tag(tag)
        )

    # Buffer-protocol variants.  The wire copy is explicit; receive fills
    # the caller-provided array in place (mpi4py convention).

    def Send(self, array, dest, tag=0):
        arr = np.ascontiguousarray(array)
        self._world._mailboxes[self._world_rank(dest)].put(
            self._rank, self._encode_tag(tag), ("buf", arr.copy())
        )

    def Recv(self, array, source=ANY_SOURCE, tag=ANY_TAG):
        _, _, payload = self._world._mailboxes[
            self._world_rank(self._rank)
        ].get(source, self._encode_tag(tag), self._timeout)
        kind, value = payload[0], payload[1]
        if kind != "buf":
            raise MpiError("Recv matched an object-protocol message")
        out = np.asarray(array)
        if out.size != value.size:
            raise MpiError(
                f"receive buffer size {out.size} != message size "
                f"{value.size}"
            )
        out.flat[:] = value.flat
        return out

    # -- collectives ----------------------------------------------------------------

    def barrier(self):
        self._rendezvous.exchange(self._rank, None, self._timeout)

    Barrier = barrier

    def bcast(self, obj, root=0):
        table = self._rendezvous.exchange(
            self._rank, obj if self._rank == root else None, self._timeout
        )
        return table[root]

    def Bcast(self, array, root=0):
        table = self._rendezvous.exchange(
            self._rank,
            np.ascontiguousarray(array).copy() if self._rank == root
            else None,
            self._timeout,
        )
        out = np.asarray(array)
        out.flat[:] = table[root].flat
        return out

    def scatter(self, values, root=0):
        if self._rank == root:
            if len(values) != self.size:
                raise MpiError(
                    f"scatter needs {self.size} items, got {len(values)}"
                )
        table = self._rendezvous.exchange(
            self._rank, values if self._rank == root else None,
            self._timeout,
        )
        return table[root][self._rank]

    def gather(self, value, root=0):
        table = self._rendezvous.exchange(self._rank, value, self._timeout)
        if self._rank != root:
            return None
        return [table[i] for i in range(self.size)]

    def allgather(self, value):
        table = self._rendezvous.exchange(self._rank, value, self._timeout)
        return [table[i] for i in range(self.size)]

    def alltoall(self, values):
        if len(values) != self.size:
            raise MpiError(
                f"alltoall needs {self.size} items, got {len(values)}"
            )
        table = self._rendezvous.exchange(self._rank, values, self._timeout)
        return [table[i][self._rank] for i in range(self.size)]

    def reduce(self, value, op="sum", root=0):
        result = self.allreduce(value, op)
        return result if self._rank == root else None

    def allreduce(self, value, op="sum"):
        reducer = _REDUCERS[op] if isinstance(op, str) else op
        table = self._rendezvous.exchange(self._rank, value, self._timeout)
        acc = table[0]
        for i in range(1, self.size):
            acc = reducer(acc, table[i])
        return acc

    def Allreduce(self, sendbuf, recvbuf, op="sum"):
        result = self.allreduce(np.ascontiguousarray(sendbuf), op)
        out = np.asarray(recvbuf)
        out.flat[:] = np.asarray(result).flat
        return out

    def allgatherv(self, array):
        """Concatenate 1-D/2-D arrays from all ranks (by leading axis)."""
        parts = self.allgather(np.ascontiguousarray(array))
        return np.concatenate(parts, axis=0)

    # -- topology ---------------------------------------------------------------------

    def split(self, color, key=None):
        """Partition the communicator (MPI_Comm_split)."""
        if key is None:
            key = self._rank
        table = self._rendezvous.exchange(
            self._rank, (color, key), self._timeout
        )
        members = sorted(
            (table[i][1], i) for i in range(self.size)
            if table[i][0] == color
        )
        group_world_ranks = [self._group[i] for _, i in members]
        my_index = [i for _, i in members].index(self._rank)
        if color is None:
            return None
        return Intracomm(
            self._world, group_world_ranks, my_index, self._timeout
        )

    Split = split

    def __repr__(self):
        return f"<Intracomm rank={self._rank} size={self.size}>"


class World:
    """Launchpad for an MPI-style program over *size* thread-ranks."""

    def __init__(self, size, timeout=120.0):
        if size < 1:
            raise MpiError("world size must be >= 1")
        self.size = int(size)
        self.timeout = float(timeout)
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self._shared = {}
        self._shared_lock = threading.Lock()

    def _shared_structure(self, key, factory):
        with self._shared_lock:
            if key not in self._shared:
                self._shared[key] = factory()
            return self._shared[key]

    def comm(self, rank):
        """The COMM_WORLD view for *rank*."""
        return Intracomm(self, range(self.size), rank, self.timeout)

    def run(self, target, *args, **kwargs):
        """Run ``target(comm, *args, **kwargs)`` on every rank.

        Returns the list of per-rank return values.  Any rank exception is
        re-raised in the caller (first by rank order) after all threads
        have stopped.
        """
        results = [None] * self.size
        errors = [None] * self.size

        def _main(rank):
            try:
                results[rank] = target(self.comm(rank), *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors[rank] = exc
                # unblock peers stuck in collectives
                for box in self._mailboxes:
                    box.put(rank, ANY_TAG, ("ref", None))

        threads = [
            threading.Thread(target=_main, args=(rank,), daemon=True)
            for rank in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(self.timeout * 2)
            if t.is_alive():
                raise MpiError("world did not terminate within timeout")
        for err in errors:
            if err is not None:
                raise err
        return results
