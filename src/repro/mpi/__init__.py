"""In-process mpi4py-like MPI substrate (threads + mailboxes)."""

from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    Intracomm,
    MpiError,
    Request,
    World,
)

__all__ = [
    "World",
    "Intracomm",
    "Request",
    "MpiError",
    "ANY_SOURCE",
    "ANY_TAG",
]
