"""Jungle resources: hosts, GPUs, sites, middleware and the Jungle itself.

"A Jungle Computing System consists of all compute resources available to
end-users, including clusters, clouds, grids, desktop grids,
supercomputers, as well as stand-alone machines and possibly even mobile
devices" (paper Sec. 2).  This module models exactly that inventory:

* :class:`Host` — cores, optional GPU, connectivity policy;
* :class:`GpuSpec` — named device with per-kernel-class rates (the
  GeForce 9600GT of the paper's desktop vs the Tesla C2050 of the LGM);
* :class:`Middleware` — access layer with submit overhead + job slots
  (SSH, PBS, SGE, local, Zorilla, Globus-like);
* :class:`Site` — a named resource (cluster/grid/cloud/...) with hosts,
  a front-end and one or more middlewares;
* :class:`Jungle` — the whole system: sites + wide-area network.
"""

from __future__ import annotations

from .des import Environment, SlotResource
from .network import FirewallPolicy, NetworkModel

__all__ = [
    "GpuSpec",
    "Host",
    "Middleware",
    "Site",
    "Jungle",
    "MIDDLEWARE_OVERHEADS",
    "GEFORCE_9600GT",
    "TESLA_C2050",
    "GTX580_NODE",
]


class GpuSpec:
    """A GPU device: name + rate (work units/s) per kernel class.

    Kernel classes are the abstract operation kinds the cost model
    charges: ``nbody_direct`` (GRAPE-style N² interactions/s), ``tree``
    (tree interactions/s), ``sph`` (SPH pair interactions/s).
    """

    def __init__(self, name, rates):
        self.name = name
        self.rates = dict(rates)

    def rate(self, op):
        return self.rates[op]

    def __repr__(self):
        return f"<GpuSpec {self.name}>"


# Devices of the paper's experiments.  Rates are calibrated so the Sec.
# 6.2 lab scenarios reproduce (see jungle/perfmodel.py and DESIGN.md §6).
GEFORCE_9600GT = GpuSpec(
    "GeForce 9600GT",
    {"nbody_direct": 4.0e8, "tree": 4.0e7, "sph": 1.6e7},
)
TESLA_C2050 = GpuSpec(
    "Tesla C2050",
    {"nbody_direct": 1.5e9, "tree": 6.0e7, "sph": 6.0e7},
)
GTX580_NODE = GpuSpec(
    "GTX 580",
    {"nbody_direct": 1.2e9, "tree": 4.5e7, "sph": 5.0e7},
)


class Host:
    """One machine in the jungle."""

    def __init__(self, name, cores=4, cpu_rate_factor=1.0, gpu=None,
                 policy=FirewallPolicy.OPEN, tags=()):
        self.name = name
        self.cores = int(cores)
        self.cpu_rate_factor = float(cpu_rate_factor)
        self.gpu = gpu
        self.policy = policy
        self.tags = tuple(tags)
        self.site = None        # set by Site.add_host

    @property
    def has_gpu(self):
        return self.gpu is not None

    def __repr__(self):
        gpu = f" gpu={self.gpu.name}" if self.gpu else ""
        return (
            f"<Host {self.name}@{self.site} cores={self.cores}{gpu} "
            f"{self.policy.value}>"
        )


MIDDLEWARE_OVERHEADS = {
    # seconds of submit overhead + seconds of median queue delay
    "local": (0.1, 0.0),
    "ssh": (1.0, 0.0),
    "pbs": (5.0, 30.0),
    "sge": (5.0, 20.0),
    "globus": (10.0, 60.0),
    "glite": (15.0, 120.0),
    "zorilla": (2.0, 0.0),
}


class Middleware:
    """Access middleware for a site: submit overhead + job slots.

    "the middleware used to access a resource differs greatly, using
    completely different interfaces" (paper Sec. 2) — PyGAT adaptors
    (:mod:`repro.ibis.gat`) translate a uniform job API onto these.
    """

    def __init__(self, kind, slots, submit_overhead=None, queue_delay=None):
        if kind not in MIDDLEWARE_OVERHEADS:
            raise ValueError(f"unknown middleware kind {kind!r}")
        default_overhead, default_queue = MIDDLEWARE_OVERHEADS[kind]
        self.kind = kind
        self.slots = slots                    # SlotResource, set by Site
        self.submit_overhead = (
            default_overhead if submit_overhead is None else submit_overhead
        )
        self.queue_delay = (
            default_queue if queue_delay is None else queue_delay
        )

    def __repr__(self):
        return f"<Middleware {self.kind}>"


class Site:
    """A named resource: hosts + front-end + middleware(s)."""

    KINDS = (
        "cluster", "grid", "cloud", "desktop-grid", "supercomputer",
        "standalone", "mobile",
    )

    def __init__(self, name, kind, location=(0.0, 0.0),
                 default_policy=FirewallPolicy.FIREWALLED):
        if kind not in self.KINDS:
            raise ValueError(f"unknown site kind {kind!r}")
        self.name = name
        self.kind = kind
        self.location = location          # (lat, lon) for the GUI map
        self.default_policy = default_policy
        self.hosts = {}
        self.frontend = None
        self.middlewares = {}
        self.jungle = None                # set by Jungle.add_site

    def add_host(self, host, frontend=False):
        host.site = self.name
        self.hosts[host.name] = host
        if frontend or self.frontend is None:
            self.frontend = host
        return host

    def add_hosts(self, prefix, count, **host_kwargs):
        """Convenience: add *count* identical compute nodes."""
        created = []
        for i in range(count):
            host = Host(f"{prefix}{i:02d}", **host_kwargs)
            created.append(self.add_host(host))
        return created

    def add_middleware(self, kind, env, slots=None, **kwargs):
        capacity = slots if slots is not None else max(
            1, len(self.hosts)
        )
        mw = Middleware(kind, SlotResource(env, capacity), **kwargs)
        self.middlewares[kind] = mw
        return mw

    def middleware(self, kind=None):
        if kind is None:
            if not self.middlewares:
                raise KeyError(f"site {self.name} has no middleware")
            return next(iter(self.middlewares.values()))
        return self.middlewares[kind]

    @property
    def compute_hosts(self):
        return [
            h for h in self.hosts.values() if h is not self.frontend
        ] or list(self.hosts.values())

    def gpu_hosts(self):
        return [h for h in self.hosts.values() if h.has_gpu]

    def __repr__(self):
        return (
            f"<Site {self.name} ({self.kind}) hosts={len(self.hosts)} "
            f"middleware={sorted(self.middlewares)}>"
        )


class Jungle:
    """The full Jungle Computing System: sites + WAN + DES clock."""

    def __init__(self, env=None):
        self.env = env or Environment()
        self.network = NetworkModel()
        self.sites = {}

    def add_site(self, site):
        site.jungle = self
        self.sites[site.name] = site
        self.network.add_site(site.name)
        return site

    def new_site(self, name, kind, middleware=None, **site_kwargs):
        site = Site(name, kind, **site_kwargs)
        self.add_site(site)
        if middleware:
            site.add_middleware(middleware, self.env)
        return site

    def connect(self, site_a, site_b, latency_s, bandwidth_gbps,
                name=None):
        self.network.connect(
            site_a, site_b, latency_s, bandwidth_gbps * 1e9, name=name
        )

    def host(self, name):
        for site in self.sites.values():
            if name in site.hosts:
                return site.hosts[name]
        raise KeyError(f"no host named {name!r}")

    def site_of(self, host):
        return self.sites[host.site]

    def all_hosts(self):
        for site in self.sites.values():
            yield from site.hosts.values()

    def __repr__(self):
        return f"<Jungle sites={sorted(self.sites)}>"
