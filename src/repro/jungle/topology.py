"""Jungle topologies of the paper's experiments.

Three builders reproduce the machine/network configurations:

* :func:`make_desktop_jungle` — Sec. 6.2 scenarios 1-2: one quad-core
  Core2 desktop at the VU, optionally with its GeForce 9600GT.
* :func:`make_lab_jungle` — Fig. 12: the desktop (client/coupler) plus
  DAS-4 UvA (8 nodes, Gadget), DAS-4 "Amsterdam" VU node (SSE), DAS-4
  TUD Delft (2 GPU nodes, Octgrav) and the LGM in Leiden (Tesla C2050,
  PhiGRAPE), connected by 10G STARplane lightpaths and a 1G path to
  Leiden.
* :func:`make_sc11_jungle` — Fig. 9: the SC11 demonstration, with the
  coupler on a laptop in Seattle behind a transatlantic 1G lightpath,
  plus the SARA render/visualisation cluster driving the tiled display.

Compute nodes inside clusters are ISOLATED (non-routed) or FIREWALLED —
the connectivity problems SmartSockets' hubs must solve; front-ends are
OPEN.
"""

from __future__ import annotations

from .network import FirewallPolicy
from .resources import (
    GEFORCE_9600GT,
    GTX580_NODE,
    Host,
    Jungle,
    Site,
    TESLA_C2050,
)

__all__ = [
    "make_desktop_jungle",
    "make_lab_jungle",
    "make_sc11_jungle",
    "DAS4_SITES",
]

# (site name, city, location lat/lon) of the DAS-4 sites used
DAS4_SITES = {
    "DAS-4 (VU)": (52.334, 4.865),
    "DAS-4 (UvA)": (52.355, 4.954),
    "DAS-4 (TUD)": (52.002, 4.373),
    "LGM (LU)": (52.155, 4.485),
    "SARA": (52.356, 4.954),
}


def _cluster(jungle, name, kind="cluster", middleware="pbs", nodes=8,
             cores=8, cpu_rate_factor=2.0, gpu=None, location=(52.3, 4.9),
             node_policy=FirewallPolicy.ISOLATED):
    site = Site(name, kind, location=location)
    jungle.add_site(site)
    frontend = Host(
        f"{name}-frontend", cores=cores,
        cpu_rate_factor=cpu_rate_factor, policy=FirewallPolicy.OPEN,
        tags=("frontend",),
    )
    site.add_host(frontend, frontend=True)
    site.add_hosts(
        f"{name}-node", nodes, cores=cores,
        cpu_rate_factor=cpu_rate_factor, gpu=gpu, policy=node_policy,
    )
    site.add_middleware(middleware, jungle.env, slots=nodes)
    return site


def make_desktop_jungle(with_gpu=False):
    """Scenario 1/2: a user's quad-core desktop at the VU."""
    jungle = Jungle()
    site = Site(
        "VU desktop", "standalone", location=DAS4_SITES["DAS-4 (VU)"],
    )
    jungle.add_site(site)
    desktop = Host(
        "desktop", cores=4, cpu_rate_factor=1.0,
        gpu=GEFORCE_9600GT if with_gpu else None,
        policy=FirewallPolicy.FIREWALLED, tags=("client",),
    )
    site.add_host(desktop, frontend=True)
    site.add_middleware("local", jungle.env, slots=4)
    return jungle


def _add_dutch_sites(jungle):
    """The four Dutch resources of Fig. 12 (shared with Fig. 9)."""
    uva = _cluster(
        jungle, "DAS-4 (UvA)", nodes=8, middleware="sge",
        location=DAS4_SITES["DAS-4 (UvA)"],
    )
    tud = _cluster(
        jungle, "DAS-4 (TUD)", nodes=2, middleware="sge",
        gpu=GTX580_NODE, location=DAS4_SITES["DAS-4 (TUD)"],
    )
    lgm = _cluster(
        jungle, "LGM (LU)", nodes=1, middleware="ssh",
        gpu=TESLA_C2050, location=DAS4_SITES["LGM (LU)"],
        node_policy=FirewallPolicy.FIREWALLED,
    )
    # 10G STARplane lightpaths between the DAS-4 sites; 1G to Leiden
    return uva, tud, lgm


def make_lab_jungle():
    """Fig. 12: desktop client + VU/UvA/TUD clusters + LGM.

    Fig. 12 uses *five* resources: the desktop (coupler), the DAS-4 VU
    cluster (8 nodes, Gadget), DAS-4 UvA (1 node, SSE), DAS-4 TUD
    (2 GPU nodes, Octgrav) and the LGM (Tesla C2050, PhiGRAPE),
    connected by 10G STARplane lightpaths + 1GbE/1G paths.
    """
    jungle = make_desktop_jungle(with_gpu=True)
    _cluster(
        jungle, "DAS-4 (VU)", nodes=8, middleware="sge",
        location=DAS4_SITES["DAS-4 (VU)"],
    )
    uva, tud, lgm = _add_dutch_sites(jungle)
    jungle.connect("VU desktop", "DAS-4 (VU)", 0.0002, 1.0,
                   name="1GbE desktop-VU")
    jungle.connect("DAS-4 (VU)", "DAS-4 (UvA)", 0.0005, 10.0,
                   name="STARplane VU-UvA")
    jungle.connect("DAS-4 (VU)", "DAS-4 (TUD)", 0.0010, 10.0,
                   name="STARplane VU-TUD")
    jungle.connect("DAS-4 (VU)", "LGM (LU)", 0.0012, 1.0,
                   name="1G VU-Leiden")
    jungle.connect("DAS-4 (UvA)", "DAS-4 (TUD)", 0.0010, 10.0,
                   name="STARplane UvA-TUD")
    return jungle


def make_sc11_jungle():
    """Fig. 9: SC11 worst case — coupler in Seattle, models in NL."""
    jungle = Jungle()
    seattle = Site(
        "Seattle (SC11)", "standalone", location=(47.609, -122.333),
    )
    jungle.add_site(seattle)
    laptop = Host(
        "laptop", cores=2, cpu_rate_factor=0.8,
        policy=FirewallPolicy.FIREWALLED, tags=("client",),
    )
    seattle.add_host(laptop, frontend=True)
    seattle.add_middleware("local", jungle.env, slots=1)

    # Fig. 9: the 8-node Gadget run sits on the VU's Amsterdam cluster
    _cluster(
        jungle, "DAS-4 (VU)", nodes=8, middleware="sge",
        location=DAS4_SITES["DAS-4 (VU)"],
    )
    uva, tud, lgm = _add_dutch_sites(jungle)
    _cluster(
        jungle, "SARA", nodes=24, middleware="pbs", gpu=GTX580_NODE,
        location=DAS4_SITES["SARA"],
    )

    # transatlantic 1G lightpath: ~72 ms one way Seattle<->Amsterdam
    jungle.connect("Seattle (SC11)", "DAS-4 (VU)", 0.072, 1.0,
                   name="transatlantic 1G lightpath")
    # Fig. 9: the tiled display has its own 2 x 10G transatlantic
    # lightpaths from the SARA render/visualisation cluster
    jungle.connect("SARA", "Seattle (SC11)", 0.072, 20.0,
                   name="2x transatlantic 10G lightpath (display)")
    jungle.connect("DAS-4 (VU)", "DAS-4 (UvA)", 0.0005, 10.0,
                   name="STARplane VU-UvA")
    jungle.connect("DAS-4 (VU)", "DAS-4 (TUD)", 0.0010, 10.0,
                   name="STARplane VU-TUD")
    jungle.connect("DAS-4 (VU)", "LGM (LU)", 0.0012, 1.0,
                   name="1G VU-Leiden")
    jungle.connect("DAS-4 (UvA)", "SARA", 0.0003, 10.0,
                   name="SURFnet UvA-SARA")
    return jungle
