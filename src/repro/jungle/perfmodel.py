"""Kernel cost model calibrated to the paper's Sec. 6.2 lab results.

The paper's quantitative core is the per-iteration wall time of the
embedded-cluster simulation under four placements:

=========  ==============================================  =========
scenario   placement                                        s/iter
=========  ==============================================  =========
cpu        desktop quad-core; Fi + PhiGRAPE(CPU)              353
local-gpu  desktop + GeForce 9600GT; Octgrav + PhiGRAPE(GPU)   89
remote-gpu Octgrav moved to a Tesla C2050 at LGM (30 km)       84
jungle     4 sites (Fig. 12): models each on best resource    62.4
=========  ==============================================  =========

We reproduce these *shapes* with an explicit cost model: per-device rates
for three kernel classes (direct N², tree, SPH) plus communication and
per-call channel overheads.  The calibration (DESIGN.md §6) fixes the
effective per-iteration work so that the desktop-CPU baseline decomposes
into coupling 250 s + gravity 40 s + hydro 52 s + coupler 8 s ≈ 353 s/iter,
and the published GPU/remote/jungle numbers follow from device rates:

* CPU core: tree 4.0e6 u/s, direct 5.0e7 u/s, SPH 2.0e6 u/s;
* GeForce 9600GT: tree 10× CPU, direct 8× CPU → 89 s/iter;
* Tesla C2050: tree 15× CPU, direct 30× CPU → 84 s/iter incl. WAN;
* DAS-4 node: 2× desktop core; Gadget's small-N parallel efficiency
  eff(n) = 1/(1 + (n-1)) (the paper: "the simulation used in our tests
  is too small to properly test the scalability") → 62 s/iter.

The model deliberately charges *sequential* drift RPC by default — the
paper's prototype issues evolve calls through the central coupler, which
is the bottleneck Sec. 4.1/7 flags; the async-overlap variant
(``overlap_drift=True``: drift charges ``max()`` over the concurrently
evolving codes instead of ``sum()``) quantifies the improvement
(ablation A3), and ``schedule="dag"`` charges the CRITICAL PATH of the
TaskGraph bridge — per-model kick→drift→kick chains joined per edge,
so each model's share of the coupling work rides the slack of the
slowest drift.  Since the async-first API redesign,
:class:`~repro.distributed.core.JungleRunner` selects the variant from
the wrapped simulation's bridge: an async (TaskGraph) bridge gets
critical-path accounting automatically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "CPU_CORE_RATES",
    "IterationWorkload",
    "Placement",
    "CostModel",
    "CHANNEL_CALL_OVERHEAD_S",
]

#: per-core rates (work units / second) for the desktop-class CPU
CPU_CORE_RATES = {
    "nbody_direct": 5.0e7,
    "tree": 4.0e6,
    "sph": 2.0e6,
    "lookup": 1.0e4,
}

#: per-call client-side overhead of each channel kind (seconds)
CHANNEL_CALL_OVERHEAD_S = {
    "direct": 1.0e-5,
    "mpi": 1.0e-5,
    "sockets": 2.0e-4,
    # daemon + proxy add two extra hops and Java-side dispatch
    "ibis": 1.0e-2,
    "distributed": 1.0e-2,
}

#: python-side coupler work per iteration (unit conversion, checking,
#: script logic) — charged once per iteration regardless of placement
COUPLER_PYTHON_S = 8.0

#: calibration constants: effective work units per iteration (see
#: module docstring; N_ref = 1000 stars + 10000 gas)
_TREE_UNITS_PER_TARGET_LOG = 3385.0
_DIRECT_SUBSTEPS = 2000.0
_SPH_UNITS_PER_PAIR = 325.0
_SPH_NEIGHBOURS = 32.0
#: Gadget parallel-efficiency knee (paper: poor small-N scaling)
SPH_PARALLEL_ALPHA = 1.0

#: bytes per particle for a full state exchange (mass+pos+vel, f64)
STATE_BYTES = 56
#: RPC round trips per iteration per role (kicks, evolve, pulls)
_ROUND_TRIPS = {"coupling": 8, "gravity": 6, "hydro": 6, "se": 1}


@dataclass
class IterationWorkload:
    """Work and data volumes of ONE outer iteration of the simulation."""

    n_stars: int = 1000
    n_gas: int = 10000

    @property
    def n_total(self):
        return self.n_stars + self.n_gas

    def work_units(self, role):
        """Effective work units for *role* ('tree'/'nbody_direct'/...)."""
        log_n = math.log2(max(self.n_total, 2))
        if role == "coupling":
            return (
                "tree",
                _TREE_UNITS_PER_TARGET_LOG * 2.0 * self.n_total * log_n,
            )
        if role == "gravity":
            return ("nbody_direct", _DIRECT_SUBSTEPS * self.n_stars ** 2)
        if role == "hydro":
            return (
                "sph",
                _SPH_UNITS_PER_PAIR * self.n_gas * _SPH_NEIGHBOURS,
            )
        if role == "se":
            return ("lookup", float(self.n_stars))
        raise KeyError(role)

    def comm_bytes(self, role):
        """Coupler <-> role bytes per iteration (both directions)."""
        if role == "coupling":
            # two kick phases: full state upload + field results back
            return 2 * (
                self.n_total * STATE_BYTES
                + (self.n_total) * 24
            )
        if role == "gravity":
            return 4 * self.n_stars * 24 + self.n_stars * STATE_BYTES
        if role == "hydro":
            return 4 * self.n_gas * 24 + self.n_gas * STATE_BYTES
        if role == "se":
            return self.n_stars * 40
        raise KeyError(role)

    def round_trips(self, role):
        return _ROUND_TRIPS[role]


@dataclass
class Placement:
    """Where each role runs: role -> (host, n_nodes, channel kind)."""

    assignments: dict = field(default_factory=dict)
    coupler_host: object = None

    def assign(self, role, host, nodes=1, channel="ibis"):
        self.assignments[role] = (host, int(nodes), channel)
        return self

    def host(self, role):
        return self.assignments[role][0]

    def nodes(self, role):
        return self.assignments[role][1]

    def channel(self, role):
        return self.assignments[role][2]

    def roles(self):
        return sorted(self.assignments)


class CostModel:
    """Times one simulation iteration for a placement on a jungle."""

    def __init__(self, jungle, cpu_rates=None,
                 coupler_python_s=COUPLER_PYTHON_S,
                 sph_parallel_alpha=SPH_PARALLEL_ALPHA):
        self.jungle = jungle
        self.cpu_rates = dict(cpu_rates or CPU_CORE_RATES)
        self.coupler_python_s = coupler_python_s
        self.sph_parallel_alpha = sph_parallel_alpha

    # -- device selection ------------------------------------------------------

    def device_rate(self, host, op, prefer_gpu):
        """Work units/s the host delivers for *op*."""
        if prefer_gpu and host.gpu is not None and op in host.gpu.rates:
            return host.gpu.rate(op), "gpu"
        return self.cpu_rates[op] * host.cpu_rate_factor, "cpu"

    def parallel_efficiency(self, nodes):
        """Small-problem strong-scaling efficiency (Gadget-style)."""
        if nodes <= 1:
            return 1.0
        return 1.0 / (1.0 + self.sph_parallel_alpha * (nodes - 1))

    # -- per-role timing ----------------------------------------------------------

    def compute_time(self, workload, role, host, nodes=1,
                     prefer_gpu=None):
        """Seconds of modeled compute for *role* on *host*."""
        op, units = workload.work_units(role)
        if prefer_gpu is None:
            prefer_gpu = host.gpu is not None and op in (
                "tree", "nbody_direct"
            )
        rate, device = self.device_rate(host, op, prefer_gpu)
        if nodes > 1:
            rate = rate * nodes * self.parallel_efficiency(nodes)
        seconds = units / rate
        self.jungle.network.traffic.record_busy(
            host.name, seconds, device
        )
        return seconds

    def comm_time(self, workload, role, host, coupler_host, channel):
        """Seconds of modeled coupler<->worker communication."""
        net = self.jungle.network
        n_bytes = workload.comm_bytes(role)
        trips = workload.round_trips(role)
        latency = net.latency(coupler_host.site, host.site)
        bandwidth = net.bandwidth(coupler_host.site, host.site)
        overhead = CHANNEL_CALL_OVERHEAD_S[channel]
        net.traffic.record(
            coupler_host.site, host.site, n_bytes // 2, "ipl"
        )
        net.traffic.record(
            host.site, coupler_host.site, n_bytes - n_bytes // 2, "ipl"
        )
        return trips * (2.0 * latency + overhead) + (
            8.0 * n_bytes / bandwidth
        )

    # -- iteration ------------------------------------------------------------------

    def iteration_time(self, workload, placement, overlap_drift=False,
                       direct_model_comm=False, schedule=None):
        """Modeled seconds per outer iteration, with a breakdown.

        ``overlap_drift=False`` (default) reproduces the paper's
        prototype: the coupler issues evolve calls one after another.
        ``overlap_drift=True`` is the async-bridge variant (A3).
        ``direct_model_comm=True`` models the paper's Sec. 7 future
        work ("allow direct communication between models"): the
        coupling model exchanges state with gravity/hydro directly
        instead of through the central coupler, so its traffic sees
        model-to-model latency rather than two coupler hops.

        *schedule* selects the coupling-point accounting:

        * ``"barrier"`` (default) — the pre-DAG bridge: the kick
          phases serialize with the drift phase, which charges
          ``sum()`` (sequential) or ``max()`` (*overlap_drift*) over
          the models at ONE barrier.
        * ``"dag"`` — the TaskGraph bridge: per-model chains
          ``kick-share → drift → kick-share`` joined per edge, so the
          iteration costs the CRITICAL PATH ``max_r(kick_r + drift_r)``
          — each model's share of the coupling model's field work
          rides the slack of the slowest drift instead of serializing
          in front of it.  Implies overlapped drifts.
        """
        if schedule is None:
            schedule = "barrier"
        if schedule not in ("barrier", "dag"):
            raise ValueError(
                f"unknown schedule {schedule!r}; "
                "known: ['barrier', 'dag']"
            )
        coupler = placement.coupler_host
        breakdown = {}
        for role in placement.roles():
            host, nodes, channel = placement.assignments[role]
            compute = self.compute_time(workload, role, host, nodes)
            comm_peer = coupler
            if direct_model_comm and role == "coupling":
                # nearest data partner: whichever model host is closest
                peers = [
                    placement.host(r) for r in placement.roles()
                    if r not in ("coupling",)
                ]
                comm_peer = min(
                    peers,
                    key=lambda h: self.jungle.network.latency(
                        host.site, h.site
                    ),
                )
            comm = self.comm_time(
                workload, role, host, comm_peer, channel
            )
            if nodes > 1:
                # the worker's internal MPI traffic (Gadget's domain
                # decomposition) stays inside the site — the orange
                # flows of paper Fig. 11
                self.jungle.network.traffic.record(
                    host.site, host.site,
                    workload.comm_bytes(role) * nodes, "mpi",
                )
            breakdown[role] = {
                "compute_s": compute,
                "comm_s": comm,
                "host": host.name,
                "site": host.site,
                "nodes": nodes,
                "channel": channel,
            }
        kick_s = (
            breakdown["coupling"]["compute_s"]
            + breakdown["coupling"]["comm_s"]
        )
        drift_roles = [r for r in placement.roles() if r != "coupling"]
        drift_parts = [
            breakdown[r]["compute_s"] + breakdown[r]["comm_s"]
            for r in drift_roles
        ]
        if schedule == "dag":
            # critical path over per-model chains: each drifting model
            # carries its share of the coupling model's field work
            # (both half-kicks), and chains only join per edge — the
            # iteration costs the slowest CHAIN, not kick-barrier +
            # drift-barrier
            kick_share = kick_s / max(len(drift_parts), 1)
            chains = [kick_share + drift for drift in drift_parts]
            drift_s = max(chains) if chains else 0.0
            total = drift_s + self.coupler_python_s
            overlap_drift = True
        else:
            # the kick phases serialise with the single drift barrier
            drift_s = max(drift_parts) if overlap_drift \
                else sum(drift_parts)
            total = kick_s + drift_s + self.coupler_python_s
        return {
            "total_s": total,
            "kick_s": kick_s,
            "drift_s": drift_s,
            "coupler_python_s": self.coupler_python_s,
            "breakdown": breakdown,
            "overlap_drift": overlap_drift,
            "schedule": schedule,
        }
