"""Deterministic discrete-event simulation kernel.

The jungle substrate (sites, links, middleware queues) and the Ibis stack
logic (SmartSockets, IPL, GAT, Zorilla, Deploy) all run as coroutine
processes on this kernel — a compact SimPy-style engine:

* :class:`Environment` — event queue + virtual clock (seconds);
* :class:`Event` — one-shot triggerable with callbacks;
* :class:`Process` — a generator that yields events to wait on;
* :class:`Timeout` — delay events;
* :class:`Store` — FIFO channel with blocking get;
* :class:`SlotResource` — counted resource (middleware job slots);
* :func:`all_of` / :func:`any_of` — composite waits.

Everything is single-threaded and deterministic: events at equal times
fire in scheduling order.  Processes may be interrupted
(:meth:`Process.interrupt`) — that is how resource failures are injected
in the fault-tolerance tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from types import GeneratorType

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Store",
    "SlotResource",
    "Interrupt",
    "all_of",
    "any_of",
]

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event; processes yield these to wait for them."""

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True

    @property
    def triggered(self):
        return self._value is not _PENDING

    @property
    def ok(self):
        return self.triggered and self._ok

    @property
    def value(self):
        if self._value is _PENDING:
            raise RuntimeError("event has not been triggered")
        return self._value

    def succeed(self, value=None):
        if self.triggered:
            raise RuntimeError("event already triggered")
        self._value = value
        self._ok = True
        self.env._schedule(self)
        return self

    def fail(self, exception):
        if self.triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._value = exception
        self._ok = False
        self.env._schedule(self)
        return self

    def _run_callbacks(self):
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback):
        if self.callbacks is None:
            # already processed: run immediately
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """Event that fires *delay* seconds after creation.

    The value materialises only when the scheduler processes the event
    — ``triggered`` stays False until the delay has elapsed (composites
    like :func:`all_of` rely on this).
    """

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise ValueError("negative delay")
        super().__init__(env)
        self._pending_value = value
        env._schedule(self, delay=delay)

    def succeed(self, value=None):  # pragma: no cover - guard
        raise RuntimeError("timeouts auto-trigger")


class Process(Event):
    """Runs a generator; the process event triggers on completion."""

    def __init__(self, env, generator):
        if not isinstance(generator, GeneratorType):
            raise TypeError("process target must be a generator")
        super().__init__(env)
        self._generator = generator
        self._waiting_on = None
        # bootstrap on the next tick
        boot = Event(env)
        boot._value = None
        boot._ok = True
        env._schedule(boot)
        boot.add_callback(self._resume)

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current
        wait point."""
        if self.triggered:
            return
        interrupt_event = Event(self.env)
        interrupt_event._value = Interrupt(cause)
        interrupt_event._ok = False
        # detach from what we were waiting on
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self.env._schedule(interrupt_event)
        interrupt_event.add_callback(self._resume)

    def _resume(self, event):
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            super().succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            super().fail(exc)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {target!r}; processes must yield events"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class Environment:
    """Virtual clock + event queue."""

    def __init__(self, start_time=0.0):
        self.now = float(start_time)
        self._queue = []
        self._sequence = itertools.count()

    def _schedule(self, event, delay=0.0):
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), event)
        )

    def timeout(self, delay, value=None):
        return Timeout(self, delay, value)

    def event(self):
        return Event(self)

    def process(self, generator):
        return Process(self, generator)

    def run(self, until=None):
        """Process events until the queue empties or the clock passes
        *until* (the clock is left at ``until`` in that case)."""
        while self._queue:
            when, _, event = self._queue[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            self.now = when
            if event._value is _PENDING and hasattr(
                event, "_pending_value"
            ):
                event._value = event._pending_value
                event._ok = True
            if event.callbacks is not None:
                event._run_callbacks()
        if until is not None:
            self.now = max(self.now, until)

    def run_until_complete(self, process, limit=None):
        """Run until *process* finishes; returns its value or raises."""
        self.run(until=limit)
        if not process.triggered:
            raise RuntimeError(
                f"process did not complete by t={self.now}"
            )
        if not process._ok:
            raise process._value
        return process._value


class Store:
    """FIFO item channel with blocking ``get``."""

    def __init__(self, env, capacity=math.inf):
        self.env = env
        self.capacity = capacity
        self.items = []
        self._getters = []

    def put(self, item):
        """Non-blocking put (capacity is advisory for now)."""
        while self._getters:
            getter = self._getters.pop(0)
            if not getter.triggered:
                getter.succeed(item)
                return
        self.items.append(item)

    def get(self):
        """Event that fires with the next item."""
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.pop(0))
        else:
            self._getters.append(event)
        return event

    def __len__(self):
        return len(self.items)


class SlotResource:
    """Counted resource: *capacity* concurrent holders, FIFO waiters.

    Models middleware job slots (cluster nodes) — requesting a slot when
    the cluster is full models queue wait time.
    """

    def __init__(self, env, capacity):
        self.env = env
        self.capacity = int(capacity)
        self.in_use = 0
        self._waiters = []

    def request(self):
        return self.request_many(1)

    def request_many(self, count):
        """Atomically acquire *count* slots (all-or-wait, FIFO).

        Atomicity prevents the piecemeal-acquisition deadlock two
        multi-node jobs would otherwise hit; head-of-line blocking
        matches how batch schedulers allocate node sets.
        """
        if count > self.capacity:
            raise RuntimeError(
                f"requested {count} slots but capacity is "
                f"{self.capacity}"
            )
        event = Event(self.env)
        self._waiters.append((event, count))
        self._grant()
        return event

    def release(self, count=1):
        if self.in_use < count:
            raise RuntimeError("release without request")
        self.in_use -= count
        self._grant()

    def _grant(self):
        while self._waiters:
            event, count = self._waiters[0]
            if event.triggered:          # cancelled waiter
                self._waiters.pop(0)
                continue
            if self.in_use + count > self.capacity:
                return
            self._waiters.pop(0)
            self.in_use += count
            event.succeed(self)

    @property
    def queued(self):
        return len(
            [1 for event, _ in self._waiters if not event.triggered]
        )


def all_of(env, events):
    """Event that fires when every event in *events* has fired."""
    gate = Event(env)
    pending = [e for e in events if not e.triggered]
    remaining = len(pending)
    if remaining == 0:
        gate.succeed([e.value for e in events])
        return gate
    state = {"left": remaining}

    def _on_fire(event):
        if gate.triggered:
            return
        if not event._ok:
            gate.fail(event._value)
            return
        state["left"] -= 1
        if state["left"] == 0:
            gate.succeed([e.value for e in events])

    for event in pending:
        event.add_callback(_on_fire)
    return gate


def any_of(env, events):
    """Event that fires when the first of *events* fires."""
    gate = Event(env)

    def _on_fire(event):
        if gate.triggered:
            return
        if event._ok:
            gate.succeed(event._value)
        else:
            gate.fail(event._value)

    for event in events:
        if event.triggered:
            _on_fire(event)
            break
        event.add_callback(_on_fire)
    return gate
