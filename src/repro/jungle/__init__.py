"""The simulated Jungle Computing System substrate.

Discrete-event kernel (:mod:`repro.jungle.des`), network + firewalls
(:mod:`repro.jungle.network`), resources (:mod:`repro.jungle.resources`),
the calibrated cost model (:mod:`repro.jungle.perfmodel`) and the paper's
topologies (:mod:`repro.jungle.topology`).
"""

from .des import (
    Environment,
    Event,
    Interrupt,
    Process,
    SlotResource,
    Store,
    all_of,
    any_of,
)
from .network import (
    ConnectivityError,
    FirewallPolicy,
    NetworkModel,
    TrafficRecorder,
)
from .perfmodel import (
    CHANNEL_CALL_OVERHEAD_S,
    CPU_CORE_RATES,
    CostModel,
    IterationWorkload,
    Placement,
)
from .resources import (
    GEFORCE_9600GT,
    GTX580_NODE,
    GpuSpec,
    Host,
    Jungle,
    Middleware,
    Site,
    TESLA_C2050,
)
from .topology import (
    make_desktop_jungle,
    make_lab_jungle,
    make_sc11_jungle,
)

__all__ = [
    "Environment", "Event", "Process", "Store", "SlotResource",
    "Interrupt", "all_of", "any_of",
    "FirewallPolicy", "NetworkModel", "TrafficRecorder",
    "ConnectivityError",
    "CostModel", "IterationWorkload", "Placement",
    "CPU_CORE_RATES", "CHANNEL_CALL_OVERHEAD_S",
    "GpuSpec", "Host", "Site", "Jungle", "Middleware",
    "GEFORCE_9600GT", "TESLA_C2050", "GTX580_NODE",
    "make_desktop_jungle", "make_lab_jungle", "make_sc11_jungle",
]
