"""Wide-area network model: links, firewalls/NATs, traffic accounting.

"Resources, especially clusters and supercomputers, are usually not
designed with communication to the outside world in mind, resulting in
non-routed networks, firewalls, NATs, and other restrictions on
communication" (paper Sec. 2).  The model captures exactly the properties
SmartSockets must overcome:

* per-host :class:`FirewallPolicy` — OPEN accepts anything; FIREWALLED
  and NAT hosts can originate outbound connections but refuse inbound
  ones; ISOLATED hosts (non-routed compute nodes) have no off-site
  connectivity at all;
* links between sites with latency and bandwidth; transfer time is
  path latency + volume/bottleneck-bandwidth;
* a :class:`TrafficRecorder` keeping the per-site-pair, per-protocol
  byte counts behind the paper's Fig. 11 traffic visualisation.
"""

from __future__ import annotations

import enum

import networkx as nx

__all__ = [
    "FirewallPolicy",
    "ConnectivityError",
    "NetworkModel",
    "TrafficRecorder",
]


class FirewallPolicy(enum.Enum):
    """Connectivity behaviour of a host."""

    OPEN = "open"                  # accepts inbound from anywhere
    FIREWALLED = "firewalled"      # outbound only; inbound refused
    NAT = "nat"                    # private address; outbound only
    ISOLATED = "isolated"          # non-routed: no off-site traffic


class ConnectivityError(ConnectionError):
    """Raised when the network refuses a connection setup."""


#: default intra-site LAN characteristics
LAN_LATENCY_S = 1e-4
LAN_BANDWIDTH_BPS = 10e9
#: loopback characteristics (paper Sec. 5: ">8 Gbit/s ... extremely
#: small latency" on a modest laptop)
LOOPBACK_LATENCY_S = 2e-5
LOOPBACK_BANDWIDTH_BPS = 10e9


class TrafficRecorder:
    """Byte counts per (src site, dst site, protocol) + per-host load."""

    def __init__(self):
        self.bytes = {}
        self.messages = {}
        self.host_busy_s = {}

    def record(self, src_site, dst_site, n_bytes, protocol):
        key = (src_site, dst_site, protocol)
        self.bytes[key] = self.bytes.get(key, 0) + int(n_bytes)
        self.messages[key] = self.messages.get(key, 0) + 1

    def record_busy(self, host_name, seconds, kind="cpu"):
        key = (host_name, kind)
        self.host_busy_s[key] = self.host_busy_s.get(key, 0.0) + seconds

    def matrix(self, protocol=None):
        """{(src, dst): bytes} filtered by protocol."""
        out = {}
        for (src, dst, proto), count in self.bytes.items():
            if protocol is not None and proto != protocol:
                continue
            out[(src, dst)] = out.get((src, dst), 0) + count
        return out

    def total_bytes(self, protocol=None):
        return sum(self.matrix(protocol).values())

    def load(self, host_name, elapsed_s, kind="cpu"):
        """Fraction of *elapsed_s* host spent busy on *kind* work."""
        if elapsed_s <= 0:
            return 0.0
        busy = self.host_busy_s.get((host_name, kind), 0.0)
        return min(1.0, busy / elapsed_s)


class NetworkModel:
    """Site-level WAN graph with host-level connectivity policies."""

    def __init__(self):
        self.graph = nx.Graph()
        self.traffic = TrafficRecorder()

    def add_site(self, site_name):
        self.graph.add_node(site_name)

    def connect(self, site_a, site_b, latency_s, bandwidth_bps,
                name=None):
        """Add a WAN link (e.g. a lightpath) between two sites."""
        self.graph.add_edge(
            site_a, site_b,
            latency=float(latency_s), bandwidth=float(bandwidth_bps),
            name=name or f"{site_a}--{site_b}",
        )

    # -- connectivity (what SmartSockets has to deal with) ------------------

    def can_accept(self, src_host, dst_host):
        """Would a direct connection attempt src -> dst succeed?"""
        if src_host.site == dst_host.site:
            return True
        if not self.has_route(src_host.site, dst_host.site):
            return False
        if src_host.policy is FirewallPolicy.ISOLATED:
            return False
        if dst_host.policy in (
            FirewallPolicy.FIREWALLED,
            FirewallPolicy.NAT,
            FirewallPolicy.ISOLATED,
        ):
            return False
        return True

    def can_originate(self, src_host, dst_site):
        """Can *src_host* open any off-site connection toward dst_site?"""
        if src_host.site == dst_site:
            return True
        if src_host.policy is FirewallPolicy.ISOLATED:
            return False
        return self.has_route(src_host.site, dst_site)

    def has_route(self, site_a, site_b):
        if site_a == site_b:
            return True
        try:
            return nx.has_path(self.graph, site_a, site_b)
        except nx.NodeNotFound:
            return False

    # -- timing ------------------------------------------------------------------

    def path(self, site_a, site_b):
        return nx.shortest_path(
            self.graph, site_a, site_b, weight="latency"
        )

    def latency(self, site_a, site_b):
        """One-way latency (s) along the shortest path."""
        if site_a == site_b:
            return LAN_LATENCY_S
        path = self.path(site_a, site_b)
        return sum(
            self.graph.edges[u, v]["latency"]
            for u, v in zip(path, path[1:], strict=False)
        )

    def bandwidth(self, site_a, site_b):
        """Bottleneck bandwidth (bit/s) along the shortest path."""
        if site_a == site_b:
            return LAN_BANDWIDTH_BPS
        path = self.path(site_a, site_b)
        return min(
            self.graph.edges[u, v]["bandwidth"]
            for u, v in zip(path, path[1:], strict=False)
        )

    def transfer_time(self, site_a, site_b, n_bytes):
        """Seconds to move *n_bytes* between the sites (one message)."""
        if site_a == site_b:
            return LAN_LATENCY_S + 8.0 * n_bytes / LAN_BANDWIDTH_BPS
        return (
            self.latency(site_a, site_b)
            + 8.0 * n_bytes / self.bandwidth(site_a, site_b)
        )

    def transfer(self, env, src_host, dst_host, n_bytes,
                 protocol="ipl"):
        """DES event completing when the transfer is done (+ records
        traffic for the Fig. 11 monitoring view)."""
        self.traffic.record(
            src_host.site, dst_host.site, n_bytes, protocol
        )
        return env.timeout(
            self.transfer_time(src_host.site, dst_host.site, n_bytes)
        )

    def link_names(self):
        return sorted(
            data["name"] for _, _, data in self.graph.edges(data=True)
        )
