"""Particle-set I/O — AMUSE's "reading and writing data sets".

Paper Sec. 4.1 lists dataset I/O among AMUSE's framework services.  Two
self-describing formats are provided:

* ``"amuse-txt"`` — a human-readable table: a header carrying the
  attribute names and exact unit descriptors (factor + the ten base
  dimension exponents), then one row per particle.  Keys are preserved,
  so channels still match after a round trip.
* ``"npz"`` — NumPy archive with the same metadata; binary-exact.

>>> write_set_to_file(stars, "snapshot.amuse", format="amuse-txt")
>>> stars2 = read_set_from_file("snapshot.amuse", format="amuse-txt")
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path

import numpy as np

from ..datamodel import Particles
from ..units.core import Quantity, Unit

__all__ = ["write_set_to_file", "read_set_from_file"]

_MAGIC = "#amuse-repro-1"


def _unit_descriptor(unit):
    if unit is None:
        return None
    return {
        "factor": unit.factor,
        "powers": [[p.numerator, p.denominator] for p in unit.powers],
        "symbol": unit.symbol,
    }


def _unit_from_descriptor(desc):
    if desc is None:
        return None
    powers = [Fraction(num, den) for num, den in desc["powers"]]
    return Unit(desc["factor"], powers, desc.get("symbol"))


def _collect_columns(particles):
    """(name, width, unit descriptor, 2-D float payload) per attr."""
    columns = []
    for name in particles.attribute_names():
        value = getattr(particles, name)
        if isinstance(value, Quantity):
            number, unit = value.number, value.unit
        else:
            number, unit = np.asarray(value, dtype=float), None
        number = np.atleast_1d(number)
        if number.ndim == 1:
            number = number[:, None]
        columns.append((name, number.shape[1],
                        _unit_descriptor(unit), number))
    return columns


def _rebuild(keys, columns):
    out = Particles(keys=np.asarray(keys, dtype=np.int64))
    for name, width, unit_desc, payload in columns:
        number = payload[:, 0] if width == 1 else payload
        unit = _unit_from_descriptor(unit_desc)
        if unit is None:
            out.set_attribute(name, number)
        else:
            out.set_attribute(name, Quantity(number, unit))
    return out


def write_set_to_file(particles, path, format="amuse-txt"):
    """Write *particles* to *path* in the requested format."""
    path = Path(path)
    columns = _collect_columns(particles)
    if format == "amuse-txt":
        header = {
            "n": len(particles),
            "columns": [
                {"name": name, "width": width, "unit": unit_desc}
                for name, width, unit_desc, _ in columns
            ],
        }
        data = np.column_stack(
            [np.asarray(particles.key, dtype=float)[:, None]]
            + [payload for _, _, _, payload in columns]
        ) if columns else np.asarray(
            particles.key, dtype=float
        )[:, None]
        with path.open("w") as stream:
            stream.write(f"{_MAGIC}\n")
            stream.write("#" + json.dumps(header) + "\n")
            np.savetxt(stream, data, fmt="%.17g")
        return path
    if format == "npz":
        payloads = {
            f"attr_{name}": payload
            for name, _, _, payload in columns
        }
        meta = json.dumps(
            [
                {"name": name, "width": width, "unit": unit_desc}
                for name, width, unit_desc, _ in columns
            ]
        )
        np.savez(
            path,
            keys=np.asarray(particles.key),
            meta=np.frombuffer(meta.encode(), dtype=np.uint8),
            **payloads,
        )
        return path
    raise ValueError(f"unknown format {format!r}")


def read_set_from_file(path, format="amuse-txt"):
    """Read a particle set previously written by
    :func:`write_set_to_file`."""
    path = Path(path)
    if format == "amuse-txt":
        with path.open() as stream:
            magic = stream.readline().strip()
            if magic != _MAGIC:
                raise ValueError(f"{path} is not an amuse-txt file")
            header = json.loads(stream.readline().lstrip("#"))
            if header["n"] == 0:
                return Particles(0)
            data = np.loadtxt(stream, ndmin=2)
        keys = data[:, 0].astype(np.int64)
        columns = []
        cursor = 1
        for spec in header["columns"]:
            width = spec["width"]
            payload = data[:, cursor:cursor + width]
            columns.append(
                (spec["name"], width, spec["unit"], payload)
            )
            cursor += width
        return _rebuild(keys, columns)
    if format == "npz":
        archive = np.load(path if str(path).endswith(".npz")
                          else f"{path}.npz")
        meta = json.loads(bytes(archive["meta"]).decode())
        keys = archive["keys"]
        columns = [
            (spec["name"], spec["width"], spec["unit"],
             np.atleast_2d(archive[f"attr_{spec['name']}"]))
            for spec in meta
        ]
        return _rebuild(keys, columns)
    raise ValueError(f"unknown format {format!r}")
