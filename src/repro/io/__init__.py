"""Dataset I/O: particle-set snapshots in self-describing formats."""

from .amuse_io import read_set_from_file, write_set_to_file

__all__ = ["write_set_to_file", "read_set_from_file"]
