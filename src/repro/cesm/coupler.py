"""CPL — the CESM-lite parallel flux coupler.

Paper Sec. 4.2 + Fig. 4: "In CESM, all models are written in Fortran,
MPI, and OpenMP, and are coupled using a parallel coupler also written
in Fortran using MPI ...  The application is started as a single MPI
job, after which the models are distributed over the available compute
nodes according to a user defined configuration.  The compute nodes can
either be partitioned, each running (part of) one model, shared, each
running (part of) multiple models, or use a combination of both ...  it
may take a user quite a bit of experimenting to find an efficient
configuration."

:class:`EarthSystemModel` wires the four components through
area-weighted conservative regridding (the coupler's mapping files) and
a land/ocean mask; :class:`ParallelDriver` runs the coupled step over
the in-process MPI substrate under a user-defined :class:`Layout` —
partitioned (components on disjoint ranks, running concurrently) or
shared (all components on all ranks, running sequentially) — which the
A5 ablation bench measures.
"""

from __future__ import annotations

import numpy as np

from ..codes.group import EvolveGroup
from ..datamodel import regrid_area_weighted
from ..mpi import World
from ..rpc.futures import AggregateRequestError
from ..rpc.taskgraph import TaskGraph
from .components import Atmosphere, Land, Ocean, SeaIce

__all__ = ["EarthSystemModel", "Layout", "ParallelDriver", "land_mask"]


def land_mask(grid, land_fraction=0.3, seed=7):
    """Deterministic pseudo-continental mask (1 = land).

    A fixed low-order spherical-harmonic-ish pattern thresholded to the
    requested land fraction — deterministic, smooth, and asymmetric
    like real continents.
    """
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0, 2 * np.pi, size=4)
    lat = np.radians(grid.lat)[:, None]
    lon = np.radians(grid.lon)[None, :]
    pattern = (
        np.sin(2 * lon + phases[0]) * np.cos(lat)
        + 0.7 * np.sin(3 * lon + phases[1]) * np.sin(lat) ** 2
        + 0.5 * np.sin(lat * 2 + phases[2])
        + 0.3 * np.cos(lon + phases[3])
    )
    threshold = np.quantile(pattern, 1.0 - land_fraction)
    return (pattern >= threshold).astype(float)


class EarthSystemModel:
    """The coupled system: four active (or data) components + CPL."""

    def __init__(self, atmosphere=None, ocean=None, land=None,
                 sea_ice=None, land_fraction=0.3,
                 overlap_components=False):
        self.atm = atmosphere or Atmosphere()
        self.ocn = ocean or Ocean()
        self.lnd = land or Land()
        self.ice = sea_ice or SeaIce()
        self.components = {
            c.name: c for c in (self.atm, self.ocn, self.lnd, self.ice)
        }
        #: opt-in: step the four components concurrently between
        #: exchanges through an EvolveGroup (each owns its grid, so the
        #: overlap is value-deterministic).  Off by default: in-process
        #: numpy components are GIL-bound, so the default keeps the
        #: sequential loop's speed and exception contract; turn it on
        #: for partitioned layouts / components that release the GIL.
        self.overlap_components = bool(overlap_components)
        self._evolve_group = EvolveGroup()
        # masks live on the atmosphere grid; regridded as needed
        self.mask_atm = land_mask(self.atm.grid, land_fraction)
        self.mask_ocn = np.clip(
            regrid_area_weighted(
                self.atm.grid, self.mask_atm, self.ocn.grid
            ),
            0.0, 1.0,
        )
        self.time_days = 0.0
        self.exchange_count = 0

    @property
    def _group(self):
        """Live view of the components as an EvolveGroup: membership
        is refreshed on every access (so swapped-in components are
        never silently skipped) while the group instance — and with it
        the per-member in-flight guards — persists."""
        self._evolve_group.members = list(self.components.values())
        return self._evolve_group

    # -- the coupler's field exchange (CPL's job) ---------------------------

    def exchange(self):
        """Move and merge fields between component grids."""
        atm_grid = self.atm.grid
        ocn_grid = self.ocn.grid

        # surface temperature and albedo merged onto the atm grid
        sst_atm = regrid_area_weighted(
            ocn_grid, self.ocn.grid.field_array("sst"), atm_grid
        )
        ice_frac_atm = regrid_area_weighted(
            ocn_grid, self.ice.grid.field_array("ice_fraction"),
            atm_grid,
        )
        ice_albedo_atm = regrid_area_weighted(
            ocn_grid, self.ice.grid.field_array("ice_albedo"), atm_grid
        )
        land_albedo = self.lnd.grid.field_array("land_albedo")
        t_land = self.lnd.grid.field_array("t_land")

        ocean_albedo = 0.08 * (1.0 - ice_frac_atm) + ice_albedo_atm
        albedo = (
            self.mask_atm * land_albedo
            + (1.0 - self.mask_atm) * ocean_albedo
        )
        t_surface = (
            self.mask_atm * t_land + (1.0 - self.mask_atm) * sst_atm
        )
        self.atm.import_field("albedo", albedo)
        self.atm.import_field("t_surface", t_surface)

        # atmosphere -> land
        self.lnd.import_field(
            "sw_down", self.atm.grid.field_array("sw_down")
        )
        self.lnd.import_field(
            "t_air", self.atm.grid.field_array("t_air")
        )

        # atmosphere -> ocean: net surface flux on the ocean grid
        t_air_ocn = regrid_area_weighted(
            atm_grid, self.atm.grid.field_array("t_air"), ocn_grid
        )
        sw_ocn = regrid_area_weighted(
            atm_grid, self.atm.grid.field_array("sw_down"), ocn_grid
        )
        sst = self.ocn.grid.field_array("sst")
        ice_frac = self.ice.grid.field_array("ice_fraction")
        from .components import OLR_A
        net_flux = (
            sw_ocn * (1.0 - 0.08) * (1.0 - ice_frac)
            - (OLR_A + self.ocn.OLR_B_OCEAN * (sst - 273.15))
            + 20.0 * (t_air_ocn - sst)
        ) * (1.0 - self.mask_ocn)
        self.ocn.import_field("net_surface_flux", net_flux)

        # ocean -> sea ice
        self.ice.import_field("sst", sst)
        self.exchange_count += 1

    # -- serial stepping --------------------------------------------------------

    def step(self, dt_days=5.0):
        """One coupled step: exchange, then step every component.

        The exchange is the coupling point; between exchanges the
        components are independent.  ``overlap_components=True``
        schedules the step as a
        :class:`~repro.rpc.taskgraph.TaskGraph`: an ``exchange`` node
        followed by one thread-offloaded node per component, joined
        per edge — the DAG expression of a partitioned CESM layout
        where each model advances on its own processor set the moment
        CPL hands it its fields.
        """
        if self.overlap_components:
            group = self._group      # refresh membership + guards
            graph = TaskGraph()

            def run_exchange():
                self.exchange()

            exchange = graph.add("exchange", run_exchange)
            for name, component in self.components.items():
                graph.add(
                    f"step:{name}",
                    (lambda component=component:
                     group._offload(
                         component, "step", component.step, dt_days
                     )),
                    after=[exchange],
                )
            try:
                graph.run()
            except AggregateRequestError as error:
                if len(error.failures) == 1:
                    # keep the serial branch's contract: a lone
                    # failure (a raising exchange or component step)
                    # surfaces raw, not wrapped
                    raise error.failures[0][1] from None
                raise
        else:
            self.exchange()
            for component in self.components.values():
                component.step(dt_days)
        self.time_days += dt_days

    def run(self, days, dt_days=5.0):
        steps = int(round(days / dt_days))
        for _ in range(steps):
            self.step(dt_days)
        return self.diagnostics()

    # -- diagnostics ----------------------------------------------------------------

    def diagnostics(self):
        t_mean = self.atm.grid.area_mean("t_air")
        sst_mean = self.ocn.grid.area_mean("sst")
        ice_area = self.ice.grid.area_mean("ice_fraction")
        return {
            "time_days": self.time_days,
            "global_mean_t_air_k": float(t_mean),
            "global_mean_sst_k": float(sst_mean),
            "ice_fraction": float(ice_area),
            "exchanges": self.exchange_count,
        }


class Layout:
    """CESM node layout: component name -> list of rank ids.

    ``Layout.partitioned(4)`` puts each component on its own rank
    (concurrent); ``Layout.shared(n)`` puts every component on all
    ranks (sequential) — the two extremes of paper Sec. 4.2.
    """

    def __init__(self, assignment):
        self.assignment = {k: tuple(v) for k, v in assignment.items()}

    @classmethod
    def partitioned(cls, components=("atm", "ocn", "lnd", "ice")):
        return cls({name: (i,) for i, name in enumerate(components)})

    @classmethod
    def shared(cls, n_ranks,
               components=("atm", "ocn", "lnd", "ice")):
        ranks = tuple(range(n_ranks))
        return cls({name: ranks for name in components})

    @property
    def n_ranks(self):
        return 1 + max(
            rank for ranks in self.assignment.values() for rank in ranks
        )

    def components_of(self, rank):
        return [
            name for name, ranks in self.assignment.items()
            if rank in ranks
        ]

    def __repr__(self):
        return f"<Layout {self.assignment}>"


class ParallelDriver:
    """Runs coupled steps over the MPI substrate under a layout.

    Components assigned to the same rank run sequentially there;
    components on disjoint ranks run concurrently (thread-parallel).
    The coupler itself (field exchange) runs on rank 0, like CPL
    getting its own processor set.
    """

    def __init__(self, esm, layout, work_scale=1):
        self.esm = esm
        self.layout = layout
        self.world = World(layout.n_ranks)
        #: repeat component compute kernels to make layout effects
        #: measurable on fast grids (pure duplication, state-safe)
        self.work_scale = int(work_scale)

    def step(self, dt_days=5.0):
        esm = self.esm
        layout = self.layout
        work_scale = self.work_scale

        def rank_main(comm):
            # coupler exchange on rank 0, then barrier
            if comm.rank == 0:
                esm.exchange()
            comm.barrier()
            for name in layout.components_of(comm.rank):
                ranks = layout.assignment[name]
                # the lowest assigned rank owns the (whole-grid) step;
                # spare ranks model the idle partners of a partitioned
                # run of a non-decomposed component
                if comm.rank == min(ranks):
                    component = esm.components[name]
                    for _ in range(max(1, work_scale) - 1):
                        _burn_component(component)
                    component.step(dt_days)
            comm.barrier()
            return comm.rank

        self.world.run(rank_main)
        esm.time_days += dt_days

    def run(self, days, dt_days=5.0):
        for _ in range(int(round(days / dt_days))):
            self.step(dt_days)
        return self.esm.diagnostics()


def _burn_component(component):
    """Charge extra compute proportional to the component's real cost
    without touching its state (data models stay nearly free)."""
    factor = getattr(component, "WORK_FACTOR", 1.0)
    if factor < 0.1:
        return
    for name in component.EXPORTS:
        field = component.grid.field_array(name)
        # representative stencil work on a scratch copy
        scratch = field.copy()
        for _ in range(3):
            scratch = (
                np.roll(scratch, 1, 0) + np.roll(scratch, -1, 0)
                + np.roll(scratch, 1, 1) + np.roll(scratch, -1, 1)
            ) * 0.25
