"""CESM-lite: the paper's second 3MK instance (climate modeling)."""

from .components import (
    Atmosphere,
    Component,
    DataComponent,
    Land,
    Ocean,
    SOLAR_CONSTANT,
    SeaIce,
    data_twin,
    insolation,
)
from .coupler import EarthSystemModel, Layout, ParallelDriver, land_mask

__all__ = [
    "Atmosphere",
    "Ocean",
    "Land",
    "SeaIce",
    "Component",
    "DataComponent",
    "data_twin",
    "insolation",
    "SOLAR_CONSTANT",
    "EarthSystemModel",
    "Layout",
    "ParallelDriver",
    "land_mask",
]
