"""CESM-lite model components: atmosphere, ocean, land, sea-ice.

Paper Sec. 4.2: "CESM couples models for atmosphere, oceans, land and
sea-ice into a single simulation of the earth's climate ...  In
addition, both active and data implementations exist of each model.  The
former computes all results, while the latter simply replays precomputed
data."

Each component here is an *active* physical model on its own lat-lon
grid (the ocean runs at higher resolution than the atmosphere, so the
coupler genuinely regrids), with a *data* twin replaying a climatology.
The physics is a classic energy-balance hierarchy (Budyko/Sellers/North
coefficients), compact but honest:

* atmosphere — diffusive EBM: C dT/dt = S(φ)(1-α) - (A + B(T-273)) + D∇²T;
* ocean — slab mixed layer with diffusive heat transport;
* land — low-heat-capacity surface with latitude-dependent albedo;
* sea ice — thermodynamic growth/melt from the freezing-point deficit,
  feeding the ice-albedo feedback.

The shared component contract (``export_fields`` / ``import_field`` /
``step``) is what the parallel coupler (:mod:`repro.cesm.coupler`)
schedules — including CESM's partitioned vs shared node layouts.
"""

from __future__ import annotations

import numpy as np

from ..datamodel import LatLonGrid

__all__ = [
    "Component",
    "Atmosphere",
    "Ocean",
    "Land",
    "SeaIce",
    "DataComponent",
    "data_twin",
    "SOLAR_CONSTANT",
]

SOLAR_CONSTANT = 1361.0          # W/m2
FREEZING_SST = 271.35            # K
# North (1975) EBM outgoing-longwave coefficients
OLR_A = 203.3                    # W/m2 at 273.15 K
OLR_B = 2.09                     # W/m2/K
SECONDS_PER_DAY = 86400.0


def insolation(lat_deg):
    """Annual-mean TOA insolation S(φ) via the S2 Legendre fit."""
    x = np.sin(np.radians(lat_deg))
    s2 = -0.482 * 0.5 * (3.0 * x ** 2 - 1.0)
    return 0.25 * SOLAR_CONSTANT * (1.0 + s2)


class Component:
    """Base model component: a grid, state fields, imports/exports."""

    name = "component"
    #: fields this component publishes after each step
    EXPORTS = ()
    #: fields this component consumes before each step
    IMPORTS = ()

    def __init__(self, nlat, nlon):
        self.grid = LatLonGrid(nlat, nlon)
        self.time_days = 0.0
        self.step_count = 0
        self._imports = {}

    # -- coupler contract ----------------------------------------------------

    def import_field(self, name, values):
        if name not in self.IMPORTS:
            raise KeyError(
                f"{self.name} does not import {name!r}; "
                f"imports: {self.IMPORTS}"
            )
        # copy: imports are snapshots at exchange time, never views of
        # another component's live state (keeps results independent of
        # the order/concurrency in which components step — any layout)
        self._imports[name] = np.array(values, dtype=float, copy=True)

    def export_fields(self):
        return {name: self.grid.field_array(name) for name in
                self.EXPORTS}

    def step(self, dt_days):
        raise NotImplementedError

    def _advance_clock(self, dt_days):
        self.time_days += dt_days
        self.step_count += 1

    # -- shared numerics ---------------------------------------------------------
    #
    # Meridional heat transport uses the standard North (1975) operator
    # D d/dx[(1-x²) dT/dx] with x = sin(φ), discretised at cell centres
    # with exact zero-flux poles ((1-x²) vanishes there), and solved
    # IMPLICITLY (backward Euler) per time step: an explicit scheme is
    # CFL-unstable for day-scale steps on these heat capacities.  The
    # tridiagonal solve is vectorized over all longitude columns.

    def _lat_transport_matrix(self, diffusivity, heat_capacity,
                              dt_seconds):
        """Banded (I - dt·D/C·L) matrix for scipy.solve_banded."""
        key = (diffusivity, heat_capacity, round(dt_seconds, 9))
        cache = getattr(self, "_transport_cache", None)
        if cache is not None and cache[0] == key:
            return cache[1]
        nlat = self.grid.nlat
        x = np.sin(np.radians(self.grid.lat))
        edges = np.sin(
            np.radians(-90.0 + 180.0 / nlat * np.arange(nlat + 1))
        )
        one_minus_x2 = 1.0 - edges ** 2          # zero at both poles
        dx_center = np.diff(x)                     # between centres
        dx_cell = np.diff(edges)                   # cell widths
        w = np.zeros(nlat + 1)
        w[1:-1] = one_minus_x2[1:-1] / dx_center
        a = dt_seconds * diffusivity / heat_capacity
        lower = -a * w[1:-1] / dx_cell[1:]
        upper = -a * w[1:-1] / dx_cell[:-1]
        diag = 1.0 + a * (w[:-1] + w[1:]) / dx_cell
        ab = np.zeros((3, nlat))
        ab[0, 1:] = upper
        ab[1, :] = diag
        ab[2, :-1] = lower
        self._transport_cache = (key, ab)
        return ab

    def _apply_lat_transport(self, field, diffusivity, heat_capacity,
                             dt_seconds):
        """Implicit meridional diffusion step (in place semantics)."""
        from scipy.linalg import solve_banded

        ab = self._lat_transport_matrix(
            diffusivity, heat_capacity, dt_seconds
        )
        return solve_banded((1, 1), ab, field)

    @staticmethod
    def _zonal_smooth(field, weight=0.1):
        """Stable explicit zonal mixing (weight ≤ 0.25)."""
        return field + weight * (
            np.roll(field, 1, axis=1) - 2.0 * field
            + np.roll(field, -1, axis=1)
        )


class Atmosphere(Component):
    """Diffusive energy-balance atmosphere (the CAM stand-in)."""

    name = "atm"
    EXPORTS = ("t_air", "sw_down")
    IMPORTS = ("albedo", "t_surface")

    #: areal heat capacity of the atmospheric column, J/m2/K
    HEAT_CAPACITY = 1.0e7
    #: horizontal diffusion, W/m2/K (per unit Laplacian)
    DIFFUSION = 0.45
    #: fixed cloud reflection (planetary albedo = clouds + surface)
    CLOUD_ALBEDO = 0.22

    def __init__(self, nlat=24, nlon=48):
        super().__init__(nlat, nlon)
        self.grid.new_field("t_air", 288.0)
        self.grid.new_field("sw_down", 0.0)
        self.solar_constant = SOLAR_CONSTANT

    def step(self, dt_days):
        t = self.grid.field_array("t_air")
        albedo = self._imports.get(
            "albedo", np.full(self.grid.shape, 0.3)
        )
        t_surf = self._imports.get("t_surface", t)
        s = insolation(self.grid.lat)[:, None] * (
            self.solar_constant / SOLAR_CONSTANT
        )
        sw = s * (1.0 - self.CLOUD_ALBEDO)
        absorbed = sw * (1.0 - albedo)
        dt_seconds = dt_days * SECONDS_PER_DAY
        # local terms are linear in T: integrate them EXACTLY
        # (exponential relaxation — unconditionally stable), then apply
        # transport via the implicit operator (operator splitting)
        k_exchange = 15.0
        damping = OLR_B + k_exchange
        t_eq = (
            absorbed - OLR_A + 273.15 * OLR_B + k_exchange * t_surf
        ) / damping
        decay = np.exp(-dt_seconds * damping / self.HEAT_CAPACITY)
        t[...] = t_eq + (t - t_eq) * decay
        t[...] = self._apply_lat_transport(
            t, self.DIFFUSION, self.HEAT_CAPACITY, dt_seconds
        )
        t[...] = self._zonal_smooth(t)
        self.grid.field_array("sw_down")[...] = sw
        self._advance_clock(dt_days)


class Ocean(Component):
    """Slab mixed-layer ocean with diffusive transport (POP stand-in).

    Runs at 2× the atmosphere resolution by default — the coupler must
    regrid, as in CESM.
    """

    name = "ocn"
    EXPORTS = ("sst", "ocean_albedo")
    IMPORTS = ("net_surface_flux",)

    #: 50 m mixed layer: rho c_p h = 1025*3990*50 J/m2/K
    HEAT_CAPACITY = 2.0e8
    #: effective poleward transport of the wind-driven gyres + eddies
    #: (tuned: 2.0 yields ~12% ice cover and frozen polar SST; 0.5
    #: snowballs, 5.0 melts the poles — the ice-albedo feedback is live)
    DIFFUSION = 2.0
    #: ocean longwave+latent damping, W/m2/K (stronger than land: the
    #: latent-heat flux grows quickly with SST)
    OLR_B_OCEAN = 4.0

    def __init__(self, nlat=48, nlon=96):
        super().__init__(nlat, nlon)
        lat = self.grid.lat[:, None]
        self.grid.new_field("sst", 0.0)
        self.grid.field_array("sst")[...] = 300.0 - 28.0 * np.sin(
            np.radians(lat)
        ) ** 2
        self.grid.new_field("ocean_albedo", 0.08)

    def step(self, dt_days):
        sst = self.grid.field_array("sst")
        flux = self._imports.get(
            "net_surface_flux", np.zeros(self.grid.shape)
        )
        dt_seconds = dt_days * SECONDS_PER_DAY
        sst += dt_seconds / self.HEAT_CAPACITY * flux
        sst[...] = self._apply_lat_transport(
            sst, self.DIFFUSION, self.HEAT_CAPACITY, dt_seconds
        )
        sst[...] = self._zonal_smooth(sst, 0.05)
        np.clip(sst, 250.0, 320.0, out=sst)
        self._advance_clock(dt_days)


class Land(Component):
    """Low-heat-capacity land surface (CLM stand-in)."""

    name = "lnd"
    EXPORTS = ("t_land", "land_albedo")
    IMPORTS = ("sw_down", "t_air")

    HEAT_CAPACITY = 1.0e6

    def __init__(self, nlat=24, nlon=48):
        super().__init__(nlat, nlon)
        self.grid.new_field("t_land", 285.0)
        lat = np.abs(self.grid.lat)[:, None]
        # forests at mid latitudes, brighter deserts/snow elsewhere
        albedo = 0.18 + 0.12 * (lat / 90.0) ** 2 + 0.08 * np.exp(
            -((lat - 25.0) / 10.0) ** 2
        )
        self.grid.new_field("land_albedo", 0.0)
        self.grid.field_array("land_albedo")[...] = albedo

    def step(self, dt_days):
        t = self.grid.field_array("t_land")
        sw = self._imports.get("sw_down", np.zeros(self.grid.shape))
        t_air = self._imports.get("t_air", t)
        albedo = self.grid.field_array("land_albedo")
        dt_seconds = dt_days * SECONDS_PER_DAY
        # land relaxes in ~half a day: exact exponential integration
        # (an explicit 5-day step would be violently unstable)
        k_coupling = 25.0
        damping = OLR_B + k_coupling
        t_eq = (
            sw * (1.0 - albedo) - OLR_A + 273.15 * OLR_B
            + k_coupling * t_air
        ) / damping
        decay = np.exp(-dt_seconds * damping / self.HEAT_CAPACITY)
        t[...] = t_eq + (t - t_eq) * decay
        # snow brightens cold land (simple feedback)
        snow = t < 268.0
        albedo[snow] = np.maximum(albedo[snow], 0.6)
        self._advance_clock(dt_days)


class SeaIce(Component):
    """Thermodynamic sea ice on the ocean grid (CICE stand-in)."""

    name = "ice"
    EXPORTS = ("ice_fraction", "ice_albedo")
    IMPORTS = ("sst",)

    #: m of ice growth per K-day of freezing-point deficit
    GROWTH_RATE = 0.01
    MELT_RATE = 0.02
    MAX_THICKNESS = 5.0

    def __init__(self, nlat=48, nlon=96):
        super().__init__(nlat, nlon)
        self.grid.new_field("thickness", 0.0)
        self.grid.new_field("ice_fraction", 0.0)
        self.grid.new_field("ice_albedo", 0.0)

    def step(self, dt_days):
        sst = self._imports.get(
            "sst", np.full(self.grid.shape, 290.0)
        )
        thickness = self.grid.field_array("thickness")
        deficit = FREEZING_SST - sst
        growth = np.where(
            deficit > 0.0,
            self.GROWTH_RATE * deficit,
            self.MELT_RATE * deficit,      # negative: melt
        )
        thickness += growth * dt_days
        np.clip(thickness, 0.0, self.MAX_THICKNESS, out=thickness)
        fraction = np.tanh(thickness / 0.5)
        self.grid.field_array("ice_fraction")[...] = fraction
        self.grid.field_array("ice_albedo")[...] = 0.6 * fraction
        self._advance_clock(dt_days)


class DataComponent(Component):
    """A *data* model: replays a fixed climatology for its exports.

    Mirrors CESM's data models (DATM, DOCN, ...) used to drive subsets
    of the fully coupled system.
    """

    def __init__(self, active_twin):
        self.name = f"d{active_twin.name}"
        self.EXPORTS = active_twin.EXPORTS
        self.IMPORTS = ()
        super(DataComponent, self).__init__(
            active_twin.grid.nlat, active_twin.grid.nlon
        )
        self._climatology = {
            name: values.copy()
            for name, values in active_twin.export_fields().items()
        }
        for name, values in self._climatology.items():
            self.grid.new_field(name)
            self.grid.field_array(name)[...] = values

    def import_field(self, name, values):  # data models ignore inputs
        return

    def step(self, dt_days):
        # exports stay at climatology; only the clock moves
        self._advance_clock(dt_days)

    #: the work a data model does is negligible (paper: "simply
    #: replays precomputed data") — the layout bench relies on this
    WORK_FACTOR = 0.01


def data_twin(component):
    """Build the data variant of an active component instance."""
    return DataComponent(component)
