"""Units-aware particle sets — the AMUSE in-memory data model.

A :class:`Particles` instance is a structure-of-arrays: every attribute is
stored once for the whole set as a NumPy array plus a unit.  Particles are
identified by unique integer *keys*, which makes it possible to copy
attributes between different sets holding the same particles (the local
script-side set and the sets living inside model codes) through
:class:`AttributeChannel` — exactly the mechanism AMUSE scripts use to move
state through the coupler.

>>> from repro.datamodel import Particles
>>> from repro.units import units
>>> stars = Particles(3)
>>> stars.mass = 1.0 | units.MSun          # broadcast scalar
>>> stars[0].mass = 2.0 | units.MSun       # per-particle access
>>> stars.total_mass().value_in(units.MSun)
4.0
"""

from __future__ import annotations

import itertools

import numpy as np

from ..units.core import Quantity
from ..units import astro

__all__ = ["Particles", "Particle", "AttributeChannel", "ParticlesSubset"]

_key_counter = itertools.count(1)


def _take_keys(n):
    start = next(_key_counter)
    # Reserve a contiguous block so keys stay unique across all sets.
    for _ in range(n - 1):
        next(_key_counter)
    return np.arange(start, start + n, dtype=np.int64)


def _broadcast_number(value, n, current=None):
    """Normalise an attribute payload to an (n,) or (n, d) float array."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        if current is not None and current.ndim == 2:
            out = np.empty_like(current)
            out[...] = arr
            return out
        return np.full(n, float(arr))
    if arr.shape[0] != n:
        if arr.ndim == 1 and current is not None and current.ndim == 2 \
                and arr.shape[0] == current.shape[1]:
            return np.tile(arr, (n, 1))
        raise ValueError(
            f"attribute payload has leading dimension {arr.shape[0]}, "
            f"expected {n}"
        )
    return arr.copy() if arr is value else arr


class Particles:
    """A set of particles with units-checked vector attributes."""

    _reserved = frozenset(
        ("_keys", "_attributes", "_n")
    )

    def __init__(self, size=0, keys=None):
        if keys is not None:
            keys = np.asarray(keys, dtype=np.int64)
            size = len(keys)
        else:
            keys = _take_keys(size) if size else np.empty(0, dtype=np.int64)
        object.__setattr__(self, "_keys", keys)
        object.__setattr__(self, "_n", int(size))
        object.__setattr__(self, "_attributes", {})

    # -- basic container behaviour -----------------------------------------

    def __len__(self):
        return self._n

    @property
    def key(self):
        return self._keys

    def attribute_names(self):
        return sorted(self._attributes)

    def has_attribute(self, name):
        return name in self._attributes

    def __iter__(self):
        for i in range(self._n):
            yield Particle(self, i)

    def __getitem__(self, index):
        if isinstance(index, (int, np.integer)):
            if index < 0:
                index += self._n
            if not 0 <= index < self._n:
                raise IndexError(index)
            return Particle(self, int(index))
        if isinstance(index, slice):
            return ParticlesSubset(self, np.arange(self._n)[index])
        index = np.asarray(index)
        if index.dtype == bool:
            index = np.flatnonzero(index)
        return ParticlesSubset(self, index.astype(np.intp))

    # -- attribute storage ---------------------------------------------------

    def __setattr__(self, name, value):
        if name in self._reserved or name.startswith("_"):
            object.__setattr__(self, name, value)
            return
        self.set_attribute(name, value)

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            number, unit = self._attributes[name]
        except KeyError:
            raise AttributeError(
                f"particle set has no attribute {name!r}; known: "
                f"{self.attribute_names()}"
            ) from None
        if unit is None:
            return number
        return Quantity(number, unit)

    def set_attribute(self, name, value, indices=None):
        """Store attribute *name*; scalars broadcast over the set."""
        current = self._attributes.get(name)
        if isinstance(value, Quantity):
            number, unit = value.number, value.unit
        else:
            number, unit = value, None
        if current is not None and current[1] is not None:
            if unit is None:
                raise TypeError(
                    f"attribute {name!r} has unit {current[1]}; "
                    "assign a quantity"
                )
            if unit.powers == current[1].powers:
                # Normalise to the stored unit so the backing array never
                # changes unit under a view.
                number = np.asarray(number, dtype=float) \
                    * unit.conversion_factor_to(current[1])
                unit = current[1]
            elif indices is not None:
                raise TypeError(
                    f"cannot partially assign {unit} into attribute "
                    f"{name!r} stored as {current[1]}"
                )
            else:
                # Full reassignment with a different dimension replaces
                # the attribute (e.g. converting a set nbody -> SI).
                current = None
        if indices is None:
            arr = _broadcast_number(
                number, self._n,
                None if current is None else current[0],
            )
            self._attributes[name] = (arr, unit)
        else:
            if current is None:
                raise AttributeError(
                    f"cannot partially assign unknown attribute {name!r}"
                )
            current[0][indices] = number

    def get_attribute(self, name, indices=None):
        number, unit = self._attributes[name]
        if indices is not None:
            number = number[indices]
        if unit is None:
            return number
        return Quantity(number, unit)

    # -- set operations -------------------------------------------------------

    def add_particles(self, other):
        """Append all particles of *other*; returns the new subset."""
        new_keys = np.concatenate([self._keys, other.key])
        old_n = self._n
        object.__setattr__(self, "_keys", new_keys)
        object.__setattr__(self, "_n", len(new_keys))
        for name in set(self._attributes) | set(other._all_attribute_names()):
            mine = self._attributes.get(name)
            theirs = other._lookup_attribute(name)
            if mine is None and theirs is None:
                continue
            if theirs is None:
                number = np.zeros(
                    (len(other),) + mine[0].shape[1:], dtype=float
                )
                unit = mine[1]
            else:
                number, unit = theirs
            if mine is None:
                fill = np.zeros((old_n,) + np.shape(number)[1:], dtype=float)
                merged = np.concatenate([fill, np.atleast_1d(number)])
            else:
                if (mine[1] is None) != (unit is None):
                    raise TypeError(
                        f"attribute {name!r} mixes unitless and united data"
                    )
                if unit is not None:
                    number = np.asarray(number, dtype=float) * \
                        unit.conversion_factor_to(mine[1])
                    unit = mine[1]
                merged = np.concatenate(
                    [mine[0], np.atleast_1d(np.asarray(number, dtype=float))]
                )
            self._attributes[name] = (merged, unit)
        return self[old_n:]

    def add_particle(self, particle):
        return self.add_particles(particle.as_set())[0]

    def remove_particles(self, other):
        """Remove every particle of *other* (matched by key)."""
        mask = ~np.isin(self._keys, other.key)
        self._apply_mask(mask)

    def remove_particle(self, particle):
        self.remove_particles(particle.as_set())

    def _apply_mask(self, mask):
        object.__setattr__(self, "_keys", self._keys[mask])
        object.__setattr__(self, "_n", int(mask.sum()))
        for name, (number, unit) in list(self._attributes.items()):
            self._attributes[name] = (number[mask], unit)

    def copy(self):
        """Deep copy preserving keys (so channels still match)."""
        out = Particles(keys=self._keys.copy())
        for name, (number, unit) in self._attributes.items():
            out._attributes[name] = (number.copy(), unit)
        return out

    def empty_copy(self):
        """Same keys, no attributes."""
        return Particles(keys=self._keys.copy())

    def select(self, predicate, attribute_names):
        """Subset for which ``predicate(*attributes)`` is True."""
        args = [self.get_attribute(n) for n in attribute_names]
        mask = predicate(*args)
        if isinstance(mask, Quantity):
            mask = mask.number
        return self[np.asarray(mask, dtype=bool)]

    def _all_attribute_names(self):
        return set(self._attributes)

    def _lookup_attribute(self, name):
        return self._attributes.get(name)

    # -- channels ---------------------------------------------------------------

    def new_channel_to(self, target):
        """Channel copying attributes from this set to *target* by key."""
        return AttributeChannel(self, target)

    # -- derived physics ----------------------------------------------------------

    def total_mass(self):
        return self.mass.sum()

    def center_of_mass(self):
        m = self.mass.number
        return Quantity(
            (m[:, None] * self.position.number).sum(axis=0) / m.sum(),
            self.position.unit,
        )

    def center_of_mass_velocity(self):
        m = self.mass.number
        return Quantity(
            (m[:, None] * self.velocity.number).sum(axis=0) / m.sum(),
            self.velocity.unit,
        )

    def move_to_center(self):
        """Shift to the barycentric frame (position and velocity)."""
        com = self.center_of_mass()
        self.position = self.position - com
        if self.has_attribute("velocity"):
            comv = self.center_of_mass_velocity()
            self.velocity = self.velocity - comv

    def kinetic_energy(self):
        m, v = self.mass, self.velocity
        return Quantity(
            0.5 * (m.number * (v.number ** 2).sum(axis=1)).sum(),
            m.unit * v.unit ** 2,
        )

    def potential_energy(self, G=None, block=2048):
        """Pairwise gravitational potential energy, blocked O(N^2)."""
        if G is None:
            G = astro.G if not self.position.unit.is_generic else \
                _nbody_G()
        m = self.mass.number
        pos = self.position.number
        n = len(m)
        total = 0.0
        for i0 in range(0, n, block):
            i1 = min(i0 + block, n)
            d = pos[i0:i1, None, :] - pos[None, :, :]
            r = np.sqrt((d ** 2).sum(axis=2))
            inv = np.zeros_like(r)
            np.divide(1.0, r, out=inv, where=r > 0)
            # only count pairs j < i to avoid double counting
            cols = np.arange(n)[None, :]
            rows = np.arange(i0, i1)[:, None]
            inv[cols >= rows] = 0.0
            total += (m[i0:i1, None] * m[None, :] * inv).sum()
        return -G * Quantity(
            total, self.mass.unit ** 2 / self.position.unit
        )

    def virial_radius(self):
        """R_vir = -G M^2 / (2 E_pot)."""
        epot = self.potential_energy()
        mtot = self.total_mass()
        G = astro.G if not self.position.unit.is_generic else _nbody_G()
        return -G * mtot ** 2 / (2.0 * epot)

    def lagrangian_radii(self, fractions=(0.1, 0.25, 0.5, 0.75, 0.9),
                         center=None):
        """Radii enclosing the given mass fractions (sorted by radius)."""
        pos = self.position.number
        if center is None:
            c = self.center_of_mass().number
        elif isinstance(center, Quantity):
            c = center.value_in(self.position.unit)
        else:
            c = np.asarray(center)
        r = np.linalg.norm(pos - c, axis=1)
        order = np.argsort(r)
        msorted = self.mass.number[order]
        cum = np.cumsum(msorted)
        cum /= cum[-1]
        radii = [r[order][np.searchsorted(cum, f)] for f in fractions]
        return Quantity(np.array(radii), self.position.unit)

    def scale_to_standard(self, convert_nbody=None):
        """Rescale to Heggie–Mathieu standard units (E=-1/4, M=1, G=1).

        When *convert_nbody* is given, positions/velocities/masses are
        interpreted through it; otherwise the set must already be in
        generic units.
        """
        conv = convert_nbody
        if conv is not None:
            mass = conv.to_nbody(self.mass)
            pos = conv.to_nbody(self.position)
            vel = conv.to_nbody(self.velocity)
        else:
            mass, pos, vel = self.mass, self.position, self.velocity
        from ..units import nbody as nbody_system
        total = mass.number.sum()
        mass = Quantity(mass.number / total, mass.unit)
        work = Particles(keys=self._keys.copy())
        work.mass = mass
        work.position = pos
        work.velocity = vel
        ekin = work.kinetic_energy().number
        epot = work.potential_energy(G=Quantity(
            1.0, nbody_system.G.unit)).number
        # scale radius so Epot = -0.5, then velocity so Ekin = 0.25
        rscale = epot / -0.5
        pos = Quantity(pos.number * rscale, pos.unit)
        work.position = pos
        epot = work.potential_energy(G=Quantity(
            1.0, nbody_system.G.unit)).number
        vscale = np.sqrt(0.25 / ekin) if ekin > 0 else 1.0
        vel = Quantity(vel.number * vscale, vel.unit)
        if conv is not None:
            mass = conv.to_si(mass)
            pos = conv.to_si(pos)
            vel = conv.to_si(vel)
        self.mass = mass
        self.position = pos
        self.velocity = vel

    # -- convenience coordinate views ------------------------------------------

    @property
    def x(self):
        return Quantity(self.position.number[:, 0], self.position.unit)

    @property
    def y(self):
        return Quantity(self.position.number[:, 1], self.position.unit)

    @property
    def z(self):
        return Quantity(self.position.number[:, 2], self.position.unit)

    @property
    def vx(self):
        return Quantity(self.velocity.number[:, 0], self.velocity.unit)

    @property
    def vy(self):
        return Quantity(self.velocity.number[:, 1], self.velocity.unit)

    @property
    def vz(self):
        return Quantity(self.velocity.number[:, 2], self.velocity.unit)

    def __repr__(self):
        return (
            f"<Particles n={self._n} "
            f"attributes={self.attribute_names()}>"
        )


def _nbody_G():
    from ..units import nbody as nbody_system
    return nbody_system.G


class ParticlesSubset:
    """A view on a subset of a :class:`Particles` set (by index array)."""

    def __init__(self, parent, indices):
        object.__setattr__(self, "_parent", parent)
        object.__setattr__(self, "_indices", np.asarray(indices, dtype=np.intp))

    def __len__(self):
        return len(self._indices)

    @property
    def key(self):
        return self._parent.key[self._indices]

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        return self._parent.get_attribute(name, self._indices)

    def __setattr__(self, name, value):
        if name.startswith("_"):
            object.__setattr__(self, name, value)
            return
        if isinstance(value, Quantity) and isinstance(value.number, np.ndarray):
            pass
        self._parent.set_attribute(name, _subset_payload(value), self._indices)

    def __iter__(self):
        for i in self._indices:
            yield Particle(self._parent, int(i))

    def __getitem__(self, index):
        if isinstance(index, (int, np.integer)):
            return Particle(self._parent, int(self._indices[index]))
        return ParticlesSubset(self._parent, self._indices[index])

    def copy(self):
        out = Particles(keys=self.key.copy())
        for name in self._parent.attribute_names():
            out._attributes[name] = _copied_entry(
                self._parent._attributes[name], self._indices
            )
        return out

    def attribute_names(self):
        return self._parent.attribute_names()

    def _all_attribute_names(self):
        return self._parent._all_attribute_names()

    def _lookup_attribute(self, name):
        entry = self._parent._attributes.get(name)
        if entry is None:
            return None
        return (entry[0][self._indices], entry[1])

    def new_channel_to(self, target):
        return AttributeChannel(self, target)

    # reuse physics helpers through a temporary copy
    def __repr__(self):
        return f"<ParticlesSubset n={len(self)} of {self._parent!r}>"


def _subset_payload(value):
    if isinstance(value, Quantity):
        return value
    return value


def _copied_entry(entry, indices):
    number, unit = entry
    return (number[indices].copy(), unit)


class Particle:
    """Proxy for a single particle inside a set."""

    def __init__(self, particles, index):
        object.__setattr__(self, "_particles", particles)
        object.__setattr__(self, "_index", index)

    @property
    def key(self):
        return int(self._particles.key[self._index])

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        return self._particles.get_attribute(name, self._index)

    def __setattr__(self, name, value):
        self._particles.set_attribute(name, value, self._index)

    def as_set(self):
        """A one-particle subset wrapping this particle."""
        return ParticlesSubset(self._particles, np.array([self._index]))

    def __eq__(self, other):
        return isinstance(other, Particle) and other.key == self.key

    def __hash__(self):
        return hash(self.key)

    def __repr__(self):
        return f"<Particle key={self.key}>"


class AttributeChannel:
    """Copies attribute values between two sets holding the same keys.

    This is AMUSE's ``new_channel_to`` mechanism: model codes hold their
    own particle sets; after evolving, the script copies the updated
    attributes back into its in-memory set (and vice versa before the next
    model call).
    """

    def __init__(self, source, target):
        self.source = source
        self.target = target
        self._mapping = None

    def _target_indices(self):
        if self._mapping is None:
            src_keys = np.asarray(self.source.key)
            tgt_keys = np.asarray(self.target.key)
            order = np.argsort(tgt_keys)
            pos = np.searchsorted(tgt_keys, src_keys, sorter=order)
            if np.any(pos >= len(tgt_keys)):
                raise KeyError("source contains keys unknown to target")
            idx = order[np.minimum(pos, len(tgt_keys) - 1)]
            if not np.array_equal(tgt_keys[idx], src_keys):
                raise KeyError("source contains keys unknown to target")
            self._mapping = idx
        return self._mapping

    def copy_attributes(self, names):
        idx = self._target_indices()
        for name in names:
            value = getattr(self.source, name)
            if isinstance(value, Quantity):
                payload = Quantity(np.asarray(value.number), value.unit)
            else:
                payload = np.asarray(value)
            _assign_indexed(self.target, name, payload, idx)

    def copy_attribute(self, name):
        self.copy_attributes([name])

    def copy(self):
        self.copy_attributes(
            [n for n in self.source.attribute_names()]
        )


def _assign_indexed(target, name, payload, idx):
    parent = target._parent if isinstance(target, ParticlesSubset) else target
    if isinstance(target, ParticlesSubset):
        idx = target._indices[idx]
    if not parent.has_attribute(name):
        # materialise the attribute with zeros, then assign the subset
        if isinstance(payload, Quantity):
            zeros = Quantity(
                np.zeros((len(parent),) + payload.number.shape[1:]),
                payload.unit,
            )
        else:
            zeros = np.zeros((len(parent),) + payload.shape[1:])
        parent.set_attribute(name, zeros)
    parent.set_attribute(name, payload, idx)
