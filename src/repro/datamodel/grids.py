"""Structured lat-lon grids for the earth-system substrate.

CESM-lite model components (:mod:`repro.cesm`) exchange fields living on
:class:`LatLonGrid` instances.  Grids know their cell geometry (areas,
spacing), support units-tagged fields, and provide conservative-ish
area-weighted regridding between resolutions — the job done by the CESM
coupler's mapping files.
"""

from __future__ import annotations

import numpy as np

from ..units.core import Quantity

__all__ = ["LatLonGrid", "regrid_area_weighted"]

EARTH_RADIUS_M = 6.371e6


class LatLonGrid:
    """A regular latitude-longitude grid with named fields.

    Latitudes are cell centers from -90+d/2 to 90-d/2; longitudes from 0
    to 360.  Fields are (nlat, nlon) float arrays, optionally tagged with
    a unit.
    """

    def __init__(self, nlat, nlon, radius_m=EARTH_RADIUS_M):
        if nlat < 2 or nlon < 2:
            raise ValueError("grid needs at least 2x2 cells")
        self.nlat = int(nlat)
        self.nlon = int(nlon)
        self.radius_m = float(radius_m)
        dlat = 180.0 / nlat
        dlon = 360.0 / nlon
        self.lat = -90.0 + dlat * (np.arange(nlat) + 0.5)
        self.lon = dlon * (np.arange(nlon) + 0.5)
        # Exact spherical cell areas: R^2 * dlon * (sin top - sin bottom)
        lat_edges = np.radians(-90.0 + dlat * np.arange(nlat + 1))
        band = np.sin(lat_edges[1:]) - np.sin(lat_edges[:-1])
        self.cell_area_m2 = (
            radius_m ** 2 * np.radians(dlon) * band[:, None]
            * np.ones((1, nlon))
        )
        self._fields = {}

    @property
    def shape(self):
        return (self.nlat, self.nlon)

    @property
    def total_area_m2(self):
        return float(self.cell_area_m2.sum())

    # -- fields --------------------------------------------------------------

    def new_field(self, name, fill=0.0, unit=None):
        arr = np.full(self.shape, float(fill))
        self._fields[name] = (arr, unit)
        return arr

    def set_field(self, name, values, unit=None):
        if isinstance(values, Quantity):
            unit = values.unit
            values = values.number
        arr = np.asarray(values, dtype=float)
        if arr.shape != self.shape:
            arr = np.broadcast_to(arr, self.shape).copy()
        self._fields[name] = (arr, unit)

    def field(self, name):
        arr, unit = self._fields[name]
        if unit is None:
            return arr
        return Quantity(arr, unit)

    def field_array(self, name):
        return self._fields[name][0]

    def field_names(self):
        return sorted(self._fields)

    def has_field(self, name):
        return name in self._fields

    # -- reductions ------------------------------------------------------------

    def area_mean(self, name):
        """Area-weighted global mean of a field."""
        arr = self.field_array(name)
        return float(
            (arr * self.cell_area_m2).sum() / self.total_area_m2
        )

    def area_integral(self, name):
        """Area integral (field × m²)."""
        arr = self.field_array(name)
        return float((arr * self.cell_area_m2).sum())

    def zonal_mean(self, name):
        return self.field_array(name).mean(axis=1)

    def copy_layout(self):
        return LatLonGrid(self.nlat, self.nlon, self.radius_m)

    def __repr__(self):
        return (
            f"<LatLonGrid {self.nlat}x{self.nlon} "
            f"fields={self.field_names()}>"
        )


def regrid_area_weighted(src_grid, src_values, dst_grid):
    """Area-weighted first-order conservative regridding.

    Works on regular lat-lon grids by overlap of cell intervals in
    latitude (by sine, i.e. true spherical area) and longitude.  The
    global area integral of the field is conserved to round-off, which is
    what the flux coupler requires.
    """
    src = np.asarray(src_values, dtype=float)
    if src.shape != src_grid.shape:
        raise ValueError("source values do not match source grid")

    w_lat = _interval_overlap_matrix(
        _sin_lat_edges(src_grid.nlat), _sin_lat_edges(dst_grid.nlat)
    )
    w_lon = _interval_overlap_matrix(
        _lon_edges(src_grid.nlon), _lon_edges(dst_grid.nlon)
    )
    # integral over destination cell = w_lat^T @ (src * src_cell_geom) @ w_lon
    overlap = w_lat.T @ src @ w_lon
    norm = w_lat.T.sum(axis=1)[:, None] * w_lon.sum(axis=0)[None, :]
    return overlap / norm


def _sin_lat_edges(nlat):
    return np.sin(np.radians(-90.0 + 180.0 / nlat * np.arange(nlat + 1)))


def _lon_edges(nlon):
    return 360.0 / nlon * np.arange(nlon + 1)


def _interval_overlap_matrix(src_edges, dst_edges):
    """M[i, j] = |overlap of src interval i and dst interval j| (weights)."""
    ns, nd = len(src_edges) - 1, len(dst_edges) - 1
    lo = np.maximum(src_edges[:-1, None], dst_edges[None, :-1])
    hi = np.minimum(src_edges[1:, None], dst_edges[None, 1:])
    out = np.clip(hi - lo, 0.0, None)
    assert out.shape == (ns, nd)
    return out
