"""AMUSE-style data model: particle sets and structured grids."""

from .particles import AttributeChannel, Particle, Particles, ParticlesSubset
from .grids import LatLonGrid, regrid_area_weighted

__all__ = [
    "Particles",
    "Particle",
    "ParticlesSubset",
    "AttributeChannel",
    "LatLonGrid",
    "regrid_area_weighted",
]
