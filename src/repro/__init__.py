"""repro — reproduction of *High-Performance Distributed Multi-Model /
Multi-Kernel Simulations: A Case-Study in Jungle Computing* (Drost et al.,
2012, arXiv:1203.0321).

The package mirrors the paper's two software stacks:

* the **AMUSE side** — units (:mod:`repro.units`), particle data model
  (:mod:`repro.datamodel`), model kernels (:mod:`repro.codes`), the RPC
  channel/worker machinery (:mod:`repro.rpc`) and the BRIDGE coupler
  (:mod:`repro.coupling`);
* the **Ibis side** — SmartSockets, IPL, PyGAT, Zorilla and Deploy under
  :mod:`repro.ibis`, running on the simulated jungle substrate
  (:mod:`repro.jungle`), glued to AMUSE by :mod:`repro.distributed`.

A compact earth-system model (:mod:`repro.cesm`) reproduces the paper's
second 3MK instance.  See DESIGN.md for the full inventory and
EXPERIMENTS.md for the per-figure reproduction index.
"""

from __future__ import annotations

__version__ = "1.0.0"

from .units import units, constants, nbody_system, Quantity
from .datamodel import Particles

__all__ = [
    "units",
    "constants",
    "nbody_system",
    "Quantity",
    "Particles",
    "__version__",
]
