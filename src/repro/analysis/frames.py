"""Protocol frame conformance.

Three cross-checks over the wire layer, all AST-derived:

1. **MAGIC constants** — every module-level ``MAGIC*`` bytes constant
   must have an encoder (the name appears as a call argument, i.e. it
   is packed into a header somewhere) and a decoder (the name appears
   in a comparison, i.e. ``recv_frame`` dispatches on it).  An orphan
   means a frame type that can be produced but never parsed, or
   parsed but never produced.

2. **Capability negotiation** — the key sets of the hello handshake
   must line up end to end: every key a client offer function
   (``_offer_capabilities`` / ``_hello_caps``) puts in its returned
   dict must be examined by an accept site (``accept_capabilities`` or
   the daemon's hello arm in ``_serve``), and every key the client
   applies from the ack (``_apply_negotiated_caps``) must be one the
   accept side can actually grant.  A typo'd capability name silently
   negotiates to "off" — this check makes it loud.

3. **Frame kinds** — every request kind a client sends (tuples built
   by ``*_message`` helpers or passed to the send/request plumbing,
   plus the implied kind of every ``send_<kind>_frame`` helper) must
   have a dispatch arm comparing against it on some peer loop; arms
   that no in-tree client ever sends are reported too, so dead
   protocol surface is at least a conscious, baselined decision.
"""

from __future__ import annotations

import ast

from .core import Finding, FunctionInfo, Project, rule

__all__: list[str] = []

#: functions whose returned dict carries the client's hello offer
_OFFER_FUNCS = frozenset({"_offer_capabilities", "_hello_caps"})
#: functions that examine an offer (variables named offered/offer)
_ACCEPT_FUNCS = frozenset({"accept_capabilities", "_serve"})
_ACCEPT_VARS = frozenset({"offered", "offer"})
#: the client side applying the negotiated ack
_APPLY_FUNCS = frozenset({"_apply_negotiated_caps"})

#: plumbing that takes a ``(kind, ...)`` request tuple; ``put`` covers
#: the queue-shaped transports (mpi mailboxes, TaskGraph event loop)
_SEND_FUNCS = frozenset({
    "_send_frame_locked", "_request", "send_frame", "send_frame_v2",
    "reply", "reply_frame", "pack_frame", "put",
})
#: reply kinds delivered through the reader's else-branch
_IMPLICIT_KINDS = frozenset({"error"})


def _str_const(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _tuple_kind(node: ast.expr) -> str | None:
    """First-element string of a tuple literal, seeing through the
    ``("kind", x) + extras`` concatenation idiom."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _tuple_kind(node.left)
    if isinstance(node, ast.Tuple) and node.elts:
        return _str_const(node.elts[0])
    return None


def _check_magic(project: Project) -> list[Finding]:
    findings = []
    for module in project.modules:
        constants: dict[str, int] = {}
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and target.id.startswith("MAGIC")
                            and isinstance(node.value, ast.Constant)
                            and isinstance(node.value.value, bytes)):
                        constants[target.id] = node.lineno
        if not constants:
            continue
        packed: set[str] = set()
        compared: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        packed.add(arg.id)
            elif isinstance(node, ast.Compare):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name):
                        compared.add(sub.id)
        for name, line in sorted(constants.items()):
            missing = []
            if name not in packed:
                missing.append("encoder (never packed into a frame)")
            if name not in compared:
                missing.append("decoder (never compared at receive)")
            if missing:
                findings.append(Finding(
                    rule="frame-conformance",
                    path=module.rel,
                    line=line,
                    message=(
                        f"orphaned frame constant {name}: missing "
                        + " and ".join(missing)
                    ),
                    key=f"frame-conformance:magic:{module.rel}::{name}",
                ))
    return findings


def _returned_dict_keys(info: FunctionInfo) -> set[str]:
    """Keys subscript-assigned onto the variable(s) the function
    returns (the offer/ack dict construction idiom)."""
    returned: set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Return) and isinstance(
            node.value, ast.Name
        ):
            returned.add(node.value.id)
    keys: set[str] = set()
    for node in ast.walk(info.node):
        if (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Subscript)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id in returned):
            key = _str_const(node.targets[0].slice)
            if key is not None:
                keys.add(key)
    return keys


def _examined_keys(info: FunctionInfo, varnames: frozenset[str],
                   any_var: bool = False) -> set[str]:
    """String keys read off *varnames* via .get()/[...]/`in`."""
    keys: set[str] = set()
    for node in ast.walk(info.node):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get" and node.args):
            if any_var or (isinstance(node.func.value, ast.Name)
                           and node.func.value.id in varnames):
                key = _str_const(node.args[0])
                if key is not None:
                    keys.add(key)
        elif isinstance(node, ast.Subscript) and (
            any_var or (isinstance(node.value, ast.Name)
                        and node.value.id in varnames)
        ):
            key = _str_const(node.slice)
            if key is not None:
                keys.add(key)
        elif isinstance(node, ast.Compare) and len(node.ops) == 1 and (
            isinstance(node.ops[0], ast.In)
        ) and (
            any_var or (isinstance(node.comparators[0], ast.Name)
                        and node.comparators[0].id in varnames)
        ):
            key = _str_const(node.left)
            if key is not None:
                keys.add(key)
    return keys


def _check_capabilities(project: Project) -> list[Finding]:
    offered: dict[str, tuple[str, int, str]] = {}
    accepted: set[str] = set()
    granted: set[str] = set()
    applied: dict[str, tuple[str, int, str]] = {}
    for module in project.modules:
        for info in module.all_functions():
            if info.name in _OFFER_FUNCS:
                for key in _returned_dict_keys(info):
                    offered.setdefault(
                        key, (module.rel, info.node.lineno, info.site)
                    )
            if info.name in _ACCEPT_FUNCS:
                accepted |= _examined_keys(info, _ACCEPT_VARS)
            if info.name == "accept_capabilities":
                granted |= _returned_dict_keys(info)
            if info.name in _APPLY_FUNCS:
                for key in _examined_keys(
                    info, frozenset(), any_var=True
                ):
                    applied.setdefault(
                        key, (module.rel, info.node.lineno, info.site)
                    )
    findings = []
    for key, (rel, line, site) in sorted(offered.items()):
        if key not in accepted:
            findings.append(Finding(
                rule="frame-conformance",
                path=rel,
                line=line,
                message=(
                    f"capability {key!r} offered by {site} is never "
                    "examined by any accept site — it silently "
                    "negotiates to off"
                ),
                key=f"frame-conformance:cap-offer:{key}",
            ))
    for key, (rel, line, site) in sorted(applied.items()):
        if granted and key not in granted:
            findings.append(Finding(
                rule="frame-conformance",
                path=rel,
                line=line,
                message=(
                    f"capability {key!r} applied by {site} is never "
                    "granted by accept_capabilities"
                ),
                key=f"frame-conformance:cap-apply:{key}",
            ))
    return findings


def _sent_kinds(info: FunctionInfo) -> set[str]:
    kinds: set[str] = set()
    # *_message builders and _pack* codecs return the (kind, ...) tuple
    if info.name.endswith("_message") or info.name.startswith("_pack"):
        for node in ast.walk(info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                kind = _tuple_kind(node.value)
                if kind is not None:
                    kinds.add(kind)
    # tuple-valued local assignments, so `msg = ("kind", ...)` followed
    # by `self._request(msg)` still counts as sending that kind
    local_tuples: dict[str, str] = {}
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            kind = _tuple_kind(node.value)
            if kind is not None:
                local_tuples[node.targets[0].id] = kind
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        name = None
        if isinstance(node.func, ast.Attribute):
            name = node.func.attr
        elif isinstance(node.func, ast.Name):
            name = node.func.id
        if name not in _SEND_FUNCS:
            continue
        for arg in node.args:
            kind = _tuple_kind(arg)
            if kind is None and isinstance(arg, ast.Name):
                kind = local_tuples.get(arg.id)
            if kind is not None:
                kinds.add(kind)
    return kinds


def _handled_kinds(info: FunctionInfo) -> set[str]:
    kinds: set[str] = set()
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left] + list(node.comparators)
        if not any(
            isinstance(s, ast.Name) and "kind" in s.id for s in sides
        ):
            continue
        for side in sides:
            value = _str_const(side)
            if value is not None:
                kinds.add(value)
            elif isinstance(side, (ast.Tuple, ast.List)):
                for elt in side.elts:
                    value = _str_const(elt)
                    if value is not None:
                        kinds.add(value)
    return kinds


def _check_kinds(project: Project) -> list[Finding]:
    sent: dict[str, tuple[str, int, str]] = {}
    handled: dict[str, tuple[str, int, str]] = {}
    for module in project.modules:
        for info in module.all_functions():
            for kind in _sent_kinds(info):
                sent.setdefault(
                    kind, (module.rel, info.node.lineno, info.site)
                )
            for kind in _handled_kinds(info):
                handled.setdefault(
                    kind, (module.rel, info.node.lineno, info.site)
                )
            # send_<kind>_frame helpers imply a kind on the wire
            if (info.name.startswith("send_")
                    and info.name.endswith("_frame")):
                implied = info.name[len("send_"):-len("_frame")]
                if implied:
                    sent.setdefault(
                        implied,
                        (module.rel, info.node.lineno, info.site),
                    )
    findings = []
    for kind, (rel, line, site) in sorted(sent.items()):
        if kind not in handled and kind not in _IMPLICIT_KINDS:
            findings.append(Finding(
                rule="frame-conformance",
                path=rel,
                line=line,
                message=(
                    f"frame kind {kind!r} sent by {site} has no "
                    "dispatch arm on any peer loop"
                ),
                key=f"frame-conformance:unhandled:{kind}",
            ))
    for kind, (rel, line, site) in sorted(handled.items()):
        if kind not in sent and kind not in _IMPLICIT_KINDS:
            findings.append(Finding(
                rule="frame-conformance",
                path=rel,
                line=line,
                message=(
                    f"dispatch arm for frame kind {kind!r} in {site} "
                    "is never sent by any in-tree client (dead "
                    "protocol surface?)"
                ),
                key=f"frame-conformance:dead-arm:{kind}",
            ))
    return findings


@rule(
    "frame-conformance",
    "every MAGIC constant encodes and decodes; hello capability names "
    "agree across offer/accept/apply; every sent frame kind has a "
    "peer dispatch arm",
)
def check_frame_conformance(project: Project) -> list[Finding]:
    return (
        _check_magic(project)
        + _check_capabilities(project)
        + _check_kinds(project)
    )
