"""CLI: ``python -m repro.analysis [paths...]``.

Runs every registered rule over the given source roots, subtracts the
committed baseline, and exits nonzero when anything new is found.

Typical invocations::

    # the CI gate (exit 0 on a clean committed tree)
    python -m repro.analysis src/repro

    # accept the current findings into the baseline, then go edit the
    # justification fields before committing
    python -m repro.analysis src/repro --write-baseline

    # cross-validate a lockwatch run (REPRO_LOCKWATCH=1 test run)
    python -m repro.analysis src/repro --lockwatch-report lockwatch.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import RULES, Baseline, Finding, Project, run_rules
from .locks import build_lock_graph
from .lockwatch import validate_report

DEFAULT_BASELINE = "analysis-baseline.json"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "concurrency & protocol invariant checker for the repro "
            "codebase"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="source roots to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            "baseline JSON of accepted findings (default: "
            f"{DEFAULT_BASELINE} if it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write all current findings to the baseline file and exit",
    )
    parser.add_argument(
        "--rules", default=None, metavar="R1,R2",
        help="comma-separated rule subset (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--lockwatch-report", default=None, metavar="FILE",
        help=(
            "JSON report from a REPRO_LOCKWATCH=1 run to cross-"
            "validate against the static lock-order graph"
        ),
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable findings on stdout",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name].doc}")
        return 0

    roots = [Path(p) for p in args.paths]
    for root in roots:
        if not root.exists():
            print(f"error: no such path: {root}", file=sys.stderr)
            return 2
    project = Project(roots)

    names = args.rules.split(",") if args.rules else None
    try:
        findings = run_rules(project, names)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.lockwatch_report is not None:
        graph = build_lock_graph(project)
        data = json.loads(Path(args.lockwatch_report).read_text())
        watch_findings, stats = validate_report(data, graph)
        findings = sorted(
            findings + watch_findings,
            key=lambda f: (f.path, f.line, f.rule, f.key),
        )
        print(
            f"lockwatch: {stats['observed']} observed edges, "
            f"{stats['matched']} between known locks, "
            f"{stats['unmodeled']} unmodeled-but-consistent"
        )

    baseline_path = (
        Path(args.baseline) if args.baseline is not None
        else Path(DEFAULT_BASELINE)
    )
    if args.write_baseline:
        previous = (
            Baseline.load(baseline_path) if baseline_path.exists()
            else Baseline()
        )
        Baseline.write(baseline_path, findings)
        # keep reviewed justifications across rewrites
        data = json.loads(baseline_path.read_text())
        for entry in data["baseline"]:
            if entry["key"] in previous.entries:
                entry["justification"] = previous.entries[entry["key"]]
        baseline_path.write_text(json.dumps(data, indent=2) + "\n")
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}; "
            "fill in the justification fields before committing"
        )
        return 0

    baseline = (
        Baseline.load(baseline_path) if baseline_path.exists()
        else Baseline()
    )
    new, accepted = baseline.split(findings)

    if args.as_json:
        print(json.dumps({
            "new": [f.__dict__ for f in new],
            "accepted": [f.__dict__ for f in accepted],
        }, indent=2))
    else:
        for finding in new:
            print(finding.render())
            print(f"    key: {finding.key}")
        stale = baseline.stale_keys(findings)
        summary = (
            f"{len(new)} new finding(s), {len(accepted)} baselined"
        )
        if stale:
            summary += (
                f", {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} "
                "(fixed findings — prune them)"
            )
            for key in stale:
                print(f"stale baseline entry: {key}")
        print(summary)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
