"""Core engine for the invariant checker: project model, rule
registry, findings and the baseline workflow.

The checker never imports the code under analysis — everything is
derived from the AST (:mod:`ast`), so seeded-bug fixtures and modules
with missing optional dependencies analyze fine.

Resolution model
----------------

Rules share one best-effort call/attribute resolver built here:

* bare names resolve through module scope and ``from x import y``
  imports (project-internal only);
* ``self.m(...)`` resolves within the enclosing class, then its
  project-resolvable ancestors; rules that trace *runtime* reachability
  (the reader-thread lint) additionally widen into subclass overrides;
* other attribute calls (``obj.m(...)``) resolve only when the method
  name is unique across the whole project — anything ambiguous is
  dropped rather than over-approximated, because a false edge in the
  lock graph manufactures deadlock cycles that do not exist.

Findings carry a *stable key* (no line numbers) so the committed
baseline file survives unrelated edits.  The baseline is JSON: a list
of ``{"key": ..., "justification": ...}`` entries; a finding whose key
is baselined is reported as accepted and does not fail the run.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Baseline",
    "Finding",
    "FunctionInfo",
    "Module",
    "Project",
    "RULES",
    "rule",
    "run_rules",
]


@dataclass(frozen=True)
class Finding:
    """One checker diagnostic.

    ``key`` is the stable fingerprint used for baselining; it must not
    embed line numbers, so a finding keeps matching its baseline entry
    while unrelated code moves around.
    """

    rule: str
    path: str
    line: int
    message: str
    key: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class FunctionInfo:
    """A function or method definition, with enough context to walk
    calls out of it."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: "Module"
    qualname: str
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def site(self) -> str:
        return f"{self.module.rel}::{self.qualname}"


class Module:
    """One parsed source file."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.tree = ast.parse(path.read_text(), filename=str(path))
        #: local name -> (dotted module, original name) for
        #: ``from x import y [as z]``; original name None for plain
        #: ``import x [as z]``
        self.imports: dict[str, tuple[str, str | None]] = {}
        #: top-level function name -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: class name -> {method name -> FunctionInfo}
        self.classes: dict[str, dict[str, FunctionInfo]] = {}
        #: class name -> base-class expressions (unresolved names)
        self.bases: dict[str, list[str]] = {}
        self._index()

    def _index(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ImportFrom):
                dotted = "." * node.level + (node.module or "")
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = (dotted, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = (alias.name, None)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionInfo(
                    node, self, node.name
                )
            elif isinstance(node, ast.ClassDef):
                methods: dict[str, FunctionInfo] = {}
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        methods[item.name] = FunctionInfo(
                            item, self, f"{node.name}.{item.name}",
                            class_name=node.name,
                        )
                self.classes[node.name] = methods
                self.bases[node.name] = [
                    _expr_name(base) for base in node.bases
                ]

    def all_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()
        for methods in self.classes.values():
            yield from methods.values()


def _expr_name(node: ast.expr) -> str:
    """Best-effort dotted name of an expression (for base classes)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{_expr_name(node.value)}.{node.attr}"
    return ""


class Project:
    """Every parsed module under the analyzed roots, plus the shared
    name-resolution indexes the rules use."""

    def __init__(self, roots: Iterable[Path]) -> None:
        self.roots = [Path(r).resolve() for r in roots]
        self.modules: list[Module] = []
        seen: set[Path] = set()
        for root in self.roots:
            base = root if root.is_dir() else root.parent
            paths = sorted(root.rglob("*.py")) if root.is_dir() else [root]
            for path in paths:
                resolved = path.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                self.modules.append(Module(resolved, base.resolve()))
        #: method/function name -> every definition in the project
        self.by_name: dict[str, list[FunctionInfo]] = {}
        for module in self.modules:
            for info in module.all_functions():
                self.by_name.setdefault(info.name, []).append(info)
        #: class name -> defining modules (class names are treated as
        #: project-unique, which holds for this codebase)
        self.class_home: dict[str, Module] = {}
        for module in self.modules:
            for cls in module.classes:
                self.class_home.setdefault(cls, module)
        #: class name -> direct project subclasses
        self.subclasses: dict[str, list[str]] = {}
        for module in self.modules:
            for cls, bases in module.bases.items():
                for base in bases:
                    leaf = base.split(".")[-1]
                    if leaf in self.class_home:
                        self.subclasses.setdefault(leaf, []).append(cls)

    # -- name resolution ----------------------------------------------------

    def find(self, rel_suffix: str) -> Module | None:
        """The module whose repo-relative path ends with *rel_suffix*."""
        for module in self.modules:
            if module.rel.endswith(rel_suffix):
                return module
        return None

    def _class_methods(self, cls: str) -> dict[str, FunctionInfo]:
        home = self.class_home.get(cls)
        if home is None:
            return {}
        return home.classes.get(cls, {})

    def method_on(self, cls: str, name: str,
                  widen: bool = False) -> list[FunctionInfo]:
        """Resolve ``self.name`` on class *cls*: the class itself,
        then ancestors; with *widen*, subclass overrides too (runtime
        dispatch may land there)."""
        found = []
        info = self._class_methods(cls).get(name)
        if info is not None:
            found.append(info)
        else:
            for base in self._ancestors(cls):
                info = self._class_methods(base).get(name)
                if info is not None:
                    found.append(info)
                    break
        if widen:
            for sub in self._descendants(cls):
                info = self._class_methods(sub).get(name)
                if info is not None and info not in found:
                    found.append(info)
        return found

    def _ancestors(self, cls: str) -> list[str]:
        out: list[str] = []
        queue = [cls]
        while queue:
            current = queue.pop()
            home = self.class_home.get(current)
            if home is None:
                continue
            for base in home.bases.get(current, []):
                leaf = base.split(".")[-1]
                if leaf in self.class_home and leaf not in out:
                    out.append(leaf)
                    queue.append(leaf)
        return out

    def _descendants(self, cls: str) -> list[str]:
        out: list[str] = []
        queue = [cls]
        while queue:
            current = queue.pop()
            for sub in self.subclasses.get(current, []):
                if sub not in out:
                    out.append(sub)
                    queue.append(sub)
        return out

    def resolve_call(self, call: ast.Call, scope: FunctionInfo,
                     widen: bool = False) -> list[FunctionInfo]:
        """Project-internal definitions a call may land on (see the
        module docstring for the resolution policy)."""
        func = call.func
        if isinstance(func, ast.Name):
            info = scope.module.functions.get(func.id)
            if info is not None:
                return [info]
            imported = scope.module.imports.get(func.id)
            if imported is not None:
                _, orig = imported
                for candidate in self.by_name.get(orig or func.id, []):
                    if candidate.class_name is None:
                        return [candidate]
            return []
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and scope.class_name is not None):
                return self.method_on(
                    scope.class_name, func.attr, widen=widen
                )
            if func.attr in _BUILTIN_METHOD_NAMES:
                return []
            candidates = self.by_name.get(func.attr, [])
            if len(candidates) == 1:
                return candidates
        return []


#: method names shared with builtin containers/primitives — a call
#: like ``self._pending.clear()`` must never resolve to a project
#: method that happens to reuse the name, so these are excluded from
#: the unique-name fallback (self.m and imported-name resolution are
#: unaffected)
_BUILTIN_METHOD_NAMES = frozenset({
    "add", "append", "clear", "close", "copy", "count", "discard",
    "extend", "flush", "get", "index", "insert", "items", "join",
    "keys", "pop", "popleft", "put", "read", "remove", "send", "set",
    "sort", "split", "start", "update", "values", "wait", "write",
})

#: rule id -> implementation; populated by the @rule decorator in each
#: rule module (importing repro.analysis registers them all)
RULES: dict[str, "Rule"] = {}


@dataclass
class Rule:
    name: str
    doc: str
    fn: Callable[[Project], list[Finding]]


def rule(name: str, doc: str) -> Callable[
    [Callable[[Project], list[Finding]]],
    Callable[[Project], list[Finding]],
]:
    def register(
        fn: Callable[[Project], list[Finding]],
    ) -> Callable[[Project], list[Finding]]:
        RULES[name] = Rule(name, doc, fn)
        return fn
    return register


def run_rules(project: Project,
              names: Iterable[str] | None = None) -> list[Finding]:
    selected = list(names) if names is not None else sorted(RULES)
    findings: list[Finding] = []
    for name in selected:
        if name not in RULES:
            raise KeyError(f"unknown rule {name!r}; have {sorted(RULES)}")
        findings.extend(RULES[name].fn(project))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.key))
    return findings


@dataclass
class Baseline:
    """The committed set of accepted findings.

    Every entry needs a justification — the baseline is a reviewed
    list of "yes, we know, and here is why it is safe", not a mute
    button.
    """

    path: Path | None = None
    entries: dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        entries: dict[str, str] = {}
        for entry in data.get("baseline", []):
            entries[entry["key"]] = entry.get("justification", "")
        return cls(path=path, entries=entries)

    def split(
        self, findings: list[Finding],
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, accepted)."""
        new = [f for f in findings if f.key not in self.entries]
        accepted = [f for f in findings if f.key in self.entries]
        return new, accepted

    def stale_keys(self, findings: list[Finding]) -> list[str]:
        live = {f.key for f in findings}
        return sorted(k for k in self.entries if k not in live)

    @staticmethod
    def write(path: Path, findings: list[Finding],
              justification: str = "accepted pre-existing pattern; "
              "review before removing") -> None:
        payload = {
            "version": 1,
            "baseline": [
                {
                    "key": f.key,
                    "rule": f.rule,
                    "where": f"{f.path}:{f.line}",
                    "justification": justification,
                }
                for f in findings
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")
