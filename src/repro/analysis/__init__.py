"""Static concurrency & protocol invariant checker.

The hardest bugs in this codebase so far — the reader-exit hang
(PR 1), the cancel-vs-reply race (PR 5), the reaped-session spawn
race (PR 6) — were all violations of invariants the code keeps by
convention: lock acquisition order, "nothing blocks on a reader
thread", frame kinds matching dispatch arms, every allocation having
a teardown path.  This package machine-checks those conventions at
lint time, over the AST, without importing the code under analysis.

Rule families (see each module's docstring for the fine print):

* :mod:`~repro.analysis.locks` — global lock-order graph; fails on
  cycles and on acquisitions inside a frame-send critical section;
* :mod:`~repro.analysis.threads` — blocking calls reachable from
  reader-thread entry points and done-callback bodies;
* :mod:`~repro.analysis.frames` — MAGIC constants, hello capability
  names and frame kinds must agree across both peers;
* :mod:`~repro.analysis.lifecycle` — shm segments, subprocesses and
  pending futures must have a reachable teardown path;
* :mod:`~repro.analysis.lockwatch` — the runtime companion: records
  real acquisition orders under ``REPRO_LOCKWATCH=1`` and
  cross-validates them against the static graph.

Workflow: ``python -m repro.analysis src/repro`` exits 0 when every
finding is either fixed or accepted into ``analysis-baseline.json``
with a justification; CI runs exactly that, so a new finding (or a
runtime/static divergence) fails the static-analysis lane.
"""

from __future__ import annotations

from .core import (
    RULES,
    Baseline,
    Finding,
    Project,
    Rule,
    rule,
    run_rules,
)

# importing the rule modules registers them in RULES
from . import frames, lifecycle, locks, threads  # noqa: E402,F401

__all__ = [
    "Baseline",
    "Finding",
    "Project",
    "RULES",
    "Rule",
    "analyze",
    "rule",
    "run_rules",
]


def analyze(*paths: str, rules: list[str] | None = None) -> list[Finding]:
    """Run the checker programmatically; returns sorted findings."""
    project = Project(paths or ("src/repro",))
    return run_rules(project, rules)
