"""Lock-order analysis.

Builds a global lock-order graph from every ``with <lock>:``
acquisition in the project: a nested acquisition (directly in the
``with`` body, or inside any strictly-resolved call made from it)
adds the edge ``outer -> inner``.  Two failure modes:

* a **cycle** in the graph — two threads taking the same locks in
  opposite orders is the classic deadlock recipe;
* any acquisition **inside a frame-send critical section** (a lock
  whose name marks it as a send lock, e.g. ``_send_lock``) — the wire
  invariant since PR 1 is that nothing slow or blocking happens while
  a partial frame owns the socket.

Lock identity is the *definition site*: ``module.py::Class.attr`` for
``self.attr = threading.Lock()``, ``module.py::name`` for module
globals, ``module.py::func.name`` for locals.  The definition line is
kept so the lockwatch runtime report (which knows only creation
file:line) can be joined back onto this graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .core import Finding, FunctionInfo, Module, Project, rule

__all__ = ["LockDef", "LockGraph", "build_lock_graph"]

#: threading factory callables whose result is an acquirable lock
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: a lock with one of these substrings in its terminal name guards a
#: frame-send critical section (bytes of one frame own the socket)
_SEND_LOCK_MARKERS = ("send_lock",)


@dataclass(frozen=True)
class LockDef:
    name: str       # stable identity, e.g. src/repro/rpc/shm.py::ShmArena._lock
    rel: str
    line: int
    kind: str       # Lock | RLock | Condition

    @property
    def is_send_lock(self) -> bool:
        leaf = self.name.rsplit(".", 1)[-1].rsplit("::", 1)[-1]
        return any(marker in leaf for marker in _SEND_LOCK_MARKERS)


@dataclass
class _Edge:
    outer: str
    inner: str
    rel: str
    line: int
    via: str        # human-readable provenance ("direct" or call chain)


@dataclass
class LockGraph:
    defs: dict[str, LockDef] = field(default_factory=dict)
    #: (rel, line) of the creation call -> lock name, for lockwatch
    sites: dict[tuple[str, int], str] = field(default_factory=dict)
    edges: dict[tuple[str, str], _Edge] = field(default_factory=dict)
    #: acquisitions made while a send lock is held
    send_violations: list[_Edge] = field(default_factory=list)

    def add_edge(self, edge: _Edge) -> None:
        if edge.outer == edge.inner:
            return  # RLock re-entry, not an ordering constraint
        self.edges.setdefault((edge.outer, edge.inner), edge)

    def successors(self, name: str) -> list[str]:
        return [b for (a, b) in self.edges if a == name]

    def reachable(self, start: str, goal: str) -> bool:
        seen = {start}
        queue = [start]
        while queue:
            for nxt in self.successors(queue.pop()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def cycles(self) -> list[list[str]]:
        """Strongly connected components with more than one lock."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        out: list[list[str]] = []
        nodes = sorted(
            {a for a, _ in self.edges} | {b for _, b in self.edges}
        )

        def strongconnect(v: str) -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in self.successors(v):
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                if len(component) > 1:
                    out.append(sorted(component))

        for node in nodes:
            if node not in index:
                strongconnect(node)
        return out


def _is_lock_factory(call: ast.Call, module: Module) -> str | None:
    """The factory kind when *call* creates a threading lock."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
        if isinstance(func.value, ast.Name) and func.value.id == "threading":
            return func.attr
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        imported = module.imports.get(func.id)
        if imported is not None and imported[0].endswith("threading"):
            return func.id
    return None


class _Scope:
    """Per-module lock namespace: class attrs, globals, locals."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.class_attrs: dict[tuple[str, str], LockDef] = {}
        self.globals: dict[str, LockDef] = {}
        self.locals: dict[tuple[str, str], LockDef] = {}


def _collect_defs(project: Project, graph: LockGraph) -> dict[str, _Scope]:
    scopes: dict[str, _Scope] = {}
    for module in project.modules:
        scope = scopes[module.rel] = _Scope(module)
        for node in module.tree.body:
            _collect_assign(node, module, scope, graph, qual=None)
        for info in module.all_functions():
            for node in ast.walk(info.node):
                _collect_assign(node, module, scope, graph,
                                qual=info.qualname, cls=info.class_name)
    return scopes


def _collect_assign(node: ast.AST, module: Module, scope: _Scope,
                    graph: LockGraph, qual: str | None,
                    cls: str | None = None) -> None:
    if not isinstance(node, ast.Assign) or not isinstance(
        node.value, ast.Call
    ):
        return
    kind = _is_lock_factory(node.value, module)
    if kind is None:
        return
    for target in node.targets:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self" and cls is not None):
            name = f"{module.rel}::{cls}.{target.attr}"
            lock = LockDef(name, module.rel, node.lineno, kind)
            scope.class_attrs[(cls, target.attr)] = lock
        elif isinstance(target, ast.Name) and qual is None:
            name = f"{module.rel}::{target.id}"
            lock = LockDef(name, module.rel, node.lineno, kind)
            scope.globals[target.id] = lock
        elif isinstance(target, ast.Name) and qual is not None:
            name = f"{module.rel}::{qual}.{target.id}"
            lock = LockDef(name, module.rel, node.lineno, kind)
            scope.locals[(qual, target.id)] = lock
        else:
            continue
        graph.defs[lock.name] = lock
        graph.sites[(module.rel, node.lineno)] = lock.name


class _Resolver:
    def __init__(self, project: Project, scopes: dict[str, _Scope]) -> None:
        self.project = project
        self.scopes = scopes
        #: attr name -> defs, for unique cross-object resolution
        self.by_attr: dict[str, list[LockDef]] = {}
        for scope in scopes.values():
            for (_, attr), lock in scope.class_attrs.items():
                self.by_attr.setdefault(attr, []).append(lock)

    def lock_of(self, expr: ast.expr, info: FunctionInfo) -> LockDef | None:
        scope = self.scopes[info.module.rel]
        if isinstance(expr, ast.Name):
            local = scope.locals.get((info.qualname, expr.id))
            if local is not None:
                return local
            return scope.globals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if (isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and info.class_name is not None):
                hit = scope.class_attrs.get((info.class_name, expr.attr))
                if hit is not None:
                    return hit
                for base in self.project._ancestors(info.class_name):
                    home = self.project.class_home.get(base)
                    if home is None:
                        continue
                    base_scope = self.scopes.get(home.rel)
                    if base_scope is None:
                        continue
                    hit = base_scope.class_attrs.get((base, expr.attr))
                    if hit is not None:
                        return hit
                return None
            candidates = self.by_attr.get(expr.attr, [])
            if len(candidates) == 1:
                return candidates[0]
        return None


@dataclass
class _FuncFacts:
    direct: set[str] = field(default_factory=set)
    #: (held lock name or None, call node) for every call expression
    calls: list[tuple[str | None, ast.Call]] = field(default_factory=list)


def _walk_function(info: FunctionInfo, resolver: _Resolver,
                   graph: LockGraph) -> _FuncFacts:
    facts = _FuncFacts()

    def visit(node: ast.AST, held: list[LockDef]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not info.node:
                return  # nested defs run later, under unknown locks
        if isinstance(node, ast.With):
            acquired: list[LockDef] = []
            for item in node.items:
                lock = resolver.lock_of(item.context_expr, info)
                if lock is None:
                    continue
                facts.direct.add(lock.name)
                if held:
                    graph.add_edge(_Edge(
                        held[-1].name, lock.name, info.module.rel,
                        item.context_expr.lineno,
                        f"nested with in {info.site}",
                    ))
                    if held[-1].is_send_lock:
                        graph.send_violations.append(_Edge(
                            held[-1].name, lock.name, info.module.rel,
                            item.context_expr.lineno,
                            f"direct acquisition in {info.site}",
                        ))
                held.append(lock)
                acquired.append(lock)
            for child in node.body:
                visit(child, held)
            for _ in acquired:
                held.pop()
            return
        if isinstance(node, ast.Call):
            facts.calls.append((held[-1].name if held else None, node))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in info.node.body:
        visit(stmt, [])
    return facts


def build_lock_graph(project: Project) -> LockGraph:
    graph = LockGraph()
    scopes = _collect_defs(project, graph)
    resolver = _Resolver(project, scopes)

    facts: dict[str, _FuncFacts] = {}
    infos: dict[str, FunctionInfo] = {}
    for module in project.modules:
        for info in module.all_functions():
            facts[info.site] = _walk_function(info, resolver, graph)
            infos[info.site] = info

    # fixpoint: every lock a function may acquire, transitively
    reach: dict[str, set[str]] = {
        site: set(f.direct) for site, f in facts.items()
    }
    changed = True
    while changed:
        changed = False
        for site, fact in facts.items():
            info = infos[site]
            for _, call in fact.calls:
                for callee in project.resolve_call(call, info):
                    extra = reach.get(callee.site, set())
                    if not extra <= reach[site]:
                        reach[site] |= extra
                        changed = True

    # interprocedural edges: call made while holding a lock, into a
    # function that (transitively) acquires others
    for site, fact in facts.items():
        info = infos[site]
        for held, call in fact.calls:
            if held is None:
                continue
            for callee in project.resolve_call(call, info):
                for inner in sorted(reach.get(callee.site, ())):
                    if inner == held:
                        continue
                    edge = _Edge(
                        held, inner, info.module.rel, call.lineno,
                        f"call {callee.qualname}() from {info.site}",
                    )
                    graph.add_edge(edge)
                    if graph.defs[held].is_send_lock:
                        graph.send_violations.append(edge)
    return graph


@rule(
    "lock-order",
    "lock-order graph must be acyclic; no acquisitions inside a "
    "frame-send critical section",
)
def check_lock_order(project: Project) -> list[Finding]:
    graph = build_lock_graph(project)
    findings: list[Finding] = []
    for cycle in graph.cycles():
        anchor = graph.defs[cycle[0]]
        findings.append(Finding(
            rule="lock-order",
            path=anchor.rel,
            line=anchor.line,
            message=(
                "potential deadlock: lock-order cycle "
                + " -> ".join(cycle + [cycle[0]])
            ),
            key="lock-order:cycle:" + "|".join(cycle),
        ))
    for violation in graph.send_violations:
        findings.append(Finding(
            rule="lock-order",
            path=violation.rel,
            line=violation.line,
            message=(
                f"{violation.inner} acquired inside frame-send "
                f"critical section {violation.outer} ({violation.via})"
            ),
            key=(
                "lock-order:send-section:"
                f"{violation.outer}->{violation.inner}"
            ),
        ))
    return findings
