"""Runtime lock-order watcher — the dynamic half of the lock rule.

``install()`` replaces the ``threading.Lock`` / ``RLock`` /
``Condition`` factories with wrappers that tag every lock *created
from repro source* with its creation site (file, line) and record,
per thread, the acquisition order actually observed: acquiring B
while holding A adds the edge ``A -> B``.

The creation site is the join key back to the static analysis:
:func:`repro.analysis.locks.build_lock_graph` records the definition
line of every ``self._lock = threading.Lock()`` it finds, so a
runtime edge between two known sites can be checked against the
static graph.  Divergence — a runtime order whose *reverse* is
statically possible, i.e. the union of both graphs has a cycle — is
exactly a latent deadlock one of the two analyses missed, and fails
the static-analysis lane.

Enabled by the test harness when ``REPRO_LOCKWATCH=1``; the observed
edges are dumped as JSON to ``REPRO_LOCKWATCH_OUT`` (default
``lockwatch.json``) at interpreter exit, then cross-validated with::

    python -m repro.analysis src/repro --lockwatch-report lockwatch.json

Locks created outside repro source (pytest internals, stdlib pools)
are handed back unwrapped, so instrumentation overhead lands only on
the code under test.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
from pathlib import Path
from typing import Any

from .core import Finding
from .locks import LockGraph

__all__ = [
    "install", "uninstall", "installed", "report", "reset", "dump",
    "validate_report",
]

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition

#: guard for the edge table; captured before install() ever swaps the
#: factories, so the watcher never watches itself
_guard = threading.Lock()
_edges: dict[tuple[tuple[str, int], tuple[str, int]], str] = {}
_held = threading.local()
_installed = False

_TRACK_MARKER = os.sep + "repro" + os.sep
_SKIP_MARKER = os.sep + "analysis" + os.sep


def _caller_site(depth: int = 2) -> tuple[str, int] | None:
    frame = sys._getframe(depth)
    filename = frame.f_code.co_filename
    if _TRACK_MARKER not in filename or _SKIP_MARKER in filename:
        return None
    return (filename, frame.f_lineno)


def _stack() -> list[tuple[str, int]]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = _held.stack = []
    return stack


def _note_acquire(site: tuple[str, int]) -> None:
    stack = _stack()
    if stack and stack[-1] != site:
        edge = (stack[-1], site)
        if edge not in _edges:
            with _guard:
                _edges.setdefault(edge, threading.current_thread().name)
    stack.append(site)


def _note_release(site: tuple[str, int]) -> None:
    stack = _stack()
    for index in range(len(stack) - 1, -1, -1):
        if stack[index] == site:
            del stack[index]
            return


class _WatchedLock:
    """Order-recording proxy around a real lock primitive."""

    __slots__ = ("_inner", "_site")

    def __init__(self, inner: Any, site: tuple[str, int]) -> None:
        self._inner = inner
        self._site = site

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            _note_acquire(self._site)
        return ok

    def release(self) -> None:
        self._inner.release()
        _note_release(self._site)

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        if probe is not None:
            return bool(probe())
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __enter__(self) -> "_WatchedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    # Condition's lock protocol.  These must exist on the wrapper:
    # Condition's own fallbacks assume a NON-reentrant lock (its
    # _is_owned probes with acquire(False), which succeeds on an RLock
    # the current thread holds), so hiding the inner RLock's protocol
    # would break every wait().  Routing them through the wrapper also
    # keeps the held-stack honest across wait()'s release/reacquire.
    def _is_owned(self) -> bool:
        probe = getattr(self._inner, "_is_owned", None)
        if probe is not None:
            return bool(probe())
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _release_save(self) -> Any:
        save = getattr(self._inner, "_release_save", None)
        state = save() if save is not None else self._inner.release()
        _note_release(self._site)
        return state

    def _acquire_restore(self, state: Any) -> None:
        restore = getattr(self._inner, "_acquire_restore", None)
        if restore is not None:
            restore(state)
        else:
            self._inner.acquire()
        _note_acquire(self._site)

    def __repr__(self) -> str:
        return f"<watched {self._inner!r} @ {self._site}>"


def _lock_factory() -> Any:
    site = _caller_site()
    inner = _REAL_LOCK()
    if site is None:
        return inner
    return _WatchedLock(inner, site)


def _rlock_factory() -> Any:
    site = _caller_site()
    inner = _REAL_RLOCK()
    if site is None:
        return inner
    return _WatchedLock(inner, site)


def _condition_factory(lock: Any = None) -> Any:
    if lock is None:
        site = _caller_site()
        if site is not None:
            # Condition's fallback _is_owned/_release_save protocol
            # drives the watched lock through acquire/release, so the
            # held-stack stays consistent across wait()
            lock = _WatchedLock(_REAL_RLOCK(), site)
    return _REAL_CONDITION(lock) if lock is not None \
        else _REAL_CONDITION()


def install() -> None:
    """Swap the threading lock factories for recording wrappers.

    Idempotent; meant to run before the code under test creates its
    locks (repro modules call ``threading.Lock()`` at runtime, so
    installing before channels/daemons are constructed is enough —
    already-created locks simply go unobserved).
    """
    global _installed
    if _installed:
        return
    _installed = True
    threading.Lock = _lock_factory          # type: ignore[misc]
    threading.RLock = _rlock_factory        # type: ignore[misc]
    threading.Condition = _condition_factory  # type: ignore[misc,assignment]
    out = os.environ.get("REPRO_LOCKWATCH_OUT")
    if out:
        atexit.register(dump, out)


def uninstall() -> None:
    global _installed
    if not _installed:
        return
    _installed = False
    threading.Lock = _REAL_LOCK             # type: ignore[misc]
    threading.RLock = _REAL_RLOCK           # type: ignore[misc]
    threading.Condition = _REAL_CONDITION   # type: ignore[misc]


def installed() -> bool:
    return _installed


def report() -> list[dict[str, Any]]:
    with _guard:
        snapshot = dict(_edges)
    return [
        {
            "outer": list(outer),
            "inner": list(inner),
            "thread": thread,
        }
        for (outer, inner), thread in sorted(snapshot.items())
    ]


def reset() -> None:
    with _guard:
        _edges.clear()


def dump(path: str | Path) -> None:
    Path(path).write_text(
        json.dumps({"version": 1, "edges": report()}, indent=2) + "\n"
    )


def _match_site(site: tuple[str, int],
                graph: LockGraph) -> str | None:
    filename, line = site
    normalized = filename.replace(os.sep, "/")
    for (rel, def_line), name in graph.sites.items():
        if def_line == line and normalized.endswith(rel):
            return name
    return None


def validate_report(data: dict[str, Any],
                    graph: LockGraph) -> tuple[list[Finding], dict[str, int]]:
    """Check observed runtime edges against the static lock graph.

    Returns (findings, stats).  A runtime edge whose reverse order is
    statically reachable — equivalently, one that makes the union of
    the two graphs cyclic — is a divergence finding.  Edges between
    locks the static pass never related are merely unmodeled: counted,
    not failed, since the static graph is an under-approximation by
    construction.
    """
    findings: list[Finding] = []
    stats = {"observed": 0, "matched": 0, "unmodeled": 0}
    runtime_pairs: set[tuple[str, str]] = set()
    for entry in data.get("edges", []):
        stats["observed"] += 1
        outer = _match_site(
            (str(entry["outer"][0]), int(entry["outer"][1])), graph
        )
        inner = _match_site(
            (str(entry["inner"][0]), int(entry["inner"][1])), graph
        )
        if outer is None or inner is None or outer == inner:
            continue
        stats["matched"] += 1
        runtime_pairs.add((outer, inner))
        if graph.reachable(inner, outer):
            key = f"lockwatch:order:{outer}->{inner}"
            lock = graph.defs[outer]
            findings.append(Finding(
                rule="lockwatch",
                path=lock.rel,
                line=lock.line,
                message=(
                    f"runtime acquisition order {outer} -> {inner} "
                    f"(thread {entry.get('thread', '?')}) contradicts "
                    "the static lock-order graph, which orders them "
                    "the other way — latent deadlock"
                ),
                key=key,
            ))
        elif (outer, inner) not in graph.edges:
            stats["unmodeled"] += 1
    # two threads observed taking the same pair in opposite orders is
    # a divergence even when the static pass related neither
    for outer, inner in sorted(runtime_pairs):
        if outer < inner and (inner, outer) in runtime_pairs:
            lock = graph.defs[outer]
            findings.append(Finding(
                rule="lockwatch",
                path=lock.rel,
                line=lock.line,
                message=(
                    f"runtime observed both {outer} -> {inner} and "
                    f"{inner} -> {outer} — opposite acquisition "
                    "orders on live threads, deadlock-prone"
                ),
                key=f"lockwatch:conflict:{outer}<->{inner}",
            ))
    return findings, stats
