"""Reader-thread blocking lint.

The wire layer's core discipline (PR 1, kept by convention since):
**nothing that waits may run on a channel reader thread**.  The reader
must stay available to deliver the very reply a blocking call would
wait for — `.result()` on a reader thread is a self-deadlock with a
timeout, and a `join`/`wait` stalls every pending request behind it.

Entry points traced:

* reader loop bodies: functions named ``_read_responses`` /
  ``_reader_loop`` (every channel's reader thread target);
* completion callbacks: every callable passed to
  ``add_done_callback(...)`` — lambdas, local defs, methods — because
  callbacks run on whichever thread resolves the request, which for
  live channels is the reader (this is how TaskGraph join callbacks
  are reached as well).

From each entry the rule walks strictly-resolved calls (widened into
subclass overrides, since readers dispatch through ``self``) and flags
blocking names: ``result``, ``wait``, ``wait_all``, ``join`` — plus
``recv``/``sendall``/``sleep`` inside callbacks, which must not do I/O
at all.  A reader loop's *own* ``recv`` is its job and is not flagged.

Bounded waits (e.g. ``proc.wait(timeout=2.0)`` on the connection-loss
path) still stall the reader and are flagged; the accepted ones are
baselined with their justification rather than silenced.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .core import Finding, FunctionInfo, Module, Project, rule

__all__ = ["READER_ENTRY_NAMES"]

READER_ENTRY_NAMES = frozenset({"_read_responses", "_reader_loop"})

_READER_BLOCKING = frozenset({"result", "wait", "wait_all", "join"})
_CALLBACK_BLOCKING = _READER_BLOCKING | frozenset(
    {"recv", "recv_into", "recv_frame", "sendall", "sleep"}
)
_MAX_DEPTH = 8


@dataclass
class _Entry:
    node: ast.AST
    module: Module
    class_name: str | None
    label: str
    kind: str       # "reader" | "callback"

    @property
    def blocking(self) -> frozenset[str]:
        return (_READER_BLOCKING if self.kind == "reader"
                else _CALLBACK_BLOCKING)


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


#: receivers whose .join() concatenates instead of blocking
_PATH_JOINERS = frozenset({"os.path", "path", "posixpath", "ntpath"})


def _is_string_join(call: ast.Call) -> bool:
    """True for ``"sep".join(...)`` / ``b"".join(...)`` /
    ``os.path.join(...)`` — name collisions with Thread.join."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "join"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Constant) and isinstance(
        receiver.value, (str, bytes)
    ):
        return True
    parts: list[str] = []
    node: ast.expr = receiver
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    dotted = ".".join(reversed(parts))
    return dotted in _PATH_JOINERS


def _nested_def(root: ast.AST, name: str) -> ast.AST | None:
    for node in ast.walk(root):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
    return None


def _callback_entries(info: FunctionInfo,
                      project: Project) -> list[_Entry]:
    entries: list[_Entry] = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) != "add_done_callback" or not node.args:
            continue
        # label stays line-free so baseline keys survive code motion
        target = node.args[0]
        label = f"{info.site} callback"
        if isinstance(target, ast.Lambda):
            entries.append(_Entry(
                target.body, info.module, info.class_name, label,
                "callback",
            ))
        elif isinstance(target, ast.Name):
            nested = _nested_def(info.node, target.id)
            if nested is not None:
                entries.append(_Entry(
                    nested, info.module, info.class_name, label,
                    "callback",
                ))
            else:
                local = info.module.functions.get(target.id)
                if local is not None:
                    entries.append(_Entry(
                        local.node, local.module, local.class_name,
                        label, "callback",
                    ))
        elif (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and info.class_name is not None):
            for method in project.method_on(
                info.class_name, target.attr, widen=True
            ):
                entries.append(_Entry(
                    method.node, method.module, method.class_name,
                    label, "callback",
                ))
    return entries


def _scan_entry(entry: _Entry, project: Project,
                findings: dict[str, Finding]) -> None:
    seen: set[str] = set()
    queue: list[tuple[ast.AST, Module, str | None, str, int]] = [
        (entry.node, entry.module, entry.class_name, entry.label, 0),
    ]
    while queue:
        node, module, class_name, where, depth = queue.pop()
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            name = _call_name(sub)
            if name is None:
                continue
            if (name in entry.blocking
                    and not _is_string_join(sub)
                    and not (entry.kind == "reader"
                             and name in ("recv", "recv_frame"))):
                key = (
                    f"reader-blocking:{entry.label}->"
                    f"{name}@{where}"
                )
                findings.setdefault(key, Finding(
                    rule="reader-blocking",
                    path=module.rel,
                    line=sub.lineno,
                    message=(
                        f"blocking call .{name}() reachable from "
                        f"{entry.kind} entry {entry.label} (via {where})"
                    ),
                    key=key,
                ))
            if depth >= _MAX_DEPTH:
                continue
            scope = FunctionInfo(
                node=node,  # type: ignore[arg-type]
                module=module, qualname=where.split("::")[-1],
                class_name=class_name,
            )
            for callee in project.resolve_call(sub, scope, widen=True):
                if callee.site in seen:
                    continue
                seen.add(callee.site)
                queue.append((
                    callee.node, callee.module, callee.class_name,
                    callee.site, depth + 1,
                ))


@rule(
    "reader-blocking",
    "no blocking call (.result/.wait/.join/...) may be reachable from "
    "a reader-thread entry point or a done-callback body",
)
def check_reader_blocking(project: Project) -> list[Finding]:
    entries: list[_Entry] = []
    for module in project.modules:
        for info in module.all_functions():
            if info.name in READER_ENTRY_NAMES:
                entries.append(_Entry(
                    info.node, module, info.class_name, info.site,
                    "reader",
                ))
            entries.extend(_callback_entries(info, project))
    findings: dict[str, Finding] = {}
    for entry in entries:
        _scan_entry(entry, project, findings)
    return list(findings.values())
