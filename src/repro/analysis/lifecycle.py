"""Resource-lifecycle lint.

Three allocation families, each of which leaks something the OS will
not clean up for us (or will clean up too late):

* ``SharedMemory(create=True, ...)`` / ``ShmArena(...)`` — a POSIX
  shm segment outlives the process unless somebody calls ``unlink``;
  the owning scope must reference an ``unlink``/``close`` teardown
  path.
* ``subprocess.Popen(...)`` — a spawned worker must be reachable from
  the stop→terminate→kill escalation: the owning scope must reference
  both ``terminate`` and ``kill``.
* ``_register_pending(...)`` — a request parked in a pending table
  must be retirable: the owning scope (class, its project bases, or
  the module) must carry an ``abandon``/``cancel``/``fail_all`` path,
  or a worker death strands callers on futures nobody will resolve.

"Owning scope" is the enclosing class (plus its project-resolvable
ancestors) when the allocation happens in a method, else the whole
module.  This is deliberately coarse — the rule asks "does a teardown
path *exist* near the allocation", not "is it provably always run";
the latter needs the runtime half (lockwatch / the test suite).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .core import Finding, FunctionInfo, Module, Project, rule

__all__: list[str] = []


@dataclass(frozen=True)
class _Family:
    label: str
    #: callable leaf names whose call is an allocation
    allocators: frozenset[str]
    #: names, any of which counts as the teardown path
    teardown: frozenset[str]
    #: require every teardown name (True) or any one of them (False)
    require_all: bool
    hint: str


_FAMILIES = (
    _Family(
        "shm",
        frozenset({"SharedMemory", "ShmArena"}),
        frozenset({"unlink", "close"}),
        False,
        "shared-memory segments must be unlinked or closed",
    ),
    _Family(
        "subprocess",
        frozenset({"Popen"}),
        frozenset({"terminate", "kill"}),
        True,
        "spawned workers need the stop->terminate->kill escalation",
    ),
    _Family(
        "pending-future",
        frozenset({"_register_pending"}),
        frozenset({"abandon", "cancel", "fail_all"}),
        False,
        "registered requests need a retire/abandon/cancel path",
    ),
)


def _call_leaf(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _is_allocation(call: ast.Call, family: _Family) -> bool:
    leaf = _call_leaf(call)
    if leaf not in family.allocators:
        return False
    if leaf == "SharedMemory":
        # attaching to an existing segment is not an allocation
        return any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        )
    return True


def _class_node(module: Module, name: str) -> ast.ClassDef | None:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _referenced_names(nodes: list[ast.AST]) -> set[str]:
    names: set[str] = set()
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                names.add(node.name)
    return names


def _owning_scope(info: FunctionInfo, project: Project) -> list[ast.AST]:
    """The AST roots searched for a teardown path."""
    if info.class_name is None:
        return [info.module.tree]
    roots: list[ast.AST] = []
    node = _class_node(info.module, info.class_name)
    if node is not None:
        roots.append(node)
    for base in project._ancestors(info.class_name):
        home = project.class_home.get(base)
        if home is None:
            continue
        base_node = _class_node(home, base)
        if base_node is not None:
            roots.append(base_node)
    return roots or [info.module.tree]


@rule(
    "resource-lifecycle",
    "every shm segment, spawned subprocess and registered pending "
    "future must have a reachable teardown path in its owning scope",
)
def check_lifecycle(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[str] = set()
    for module in project.modules:
        for info in module.all_functions():
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                for family in _FAMILIES:
                    if not _is_allocation(node, family):
                        continue
                    key = f"lifecycle:{family.label}:{info.site}"
                    if key in seen:
                        continue
                    scope = _owning_scope(info, project)
                    present = _referenced_names(scope)
                    ok = (
                        family.teardown <= present
                        if family.require_all
                        else bool(family.teardown & present)
                    )
                    if ok:
                        continue
                    seen.add(key)
                    owner = info.class_name or module.rel
                    findings.append(Finding(
                        rule="resource-lifecycle",
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            f"{family.label} allocation in {info.site}"
                            f" has no teardown path in {owner} "
                            f"(need {'all' if family.require_all else 'one'}"
                            f" of {sorted(family.teardown)}): "
                            f"{family.hint}"
                        ),
                        key=key,
                    ))
    return findings
