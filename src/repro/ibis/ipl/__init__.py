"""IPL: registry, ibis instances, uni-directional message ports."""

from .core import (
    DeadIbisError,
    Ibis,
    IbisIdentifier,
    IplError,
    ONE_TO_ONE_OBJECT,
    PortType,
    ReadMessage,
    ReceivePort,
    Registry,
    SendPort,
    WriteMessage,
)

__all__ = [
    "Registry",
    "Ibis",
    "IbisIdentifier",
    "PortType",
    "ONE_TO_ONE_OBJECT",
    "SendPort",
    "ReceivePort",
    "WriteMessage",
    "ReadMessage",
    "IplError",
    "DeadIbisError",
]
