"""IPL — the Ibis Portability Layer.

"IPL is a communication library specifically designed for use in a
Jungle.  IPL is based on the concept of uni-directional
connection-oriented message-based communication.  It provides support for
fault-tolerance and malleability ...  an application using IPL will get
notified if a machine crashes, allowing the application to react to and
recover from this fault." (paper Sec. 3)

Reproduced surface:

* :class:`Registry` — pool membership (join/leave/died upcalls),
  elections, signals; the malleability/fault-tolerance backbone;
* :class:`Ibis` — one instance per participating process, owning a
  SmartSockets endpoint;
* :class:`PortType` — capability sets, checked at connection setup;
* :class:`SendPort` / :class:`ReceivePort` — unidirectional,
  connection-oriented, message-based communication with explicit
  receive or upcalls;
* :class:`WriteMessage` / :class:`ReadMessage` — streaming message
  surfaces that account bytes (the IPL traffic of paper Fig. 11).

Everything runs on the jungle DES through SmartSockets virtual
connections, so firewalled/NAT'd workers transparently use
reverse/routed connectivity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ...jungle.des import Store
from ..smartsockets import NoRouteError, VirtualSocketFactory

__all__ = [
    "IbisIdentifier",
    "PortType",
    "Registry",
    "Ibis",
    "SendPort",
    "ReceivePort",
    "WriteMessage",
    "ReadMessage",
    "IplError",
    "DeadIbisError",
]

_ibis_counter = itertools.count(1)


class IplError(RuntimeError):
    """Generic IPL failure."""


class DeadIbisError(IplError):
    """Operation on/with an ibis that has been declared dead."""


@dataclass(frozen=True)
class IbisIdentifier:
    """Identity of one Ibis instance in a pool."""

    name: str
    pool: str
    location: str          # site name (the GUI map groups by this)
    host_name: str

    def __str__(self):
        return f"{self.name}@{self.location}"


class PortType:
    """A capability set; send and receive ports must match exactly."""

    CONNECTION_ONE_TO_ONE = "connection.onetoone"
    CONNECTION_ONE_TO_MANY = "connection.onetomany"
    CONNECTION_MANY_TO_ONE = "connection.manytoone"
    COMMUNICATION_RELIABLE = "communication.reliable"
    COMMUNICATION_FIFO = "communication.fifo"
    SERIALIZATION_DATA = "serialization.data"
    SERIALIZATION_OBJECT = "serialization.object"
    RECEIVE_EXPLICIT = "receive.explicit"
    RECEIVE_AUTO_UPCALLS = "receive.autoupcalls"

    def __init__(self, *capabilities):
        self.capabilities = frozenset(capabilities)

    def __eq__(self, other):
        return (
            isinstance(other, PortType)
            and self.capabilities == other.capabilities
        )

    def __hash__(self):
        return hash(self.capabilities)

    def __contains__(self, capability):
        return capability in self.capabilities

    def __repr__(self):
        return f"PortType({sorted(self.capabilities)})"


#: the port type AMUSE's daemon/proxies use
ONE_TO_ONE_OBJECT = PortType(
    PortType.CONNECTION_ONE_TO_ONE,
    PortType.COMMUNICATION_RELIABLE,
    PortType.COMMUNICATION_FIFO,
    PortType.SERIALIZATION_OBJECT,
    PortType.RECEIVE_EXPLICIT,
)


class Registry:
    """Central pool registry: membership, elections, signals.

    The real IPL registry is a server started alongside the application
    (IbisDeploy does it automatically); members discover each other and
    get joined/left/died upcalls, which is what AMUSE's daemon uses to
    track worker liveness.
    """

    def __init__(self, jungle, pool="default"):
        self.jungle = jungle
        self.pool = pool
        self.members = {}
        self.dead = set()
        self.elections = {}
        self._listeners = {}

    def join(self, ibis):
        if ibis.identifier in self.members:
            raise IplError(f"{ibis.identifier} joined twice")
        self.members[ibis.identifier] = ibis
        self._notify("joined", ibis.identifier)
        return sorted(self.members, key=str)

    def leave(self, ibis):
        self.members.pop(ibis.identifier, None)
        self._notify("left", ibis.identifier)

    def declare_dead(self, identifier):
        """Report a crashed member; everyone gets a 'died' upcall."""
        if identifier in self.dead:
            return
        self.dead.add(identifier)
        self.members.pop(identifier, None)
        self._notify("died", identifier)

    def is_dead(self, identifier):
        return identifier in self.dead

    def elect(self, name, candidate):
        """First candidate wins; later calls return the winner."""
        if name not in self.elections:
            self.elections[name] = candidate
        return self.elections[name]

    def get_election_result(self, name):
        return self.elections.get(name)

    def signal(self, signal_name, *identifiers):
        """Deliver a string signal to specific members."""
        for identifier in identifiers:
            member = self.members.get(identifier)
            if member is not None:
                member._deliver_signal(signal_name)

    def add_listener(self, listener_id, callback):
        """callback(event, identifier) for joined/left/died events."""
        self._listeners[listener_id] = callback

    def remove_listener(self, listener_id):
        self._listeners.pop(listener_id, None)

    def _notify(self, event, identifier):
        for callback in list(self._listeners.values()):
            callback(event, identifier)

    def size(self):
        return len(self.members)


class Ibis:
    """One IPL instance: identity + ports + SmartSockets endpoint."""

    def __init__(self, registry, host, name=None,
                 socket_factory=None):
        self.registry = registry
        self.host = host
        self.factory = socket_factory or VirtualSocketFactory(
            registry.jungle
        )
        self.identifier = IbisIdentifier(
            name or f"ibis-{next(_ibis_counter)}",
            registry.pool, host.site, host.name,
        )
        self._receive_ports = {}
        self.signals = []
        self._server = self.factory.create_server_socket(host)
        registry.join(self)

    # -- ports -----------------------------------------------------------------

    def create_send_port(self, port_type, name=None):
        return SendPort(self, port_type, name or "send")

    def create_receive_port(self, port_type, name, upcall=None):
        if name in self._receive_ports:
            raise IplError(f"receive port {name!r} exists")
        port = ReceivePort(self, port_type, name, upcall)
        self._receive_ports[name] = port
        return port

    def lookup_receive_port(self, name):
        try:
            return self._receive_ports[name]
        except KeyError:
            raise IplError(
                f"{self.identifier} has no receive port {name!r}"
            ) from None

    def _deliver_signal(self, signal_name):
        self.signals.append(signal_name)

    def end(self):
        self.registry.leave(self)

    def __repr__(self):
        return f"<Ibis {self.identifier}>"


class WriteMessage:
    """Streaming write surface; bytes are accounted and sent on finish."""

    def __init__(self, send_port):
        self.send_port = send_port
        self._payload = []
        self._n_bytes = 16          # frame header

    def write(self, obj, n_bytes=None):
        """Append a python object; *n_bytes* overrides the size
        estimate (for array payloads the caller knows exactly)."""
        self._payload.append(obj)
        if n_bytes is None:
            n_bytes = _estimate_bytes(obj)
        self._n_bytes += n_bytes
        return self

    write_object = write

    def write_array(self, array):
        return self.write(array, getattr(array, "nbytes", None))

    def finish(self):
        """DES generator: transmit and deliver; returns bytes sent."""
        port = self.send_port
        if port.connection is None:
            raise IplError("send port is not connected")
        receiver = port._remote_port
        if port.ibis.registry.is_dead(receiver.ibis.identifier):
            raise DeadIbisError(
                f"receiver {receiver.ibis.identifier} is dead"
            )
        yield from port.connection.send(self._n_bytes)
        message = ReadMessage(
            tuple(self._payload), self._n_bytes,
            port.ibis.identifier,
        )
        receiver._deliver(message)
        port.bytes_sent += self._n_bytes
        return self._n_bytes


class ReadMessage:
    """A received message: ordered payload + metadata."""

    def __init__(self, payload, n_bytes, origin):
        self._payload = list(payload)
        self.n_bytes = n_bytes
        self.origin = origin
        self._cursor = 0

    def read(self):
        if self._cursor >= len(self._payload):
            raise IplError("message exhausted")
        value = self._payload[self._cursor]
        self._cursor += 1
        return value

    read_object = read
    read_array = read

    def remaining(self):
        return len(self._payload) - self._cursor


class SendPort:
    """Unidirectional sender; connects to exactly one receive port
    (ONE_TO_ONE) through SmartSockets."""

    def __init__(self, ibis, port_type, name):
        self.ibis = ibis
        self.port_type = port_type
        self.name = name
        self.connection = None
        self._remote_port = None
        self.bytes_sent = 0

    def connect(self, remote_identifier, port_name):
        """DES generator: establish the connection."""
        registry = self.ibis.registry
        if registry.is_dead(remote_identifier):
            raise DeadIbisError(f"{remote_identifier} is dead")
        remote_ibis = registry.members.get(remote_identifier)
        if remote_ibis is None:
            raise IplError(f"{remote_identifier} not in pool")
        remote_port = remote_ibis.lookup_receive_port(port_name)
        if remote_port.port_type != self.port_type:
            raise IplError(
                f"port type mismatch connecting to {port_name!r}"
            )
        try:
            self.connection = yield from self.ibis.factory.connect(
                self.ibis.host, remote_ibis._server.address,
                protocol="ipl",
            )
        except NoRouteError as exc:
            raise IplError(str(exc)) from exc
        self._remote_port = remote_port
        remote_port.connected_from.append(self.ibis.identifier)
        return self.connection

    def new_message(self):
        return WriteMessage(self)

    def close(self):
        if self.connection is not None:
            self.connection.close()
            self.connection = None


class ReceivePort:
    """Unidirectional receiver: explicit receive or upcall delivery."""

    def __init__(self, ibis, port_type, name, upcall=None):
        self.ibis = ibis
        self.port_type = port_type
        self.name = name
        self.upcall = upcall
        self.connected_from = []
        self.bytes_received = 0
        self._store = Store(ibis.registry.jungle.env)

    def _deliver(self, message):
        self.bytes_received += message.n_bytes
        if self.upcall is not None:
            # upcall mode: schedule the callback on the DES
            env = self.ibis.registry.jungle.env
            event = env.event()
            event.add_callback(lambda _ev: self.upcall(self, message))
            event.succeed(message)
        else:
            self._store.put(message)

    def receive(self):
        """DES event yielding the next :class:`ReadMessage`."""
        if self.upcall is not None:
            raise IplError("explicit receive on an upcall port")
        return self._store.get()

    def poll(self):
        return len(self._store) > 0


def _estimate_bytes(obj):
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, (bytes, bytearray, str)):
        return len(obj)
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, (list, tuple)):
        return 16 + sum(_estimate_bytes(v) for v in obj)
    if isinstance(obj, dict):
        return 32 + sum(
            _estimate_bytes(k) + _estimate_bytes(v)
            for k, v in obj.items()
        )
    return 64
