"""SmartSockets: hub overlay + direct/reverse/routed virtual sockets."""

from .core import (
    Hub,
    HubOverlay,
    NoRouteError,
    VirtualAddress,
    VirtualConnection,
    VirtualServerSocket,
    VirtualSocketFactory,
)

__all__ = [
    "Hub",
    "HubOverlay",
    "NoRouteError",
    "VirtualAddress",
    "VirtualConnection",
    "VirtualServerSocket",
    "VirtualSocketFactory",
]
