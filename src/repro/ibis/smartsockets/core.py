"""SmartSockets — robust connectivity through an overlay of hubs.

"SmartSockets provides a socket-like interface, while automatically
dealing with any communication problems.  For this, SmartSockets uses an
overlay network, consisting of a number of hubs.  These hubs typically
run on machines with more connectivity, such as the front-end machine of
a cluster." (paper Sec. 3)

Three connection strategies are implemented, tried in order:

1. **direct** — a plain connection; works when the target accepts
   inbound traffic from the source.
2. **reverse** — "firewalls in general only block traffic in one
   direction ...  the overlay network can be used to send a 'reverse
   connection request' to the target machine.  This machine can then
   create an outgoing connection, thereby circumventing the firewall."
   Needs a hub route to the target and the target being able to reach
   the source.
3. **routed** — all traffic relayed through the hub overlay (the
   fallback when neither end can reach the other; e.g. NAT'd and
   isolated compute nodes on both sides).

Hub-to-hub links that could only be set up in one direction are tagged
``one-way`` (the arrows in paper Fig. 10); links that required the
reverse trick are tagged ``tunnel`` (the red ssh-tunnel lines).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

__all__ = [
    "VirtualAddress",
    "Hub",
    "HubOverlay",
    "VirtualSocketFactory",
    "VirtualServerSocket",
    "VirtualConnection",
    "NoRouteError",
]

#: handshake cost per connection-setup message
SETUP_MESSAGE_BYTES = 256


class NoRouteError(ConnectionError):
    """No strategy could connect the two endpoints."""


@dataclass(frozen=True)
class VirtualAddress:
    """SmartSockets virtual address: host name + virtual port."""

    host: str
    port: int

    def __str__(self):
        return f"{self.host}:{self.port}"


class Hub:
    """An overlay hub on a (well-connected) host."""

    def __init__(self, host):
        self.host = host
        self.name = f"hub@{host.name}"

    def __repr__(self):
        return f"<Hub {self.name}>"


class HubOverlay:
    """The hub network: membership, gossip, routing.

    The overlay graph is undirected for routing (a one-way TCP setup
    still yields a bidirectional channel once established — exactly why
    the reverse trick works) but every edge remembers how it was
    created: ``direct``, ``one-way`` or ``tunnel``.
    """

    def __init__(self, jungle):
        self.jungle = jungle
        self.hubs = {}
        self.graph = nx.Graph()

    def add_hub(self, host):
        """Start a hub on *host* and interconnect it with all existing
        hubs (IbisDeploy starts one hub per resource used)."""
        if host.name in self.hubs:
            return self.hubs[host.name]
        hub = Hub(host)
        self.hubs[host.name] = hub
        self.graph.add_node(host.name)
        net = self.jungle.network
        for other_name, other in self.hubs.items():
            if other_name == host.name:
                continue
            forward = net.can_accept(host, other.host)
            backward = net.can_accept(other.host, host)
            if forward and backward:
                kind = "direct"
            elif forward or backward:
                # connection possible in one direction only: the side
                # that can originate sets it up (an ssh-tunnel-like
                # reverse link in the GUI)
                kind = "one-way"
            else:
                continue
            self.graph.add_edge(
                host.name, other_name, kind=kind,
                latency=net.latency(host.site, other.host.site),
            )
        return hub

    def hub_for(self, host):
        """The hub a host talks to: on-host hub, same-site hub, or any
        hub the host can originate a connection to."""
        if host.name in self.hubs:
            return self.hubs[host.name]
        for hub in self.hubs.values():
            if hub.host.site == host.site:
                return hub
        net = self.jungle.network
        for hub in self.hubs.values():
            if net.can_accept(host, hub.host):
                return hub
        return None

    def hub_route(self, src_host, dst_host):
        """Hub names forming a relay path src's hub -> dst's hub."""
        a = self.hub_for(src_host)
        b = self.hub_for(dst_host)
        if a is None or b is None:
            return None
        if a is b:
            return [a.host.name]
        try:
            return nx.shortest_path(
                self.graph, a.host.name, b.host.name, weight="latency"
            )
        except nx.NetworkXNoPath:
            return None

    def edges(self):
        """[(hub_a, hub_b, kind)] — the Fig. 10 overlay display data."""
        return sorted(
            (u, v, data["kind"])
            for u, v, data in self.graph.edges(data=True)
        )


class VirtualConnection:
    """An established SmartSockets connection.

    ``route`` is the list of host objects traffic traverses (endpoints
    included); ``strategy`` records how the setup succeeded.
    """

    def __init__(self, factory, src_host, dst_host, route, strategy,
                 setup_time_s, protocol="ipl"):
        self.factory = factory
        self.src_host = src_host
        self.dst_host = dst_host
        self.route = route
        self.strategy = strategy
        self.setup_time_s = setup_time_s
        self.protocol = protocol
        self.bytes_sent = 0
        self.closed = False

    @property
    def hops(self):
        return len(self.route) - 1

    def transfer_time(self, n_bytes):
        """Seconds to push *n_bytes* along the (possibly relayed) route."""
        net = self.factory.overlay.jungle.network
        return sum(
            net.transfer_time(a.site, b.site, n_bytes)
            for a, b in zip(self.route, self.route[1:], strict=False)
        )

    def send(self, n_bytes):
        """DES event generator: move *n_bytes* through the route."""
        env = self.factory.overlay.jungle.env
        net = self.factory.overlay.jungle.network
        self.bytes_sent += n_bytes
        for a, b in zip(self.route, self.route[1:], strict=False):
            net.traffic.record(a.site, b.site, n_bytes, self.protocol)
        yield env.timeout(self.transfer_time(n_bytes))
        return n_bytes

    def close(self):
        self.closed = True

    def __repr__(self):
        hops = " -> ".join(h.name for h in self.route)
        return f"<VirtualConnection {self.strategy}: {hops}>"


class VirtualServerSocket:
    """A listening endpoint registered with the factory."""

    def __init__(self, factory, address, host):
        self.factory = factory
        self.address = address
        self.host = host
        self.accepted = []

    def __repr__(self):
        return f"<VirtualServerSocket {self.address}>"


class VirtualSocketFactory:
    """Per-jungle SmartSockets endpoint manager.

    One factory serves all hosts (the real library has one per JVM; the
    aggregation is an implementation convenience — state is still keyed
    by host).
    """

    def __init__(self, jungle, overlay=None):
        self.jungle = jungle
        self.overlay = overlay or HubOverlay(jungle)
        self._servers = {}
        self._ports = {}
        #: counters for the connection-strategy ablation bench
        self.strategy_counts = {"direct": 0, "reverse": 0, "routed": 0}

    # -- server side -------------------------------------------------------

    def create_server_socket(self, host, port=0):
        if port == 0:
            port = self._ports.get(host.name, 5000)
            self._ports[host.name] = port + 1
        address = VirtualAddress(host.name, port)
        server = VirtualServerSocket(self, address, host)
        self._servers[address] = server
        return server

    def lookup(self, address):
        try:
            return self._servers[address]
        except KeyError:
            raise NoRouteError(
                f"no server socket at {address}"
            ) from None

    # -- strategy planning ----------------------------------------------------

    def plan(self, src_host, address, protocol="ipl"):
        """Choose a strategy; returns an un-timed VirtualConnection.

        Raises :class:`NoRouteError` when every strategy fails — e.g.
        two ISOLATED endpoints with no hub on either site.
        """
        server = self.lookup(address)
        dst_host = server.host
        net = self.jungle.network
        base_latency = net.latency(src_host.site, dst_host.site)

        if net.can_accept(src_host, dst_host):
            return VirtualConnection(
                self, src_host, dst_host, [src_host, dst_host],
                "direct", base_latency * 1.5, protocol,
            )

        hub_route = self.overlay.hub_route(src_host, dst_host)

        # reverse: ask dst (via the hubs) to connect back to us
        if (
            hub_route is not None
            and net.can_accept(dst_host, src_host)
        ):
            # setup: request travels src -> hubs -> dst, then dst dials
            # back directly; payload then flows on the direct link
            setup = self._route_latency(
                src_host, dst_host, hub_route
            ) + base_latency
            return VirtualConnection(
                self, src_host, dst_host, [src_host, dst_host],
                "reverse", setup, protocol,
            )

        # routed: relay all traffic through the hub overlay
        if hub_route is not None:
            relay_hosts = [
                self.overlay.hubs[name].host for name in hub_route
            ]
            route = [src_host] + relay_hosts + [dst_host]
            # drop duplicate endpoints (hub on the same machine)
            route = [
                h for i, h in enumerate(route)
                if i == 0 or h.name != route[i - 1].name
            ]
            if self._route_usable(route):
                setup = 2.0 * self._route_latency(
                    src_host, dst_host, hub_route
                )
                return VirtualConnection(
                    self, src_host, dst_host, route, "routed", setup,
                    protocol,
                )

        raise NoRouteError(
            f"cannot connect {src_host.name} -> {address} "
            "(no direct path, no reverse path, no hub route)"
        )

    def _route_latency(self, src_host, dst_host, hub_route):
        net = self.jungle.network
        hubs = [self.overlay.hubs[name].host for name in hub_route]
        chain = [src_host] + hubs + [dst_host]
        return sum(
            net.latency(a.site, b.site)
            for a, b in zip(chain, chain[1:], strict=False)
        )

    def _route_usable(self, route):
        """Every adjacent pair must be connectable in some direction."""
        net = self.jungle.network
        return all(
            net.can_accept(a, b) or net.can_accept(b, a)
            for a, b in zip(route, route[1:], strict=False)
        )

    # -- client side ---------------------------------------------------------------

    def connect(self, src_host, address, protocol="ipl"):
        """DES generator: plan + charge setup time, return connection.

        Use as ``conn = yield from factory.connect(host, addr)`` inside
        a process, or :meth:`connect_untimed` outside the DES.
        """
        conn = self.plan(src_host, address, protocol)
        self.strategy_counts[conn.strategy] += 1
        net = self.jungle.network
        # handshake messages also show up in the traffic view
        net.traffic.record(
            src_host.site, conn.dst_host.site, SETUP_MESSAGE_BYTES,
            protocol,
        )
        yield self.jungle.env.timeout(conn.setup_time_s)
        server = self.lookup(address)
        server.accepted.append(conn)
        return conn

    def connect_untimed(self, src_host, address, protocol="ipl"):
        conn = self.plan(src_host, address, protocol)
        self.strategy_counts[conn.strategy] += 1
        server = self.lookup(address)
        server.accepted.append(conn)
        return conn
