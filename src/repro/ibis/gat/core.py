"""PyGAT — the JavaGAT analog: one API, many middlewares.

"JavaGAT is a generic and simple interface to middleware.  Instead of
writing software for one specific middleware ... applications can use the
generic JavaGAT interface.  Using familiar concepts such as Files and
Jobs, a programmer is able to start applications in a Jungle.  JavaGAT
provides this functionality using Adapters ... JavaGAT will automatically
select the appropriate adapter for each resource." (paper Sec. 3)

Reproduced surface:

* :class:`JobDescription` — executable-ish payload (a DES generator),
  node count, files to stage in/out, GPU requirement;
* :class:`Job` — state machine INITIAL → PRE_STAGING → SCHEDULED →
  RUNNING → POST_STAGING → STOPPED (or SUBMISSION_ERROR), with state
  listeners and cancellation;
* adaptors for ``local``, ``ssh``, ``pbs``, ``sge``, ``globus`` and
  ``zorilla`` middleware, each charging its characteristic submission
  overhead and queue behaviour;
* :class:`GAT` — the engine: automatic adaptor selection with ordered
  fallback (collecting per-adaptor errors like JavaGAT's nested
  exception does), plus file copies over the modeled network.
"""

from __future__ import annotations

import itertools

from ...jungle.des import Interrupt

__all__ = [
    "JobDescription",
    "Job",
    "JobState",
    "Adaptor",
    "GAT",
    "GATError",
    "AdaptorNotApplicableError",
]

_job_ids = itertools.count(1)


class GATError(RuntimeError):
    """Submission failed in every applicable adaptor."""

    def __init__(self, message, causes=()):
        super().__init__(message)
        self.causes = list(causes)


class AdaptorNotApplicableError(RuntimeError):
    """The adaptor does not speak this site's middleware."""


class JobState:
    INITIAL = "INITIAL"
    PRE_STAGING = "PRE_STAGING"
    SCHEDULED = "SCHEDULED"
    RUNNING = "RUNNING"
    POST_STAGING = "POST_STAGING"
    STOPPED = "STOPPED"
    SUBMISSION_ERROR = "SUBMISSION_ERROR"

    ORDER = (
        INITIAL, PRE_STAGING, SCHEDULED, RUNNING, POST_STAGING, STOPPED,
    )


class JobDescription:
    """What to run and what it needs.

    *body* is ``None`` (a plain sleep of ``duration_s`` — a batch job)
    or a callable ``body(env, hosts) -> generator`` — the modeled
    executable (the distributed-AMUSE layer passes the worker/proxy
    bootstrap here).
    """

    def __init__(self, name, node_count=1, needs_gpu=False,
                 stage_in=None, stage_out=None, duration_s=None,
                 body=None, role=None):
        self.name = name
        self.node_count = int(node_count)
        self.needs_gpu = bool(needs_gpu)
        self.stage_in = dict(stage_in or {})     # filename -> bytes
        self.stage_out = dict(stage_out or {})
        self.duration_s = duration_s
        self.body = body
        self.role = role

    def __repr__(self):
        return (
            f"<JobDescription {self.name} nodes={self.node_count}"
            f"{' gpu' if self.needs_gpu else ''}>"
        )


class Job:
    """A submitted job: state machine + DES process handle."""

    def __init__(self, description, site, adaptor_name, env):
        self.id = next(_job_ids)
        self.description = description
        self.site = site
        self.adaptor_name = adaptor_name
        self.env = env
        self.state = JobState.INITIAL
        self.hosts = []
        self.error = None
        self.submitted_at = env.now
        self.started_at = None
        self.stopped_at = None
        self.process = None
        self._listeners = []
        self._state_events = {}

    def add_state_listener(self, callback):
        """callback(job, new_state) on every transition."""
        self._listeners.append(callback)

    def when_state(self, state):
        """DES event firing when the job reaches *state*."""
        if self.state == state or (
            state in JobState.ORDER
            and self.state in JobState.ORDER
            and JobState.ORDER.index(self.state)
            >= JobState.ORDER.index(state)
        ):
            done = self.env.event()
            done.succeed(self)
            return done
        return self._state_events.setdefault(state, self.env.event())

    def _set_state(self, state):
        self.state = state
        if state == JobState.RUNNING:
            self.started_at = self.env.now
        if state in (JobState.STOPPED, JobState.SUBMISSION_ERROR):
            self.stopped_at = self.env.now
        for callback in list(self._listeners):
            callback(self, state)
        event = self._state_events.pop(state, None)
        if event is not None and not event.triggered:
            event.succeed(self)

    def cancel(self):
        """Kill a running job (the scheduler ending a reservation)."""
        if self.process is not None and not self.process.triggered:
            self.process.interrupt("cancelled")

    def __repr__(self):
        return (
            f"<Job #{self.id} {self.description.name} on "
            f"{self.site.name} [{self.state}]>"
        )


class Adaptor:
    """Base adaptor: stage-in → submit → queue → run → stage-out."""

    middleware_kind = None

    def applicable(self, site):
        if self.middleware_kind not in site.middlewares:
            raise AdaptorNotApplicableError(
                f"{type(self).__name__}: site {site.name} has no "
                f"{self.middleware_kind} middleware"
            )
        return site.middleware(self.middleware_kind)

    def submit(self, gat, site, description):
        """Create the Job and spawn its lifecycle process."""
        middleware = self.applicable(site)
        job = Job(description, site, type(self).__name__, gat.env)
        job.process = gat.env.process(
            self._lifecycle(gat, site, middleware, job)
        )
        return job

    # -- lifecycle ------------------------------------------------------------

    def _pick_hosts(self, site, description):
        pool = [
            h for h in site.compute_hosts
            if not description.needs_gpu or h.has_gpu
        ]
        if len(pool) < description.node_count:
            raise GATError(
                f"site {site.name} cannot satisfy {description!r}: "
                f"{len(pool)} suitable nodes"
            )
        return pool[: description.node_count]

    def _lifecycle(self, gat, site, middleware, job):
        env = gat.env
        description = job.description
        held_slots = 0
        try:
            # stage in
            job._set_state(JobState.PRE_STAGING)
            for filename, n_bytes in description.stage_in.items():
                yield from gat.copy_file(
                    gat.client_host, site.frontend, n_bytes, filename
                )
            # submit + queue (node set acquired atomically, as a batch
            # scheduler would)
            job._set_state(JobState.SCHEDULED)
            yield env.timeout(middleware.submit_overhead)
            yield middleware.slots.request_many(description.node_count)
            held_slots = description.node_count
            if middleware.queue_delay:
                yield env.timeout(middleware.queue_delay)
            job.hosts = self._pick_hosts(site, description)
            # run
            job._set_state(JobState.RUNNING)
            if description.body is not None:
                yield env.process(description.body(env, job.hosts))
            else:
                yield env.timeout(description.duration_s or 0.0)
            # stage out
            job._set_state(JobState.POST_STAGING)
            for filename, n_bytes in description.stage_out.items():
                yield from gat.copy_file(
                    site.frontend, gat.client_host, n_bytes, filename
                )
            job._set_state(JobState.STOPPED)
        except Interrupt as interrupt:
            job.error = interrupt
            job._set_state(JobState.STOPPED)
        except Exception as exc:  # noqa: BLE001 - recorded on the job
            job.error = exc
            job._set_state(JobState.SUBMISSION_ERROR)
        finally:
            if held_slots:
                middleware.slots.release(held_slots)


class LocalAdaptor(Adaptor):
    middleware_kind = "local"


class SshAdaptor(Adaptor):
    middleware_kind = "ssh"


class PbsAdaptor(Adaptor):
    middleware_kind = "pbs"


class SgeAdaptor(Adaptor):
    middleware_kind = "sge"


class GlobusAdaptor(Adaptor):
    middleware_kind = "globus"


class ZorillaAdaptor(Adaptor):
    """Submits through a Zorilla P2P overlay when the site runs one."""

    middleware_kind = "zorilla"


DEFAULT_ADAPTORS = (
    LocalAdaptor(), SshAdaptor(), SgeAdaptor(), PbsAdaptor(),
    GlobusAdaptor(), ZorillaAdaptor(),
)


class GAT:
    """The adaptor engine + file operations."""

    def __init__(self, jungle, client_host, adaptors=DEFAULT_ADAPTORS):
        self.jungle = jungle
        self.env = jungle.env
        self.client_host = client_host
        self.adaptors = list(adaptors)
        self.jobs = []
        #: which adaptor ran each job — JavaGAT-style introspection
        self.adaptor_log = []

    def submit_job(self, description, site, preferred=None):
        """Automatic adaptor selection with fallback.

        Tries *preferred* first (if given), then every registered
        adaptor in order; raises :class:`GATError` carrying all
        per-adaptor causes when nothing applies.
        """
        causes = []
        candidates = list(self.adaptors)
        if preferred is not None:
            candidates.sort(
                key=lambda a: a.middleware_kind != preferred
            )
        for adaptor in candidates:
            try:
                job = adaptor.submit(self, site, description)
            except AdaptorNotApplicableError as exc:
                causes.append(exc)
                continue
            self.jobs.append(job)
            self.adaptor_log.append(
                (description.name, site.name, adaptor.middleware_kind)
            )
            return job
        raise GATError(
            f"no adaptor could submit to {site.name}", causes
        )

    def copy_file(self, src_host, dst_host, n_bytes, name=""):
        """DES generator: move a file between hosts (stage in/out)."""
        yield self.jungle.network.transfer(
            self.env, src_host, dst_host, n_bytes, protocol="file"
        )
        return n_bytes

    def job_table(self):
        """The IbisDeploy GUI's job list (paper Fig. 10, bottom)."""
        return [
            {
                "id": job.id,
                "name": job.description.name,
                "site": job.site.name,
                "adaptor": job.adaptor_name,
                "nodes": job.description.node_count,
                "state": job.state,
                "role": job.description.role,
            }
            for job in self.jobs
        ]
