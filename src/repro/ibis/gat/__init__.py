"""PyGAT: uniform Jobs/Files API over per-middleware adaptors."""

from .core import (
    Adaptor,
    AdaptorNotApplicableError,
    DEFAULT_ADAPTORS,
    GAT,
    GATError,
    GlobusAdaptor,
    Job,
    JobDescription,
    JobState,
    LocalAdaptor,
    PbsAdaptor,
    SgeAdaptor,
    SshAdaptor,
    ZorillaAdaptor,
)

__all__ = [
    "GAT",
    "GATError",
    "Adaptor",
    "AdaptorNotApplicableError",
    "DEFAULT_ADAPTORS",
    "Job",
    "JobDescription",
    "JobState",
    "LocalAdaptor",
    "SshAdaptor",
    "PbsAdaptor",
    "SgeAdaptor",
    "GlobusAdaptor",
    "ZorillaAdaptor",
]
