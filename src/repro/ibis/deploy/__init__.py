"""IbisDeploy: descriptions, deployment orchestration, monitoring."""

from .core import Deploy, DeployJob
from .descriptions import (
    ApplicationDescription,
    ClusterDescription,
    GridDescription,
    parse_grid_description,
)
from .monitor import Monitor

__all__ = [
    "Deploy",
    "DeployJob",
    "Monitor",
    "ApplicationDescription",
    "ClusterDescription",
    "GridDescription",
    "parse_grid_description",
]
