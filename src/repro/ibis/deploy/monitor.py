"""Monitoring — the data behind the IbisDeploy GUI (paper Figs. 10/11).

"it should be possible to do both performance and correctness monitoring
of the system.  The bigger the system, the harder it is to oversee."
(paper Sec. 4.3, third requirement)

:class:`Monitor` assembles, from live substrate state, the four GUI
views the paper shows:

* the **resource map** (site name, kind, location, #hosts) — Fig. 10
  top-left;
* the **job table** (job, resource, middleware adaptor, state) —
  Fig. 10 bottom;
* the **overlay network** with link kinds (direct / one-way / tunnel)
  — Fig. 10 top-right;
* the **traffic/load view**: per-site-pair bytes split by protocol
  (IPL vs MPI) and per-host CPU/GPU load — Fig. 11 ("IPL traffic is
  shown in blue, while MPI traffic is shown in orange.  The bars at
  each location denote machine load ...  Note that the nodes running
  models that support GPUs have a very low [CPU] load.")
"""

from __future__ import annotations

__all__ = ["Monitor"]


class Monitor:
    """Snapshot provider over a :class:`~repro.ibis.deploy.core.Deploy`."""

    def __init__(self, deploy):
        self.deploy = deploy

    # -- GUI panes -----------------------------------------------------------

    def resource_map(self):
        jungle = self.deploy.jungle
        return [
            {
                "site": site.name,
                "kind": site.kind,
                "location": site.location,
                "hosts": len(site.hosts),
                "middleware": sorted(site.middlewares),
                "hub": site.name in {
                    self.deploy.factory.overlay.hubs[h].host.site
                    for h in self.deploy.factory.overlay.hubs
                },
            }
            for site in jungle.sites.values()
        ]

    def job_table(self):
        return self.deploy.job_table()

    def overlay(self):
        return self.deploy.overlay_edges()

    def traffic_matrix(self, protocol=None):
        return self.deploy.jungle.network.traffic.matrix(protocol)

    def host_loads(self, elapsed_s=None):
        """host -> {'cpu': load, 'gpu': load} fractions."""
        jungle = self.deploy.jungle
        traffic = jungle.network.traffic
        elapsed = elapsed_s or max(jungle.env.now, 1e-9)
        out = {}
        for host in jungle.all_hosts():
            cpu = traffic.load(host.name, elapsed, "cpu")
            gpu = traffic.load(host.name, elapsed, "gpu")
            if cpu or gpu:
                out[host.name] = {"cpu": cpu, "gpu": gpu}
        return out

    def snapshot(self):
        return {
            "time_s": self.deploy.jungle.env.now,
            "resources": self.resource_map(),
            "jobs": self.job_table(),
            "overlay": self.overlay(),
            "traffic_ipl": self.traffic_matrix("ipl"),
            "traffic_mpi": self.traffic_matrix("mpi"),
            "loads": self.host_loads(),
            "strategies": dict(self.deploy.factory.strategy_counts),
        }
