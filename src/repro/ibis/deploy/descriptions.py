"""IbisDeploy description files: grids, clusters, applications.

"IbisDeploy can be configured using a small number of simple
configuration files" (paper Sec. 3) — the step-2 requirement of the
distributed-AMUSE recipe (Sec. 5): "Specify some basic information such
as hostname and type of middleware for each resource used in a
configuration file."

The INI dialect mirrors IbisDeploy's ``.grid`` files: a ``[defaults]``
section plus one section per cluster::

    [defaults]
    user = niels

    [VU]
    middleware = ssh
    frontend   = desktop
    nodes      = 4
    gpu        = GeForce 9600GT
"""

from __future__ import annotations

import configparser
import io

__all__ = [
    "ClusterDescription",
    "GridDescription",
    "ApplicationDescription",
    "parse_grid_description",
]


class ClusterDescription:
    """One resource entry of a grid file."""

    def __init__(self, name, middleware="ssh", nodes=1, cores=8,
                 frontend=None, user=None, gpu=None, location=None):
        self.name = name
        self.middleware = middleware
        self.nodes = int(nodes)
        self.cores = int(cores)
        self.frontend = frontend or f"{name}-frontend"
        self.user = user
        self.gpu = gpu
        self.location = location

    def __repr__(self):
        return (
            f"<ClusterDescription {self.name} {self.middleware} "
            f"nodes={self.nodes}>"
        )


class GridDescription:
    """A set of cluster descriptions (one ``.grid`` file)."""

    def __init__(self, clusters=(), defaults=None):
        self.clusters = {c.name: c for c in clusters}
        self.defaults = dict(defaults or {})

    def add(self, cluster):
        self.clusters[cluster.name] = cluster

    def __getitem__(self, name):
        return self.clusters[name]

    def __iter__(self):
        return iter(self.clusters.values())

    def __len__(self):
        return len(self.clusters)

    def names(self):
        return sorted(self.clusters)


class ApplicationDescription:
    """What to start on each resource (IbisDeploy ``.applications``).

    ``files`` maps file names to sizes in bytes — these are pre-staged
    to every resource the application runs on.  Our AMUSE never stages
    the model binaries themselves (paper Sec. 5: "Our system assumes
    that AMUSE is already installed on the target resource" because the
    install is huge) — only scripts/config, which is why the default
    footprint is small.
    """

    def __init__(self, name, files=None, needs_gpu=False,
                 amuse_preinstalled=True):
        self.name = name
        self.files = dict(files or {"amuse-worker-config": 4096})
        self.needs_gpu = bool(needs_gpu)
        self.amuse_preinstalled = amuse_preinstalled

    def __repr__(self):
        return f"<ApplicationDescription {self.name}>"


def parse_grid_description(text):
    """Parse a ``.grid`` INI document into a :class:`GridDescription`."""
    parser = configparser.ConfigParser()
    parser.read_file(io.StringIO(text))
    defaults = {}
    if parser.has_section("defaults"):
        defaults = dict(parser.items("defaults"))
    clusters = []
    for section in parser.sections():
        if section == "defaults":
            continue
        get = lambda key, fallback=None, section=section: \
            parser.get(section, key, fallback=fallback)  # noqa: E731
        clusters.append(
            ClusterDescription(
                section,
                middleware=get(
                    "middleware", defaults.get("middleware", "ssh")
                ),
                nodes=int(get("nodes", defaults.get("nodes", 1))),
                cores=int(get("cores", defaults.get("cores", 8))),
                frontend=get("frontend"),
                user=get("user", defaults.get("user")),
                gpu=get("gpu"),
                location=get("location"),
            )
        )
    return GridDescription(clusters, defaults)
