"""IbisDeploy — one-call deployment of jungle applications.

"Ibis also provides IbisDeploy: a library for deploying application in
the Jungle, targeted specifically at end-users ...  To make the usage of
SmartSockets as easy as possible, IbisDeploy automatically starts the
hubs required by SmartSockets on each resource used." (paper Sec. 3/5)

:class:`Deploy` drives the whole startup sequence on the DES:

1. start the root hub + IPL registry server next to the client;
2. for every resource used, start a SmartSockets hub on its front-end;
3. submit worker jobs through PyGAT (files pre-staged, middleware
   selected automatically), each worker joining the IPL pool when it
   starts;
4. expose a :class:`Monitor` with the data behind the IbisDeploy GUI:
   the resource map, the job table, the hub overlay (with link kinds)
   and the live traffic/load view (paper Figs. 10/11).
"""

from __future__ import annotations

from ...jungle.des import all_of
from ..gat import GAT, JobDescription, JobState
from ..ipl import Ibis, Registry
from ..smartsockets import VirtualSocketFactory
from .monitor import Monitor

__all__ = ["Deploy", "DeployJob"]


class DeployJob:
    """A deployed worker: the GAT job + its IPL presence."""

    def __init__(self, gat_job, role):
        self.gat_job = gat_job
        self.role = role
        self.ibis = None          # set when the worker joins the pool

    @property
    def state(self):
        return self.gat_job.state

    @property
    def hosts(self):
        return self.gat_job.hosts

    def __repr__(self):
        return f"<DeployJob {self.role} [{self.state}]>"


class Deploy:
    """End-user deployment orchestrator."""

    def __init__(self, jungle, client_host, pool="amuse"):
        self.jungle = jungle
        self.client_host = client_host
        self.gat = GAT(jungle, client_host)
        self.factory = VirtualSocketFactory(jungle)
        self.registry = Registry(jungle, pool=pool)
        self.jobs = []
        self._initialized_sites = set()
        self.monitor = Monitor(self)
        self.client_ibis = None

    # -- initialization ----------------------------------------------------

    def initialize(self):
        """Start the root hub + registry endpoint on the client."""
        self.factory.overlay.add_hub(self.client_host)
        self.client_ibis = Ibis(
            self.registry, self.client_host, "deploy-client",
            self.factory,
        )
        return self.client_ibis

    def _ensure_site_initialized(self, site):
        """Start the SmartSockets hub on a resource's front-end (done
        automatically per resource, as IbisDeploy does)."""
        if site.name in self._initialized_sites:
            return
        self.factory.overlay.add_hub(site.frontend)
        self._initialized_sites.add(site.name)

    # -- job submission --------------------------------------------------------

    def submit(self, application, site, role, node_count=1,
               worker_body=None, needs_gpu=None):
        """Deploy *application* on *site*; returns a :class:`DeployJob`.

        The worker body (a DES generator factory) runs once the GAT job
        reaches RUNNING; by default it creates the worker's Ibis and
        joins the pool, then idles until cancelled — the distributed
        AMUSE layer passes proxies with real behaviour here.
        """
        if self.client_ibis is None:
            self.initialize()
        self._ensure_site_initialized(site)
        deploy_job = DeployJob(None, role)
        gpu = application.needs_gpu if needs_gpu is None else needs_gpu

        def default_body(env, hosts):
            deploy_job.ibis = Ibis(
                self.registry, hosts[0], f"{role}", self.factory
            )
            # idle until the job is cancelled (reservation ends)
            try:
                yield env.timeout(float("inf"))
            finally:
                pass

        body = worker_body or default_body
        description = JobDescription(
            name=f"{application.name}-{role}",
            node_count=node_count,
            needs_gpu=gpu,
            stage_in=dict(application.files),
            role=role,
            body=body,
        )
        gat_job = self.gat.submit_job(
            description, site, preferred=_preferred_middleware(site)
        )
        deploy_job.gat_job = gat_job
        self.jobs.append(deploy_job)
        return deploy_job

    def wait_until_deployed(self, timeout_s=3600.0):
        """Run the DES until every submitted job is RUNNING (or dead).

        Returns True when all jobs started successfully.
        """
        env = self.jungle.env
        gate = all_of(
            env,
            [job.gat_job.when_state(JobState.RUNNING)
             for job in self.jobs],
        )
        env.run(until=env.now + timeout_s)
        started = all(
            job.state in (JobState.RUNNING, JobState.POST_STAGING,
                          JobState.STOPPED)
            and job.gat_job.error is None
            for job in self.jobs
        )
        return started and gate.triggered

    def cancel_all(self):
        for job in self.jobs:
            job.gat_job.cancel()

    # -- views --------------------------------------------------------------------

    def job_table(self):
        return self.gat.job_table()

    def overlay_edges(self):
        return self.factory.overlay.edges()


def _preferred_middleware(site):
    if site.middlewares:
        return next(iter(site.middlewares))
    return None
