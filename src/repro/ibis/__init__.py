"""The Ibis software framework (paper Fig. 2), reproduced in Python:

* :mod:`repro.ibis.smartsockets` — robust connectivity (hubs, overlay,
  direct/reverse/routed virtual sockets);
* :mod:`repro.ibis.ipl` — the Ibis Portability Layer (registry, ports,
  messages, fault-tolerance events);
* :mod:`repro.ibis.gat` — PyGAT middleware adaptors (jobs + files);
* :mod:`repro.ibis.zorilla` — P2P middleware (gossip + flood
  scheduling);
* :mod:`repro.ibis.deploy` — IbisDeploy orchestration + monitoring.
"""

from . import deploy, gat, ipl, smartsockets, zorilla

__all__ = ["smartsockets", "ipl", "gat", "zorilla", "deploy"]
