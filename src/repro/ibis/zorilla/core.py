"""Zorilla — peer-to-peer middleware (Drost et al. 2011).

"JavaGAT is also able to use Zorilla, a prototype middleware based on
Peer-to-Peer techniques.  Zorilla is ideal in cases where no middleware
is available, and can turn any collection of machines into a
cluster-like system in minutes." (paper Sec. 3)

Reproduction: nodes joined through a bootstrap peer learn about each
other by periodic membership *gossip* (seeded, deterministic), and jobs
are scheduled by *flooding* a job advertisement over the overlay with a
hop TTL, claiming slots on the nodes that volunteer — Zorilla's
flood-scheduling design.  :meth:`ZorillaOverlay.as_site` wraps the
member machines as a virtual cluster so PyGAT's zorilla adaptor can
submit to it like any other resource.
"""

from __future__ import annotations

import numpy as np

from ...jungle.des import SlotResource
from ...jungle.resources import Site

__all__ = ["ZorillaNode", "ZorillaOverlay", "ZorillaError"]

#: bytes of one gossip exchange / job advertisement
GOSSIP_BYTES = 512
ADVERT_BYTES = 1024


class ZorillaError(RuntimeError):
    """Overlay-level failure (no capacity, unreachable, ...)."""


class ZorillaNode:
    """One peer: a host contributing its cores to the overlay."""

    def __init__(self, overlay, host):
        self.overlay = overlay
        self.host = host
        self.name = f"zorilla@{host.name}"
        self.known = {self.name}       # gossiped membership view
        self.slots = SlotResource(overlay.jungle.env, host.cores)

    @property
    def free_slots(self):
        return self.slots.capacity - self.slots.in_use

    def __repr__(self):
        return f"<ZorillaNode {self.name} known={len(self.known)}>"


class ZorillaOverlay:
    """The P2P overlay: membership gossip + flood scheduling."""

    def __init__(self, jungle, rng=0):
        self.jungle = jungle
        self.rng = (
            rng if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        self.nodes = {}
        self._bootstrap = None

    # -- membership ---------------------------------------------------------

    def add_node(self, host):
        """Join *host*; it initially knows only the bootstrap peer."""
        node = ZorillaNode(self, host)
        self.nodes[node.name] = node
        if self._bootstrap is None:
            self._bootstrap = node
        else:
            node.known.add(self._bootstrap.name)
            self._bootstrap.known.add(node.name)
        return node

    def gossip_round(self):
        """One synchronous gossip round: every node exchanges its
        membership view with one random known peer."""
        net = self.jungle.network
        names = sorted(self.nodes)
        for name in names:
            node = self.nodes[name]
            peers = sorted(node.known - {name})
            if not peers:
                continue
            peer = self.nodes[
                peers[int(self.rng.integers(len(peers)))]
            ]
            if not net.can_accept(node.host, peer.host) and \
                    not net.can_accept(peer.host, node.host):
                continue
            net.traffic.record(
                node.host.site, peer.host.site, GOSSIP_BYTES, "gossip"
            )
            union = node.known | peer.known
            node.known = set(union)
            peer.known = set(union)

    def run_gossip(self, rounds=None, interval_s=1.0):
        """DES process: gossip until the membership view converges."""
        env = self.jungle.env
        max_rounds = rounds or (4 * max(1, len(self.nodes)))

        def _process():
            for _ in range(max_rounds):
                yield env.timeout(interval_s)
                self.gossip_round()
                if self.converged():
                    break
            return self.converged()

        return env.process(_process())

    def converged(self):
        full = set(self.nodes)
        return all(node.known == full for node in self.nodes.values())

    # -- flood scheduling ------------------------------------------------------

    def flood_schedule(self, origin_host, node_count, ttl=4,
                       needs_gpu=False):
        """Flood a job advert from *origin*; claim slots breadth-first.

        Returns the list of claimed nodes; raises ZorillaError if the
        flood (bounded by *ttl* hops) finds too little capacity.
        """
        origin = None
        for node in self.nodes.values():
            if node.host.name == origin_host.name:
                origin = node
                break
        if origin is None:
            raise ZorillaError(
                f"{origin_host.name} is not a Zorilla node"
            )
        net = self.jungle.network
        claimed = []
        seen = {origin.name}
        frontier = [origin]
        hops = 0
        while frontier and len(claimed) < node_count and hops <= ttl:
            for node in frontier:
                if len(claimed) >= node_count:
                    break
                if needs_gpu and not node.host.has_gpu:
                    continue
                if node.free_slots > 0:
                    node.slots.request()      # immediate: has capacity
                    claimed.append(node)
            next_frontier = []
            for node in frontier:
                for peer_name in sorted(node.known - seen):
                    seen.add(peer_name)
                    peer = self.nodes[peer_name]
                    net.traffic.record(
                        node.host.site, peer.host.site, ADVERT_BYTES,
                        "gossip",
                    )
                    next_frontier.append(peer)
            frontier = next_frontier
            hops += 1
        if len(claimed) < node_count:
            for node in claimed:
                node.slots.release()
            raise ZorillaError(
                f"flood found {len(claimed)}/{node_count} free "
                f"node(s) within ttl={ttl}"
            )
        return claimed

    def release(self, nodes):
        for node in nodes:
            node.slots.release()

    # -- GAT integration ---------------------------------------------------------

    def as_site(self, name="zorilla-overlay"):
        """A virtual cluster Site over the member machines, so PyGAT's
        zorilla adaptor can treat the overlay as one resource."""
        site = Site(name, "desktop-grid")
        self.jungle.add_site(site)
        for node in self.nodes.values():
            # hosts stay attached to their original network sites; the
            # virtual site only groups them for scheduling, so register
            # lightweight aliases instead of moving the hosts
            site.hosts[node.host.name] = node.host
            if site.frontend is None:
                site.frontend = node.host
        site.add_middleware(
            "zorilla", self.jungle.env, slots=self.total_slots()
        )
        return site

    def total_slots(self):
        return sum(n.slots.capacity for n in self.nodes.values())
