"""Zorilla P2P middleware: gossip membership + flood scheduling."""

from .core import ZorillaError, ZorillaNode, ZorillaOverlay

__all__ = ["ZorillaOverlay", "ZorillaNode", "ZorillaError"]
