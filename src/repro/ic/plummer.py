"""Plummer-sphere initial conditions (stars and gas).

Implements the classic Aarseth–Hénon–Wielen (1974) sampling of the Plummer
(1911) model, the default initial condition generator in AMUSE and the one
used for the embedded-star-cluster simulation of the paper (young stars
plus the gas sphere they formed from, Pelupessy & Portegies Zwart 2011).
"""

from __future__ import annotations

import numpy as np

from ..datamodel import Particles
from ..units import nbody as nbody_system
from ..units.core import Quantity

__all__ = ["new_plummer_model", "new_plummer_gas_model"]


def _rng(seed_or_rng):
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def _plummer_positions(n, rng):
    """Radii from the inverse mass profile + isotropic directions."""
    # enclosed-mass fraction X in (0,1); avoid the tail blowing up
    x = rng.uniform(0.0, 0.999, n)
    r = (x ** (-2.0 / 3.0) - 1.0) ** -0.5
    return r[:, None] * _isotropic_unit_vectors(n, rng).T


def _isotropic_unit_vectors(n, rng):
    z = rng.uniform(-1.0, 1.0, n)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    sin_theta = np.sqrt(1.0 - z ** 2)
    return np.array([sin_theta * np.cos(phi), sin_theta * np.sin(phi), z])


def _plummer_velocities(radii, rng):
    """Von Neumann rejection sampling of g(q) = q^2 (1 - q^2)^(7/2)."""
    n = len(radii)
    q = np.empty(n)
    remaining = np.arange(n)
    while remaining.size:
        cand = rng.uniform(0.0, 1.0, remaining.size)
        y = rng.uniform(0.0, 0.1, remaining.size)
        ok = y < cand ** 2 * (1.0 - cand ** 2) ** 3.5
        q[remaining[ok]] = cand[ok]
        remaining = remaining[~ok]
    vesc = np.sqrt(2.0) * (1.0 + radii ** 2) ** -0.25
    speed = q * vesc
    return speed[:, None] * _isotropic_unit_vectors(n, rng).T


def new_plummer_model(
    n,
    convert_nbody=None,
    rng=None,
    do_scale=True,
):
    """Create *n* equal-mass Plummer-distributed stars.

    Parameters
    ----------
    n : int
        Number of particles.
    convert_nbody : ConvertBetweenGenericAndSiUnits, optional
        When given, the returned set is expressed in SI units through the
        converter; otherwise it is in generic N-body units.
    rng : int | numpy.random.Generator, optional
        Seed or generator (determinism per DESIGN.md).
    do_scale : bool
        Rescale to standard Heggie–Mathieu units (E = -1/4, M = 1).
    """
    rng = _rng(rng)
    stars = Particles(n)
    positions = _plummer_positions(n, rng)
    radii = np.linalg.norm(positions, axis=1)
    velocities = _plummer_velocities(radii, rng)
    # Scale factor 16/(3 pi) converts the model's natural length unit to
    # virial units (Aarseth et al. 1974).
    scale = 16.0 / (3.0 * np.pi)
    stars.mass = Quantity(np.full(n, 1.0 / n), nbody_system.mass)
    stars.position = Quantity(positions / scale, nbody_system.length)
    stars.velocity = Quantity(
        velocities * np.sqrt(scale), nbody_system.speed
    )
    stars.move_to_center()
    if do_scale and n > 1:
        stars.scale_to_standard()
    if convert_nbody is not None:
        stars.mass = convert_nbody.to_si(stars.mass)
        stars.position = convert_nbody.to_si(stars.position)
        stars.velocity = convert_nbody.to_si(stars.velocity)
    return stars


def new_plummer_gas_model(
    n,
    convert_nbody=None,
    rng=None,
    gas_fraction=1.0,
    virial_ratio=0.5,
):
    """Create an SPH gas sphere with a Plummer density profile.

    The gas starts cold in bulk motion (zero velocities) with an internal
    energy profile chosen so the sphere is initially in approximate
    hydrostatic support: u(r) follows the Plummer potential, scaled so the
    total thermal energy is ``virial_ratio`` times |E_pot|/2.

    Returns a :class:`Particles` set with ``mass, position, velocity,
    u`` (specific internal energy).
    """
    rng = _rng(rng)
    gas = Particles(n)
    positions = _plummer_positions(n, rng)
    scale = 16.0 / (3.0 * np.pi)
    positions /= scale
    radii = np.linalg.norm(positions, axis=1)
    gas.mass = Quantity(
        np.full(n, gas_fraction / n), nbody_system.mass
    )
    gas.position = Quantity(positions, nbody_system.length)
    gas.velocity = Quantity(np.zeros((n, 3)), nbody_system.speed)
    # Plummer internal-energy profile ~ |phi(r)| / 6 gives hydrostatic
    # support for a gamma = 5/3 polytrope-ish sphere.
    a = 3.0 * np.pi / 16.0
    phi = gas_fraction / np.sqrt(radii ** 2 + a ** 2)
    u = virial_ratio * phi / 2.0
    gas.u = Quantity(u, nbody_system.speed ** 2)
    gas.move_to_center()
    if convert_nbody is not None:
        gas.mass = convert_nbody.to_si(gas.mass)
        gas.position = convert_nbody.to_si(gas.position)
        gas.velocity = convert_nbody.to_si(gas.velocity)
        gas.u = convert_nbody.to_si(gas.u)
    return gas
