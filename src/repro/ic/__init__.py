"""Initial-condition generators (Plummer spheres, IMFs)."""

from .plummer import new_plummer_gas_model, new_plummer_model
from .imf import (
    new_kroupa_mass_distribution,
    new_salpeter_mass_distribution,
)
from .king import new_king_model

__all__ = [
    "new_plummer_model",
    "new_plummer_gas_model",
    "new_king_model",
    "new_salpeter_mass_distribution",
    "new_kroupa_mass_distribution",
]
