"""King (1966) model initial conditions.

Observed star clusters are tidally truncated; the King model — a
lowered isothermal sphere parameterised by the central potential depth
W0 — is the standard fit and a common AMUSE initial condition next to
the Plummer sphere.  The implementation integrates the Poisson equation
for the dimensionless potential and samples positions from the
resulting density profile and velocities from the lowered-Maxwellian
distribution function by rejection.
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import solve_ivp
from scipy.special import erf

from ..datamodel import Particles
from ..units import nbody_system
from ..units.core import Quantity

__all__ = ["new_king_model"]


def _rng(seed_or_rng):
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def _king_density(w):
    """Dimensionless density rho(W) of the lowered isothermal model."""
    w = np.maximum(np.asarray(w, dtype=float), 0.0)
    return np.where(
        w > 0,
        np.exp(w) * erf(np.sqrt(w))
        - np.sqrt(4.0 * w / np.pi) * (1.0 + 2.0 * w / 3.0),
        0.0,
    )


def _solve_structure(w0):
    """Integrate Poisson for W(r); returns (r, W) to the tidal radius."""
    rho0 = _king_density(w0)

    def rhs(r, y):
        w, dw = y
        if r < 1e-8:
            d2w = -9.0 * _king_density(w) / rho0 / 3.0
        else:
            d2w = -9.0 * _king_density(w) / rho0 - 2.0 * dw / r
        return [dw, d2w]

    def reached_edge(r, y):
        return y[0]

    reached_edge.terminal = True
    reached_edge.direction = -1

    solution = solve_ivp(
        rhs, [1e-6, 1e4], [w0, 0.0], events=reached_edge,
        max_step=0.05, rtol=1e-8, atol=1e-10,
    )
    return solution.t, np.maximum(solution.y[0], 0.0)


def new_king_model(n, w0=6.0, convert_nbody=None, rng=None,
                   do_scale=True):
    """Create *n* equal-mass stars following a King(W0) profile.

    Parameters
    ----------
    w0 : float
        Central dimensionless potential (3 = loose, 9 = concentrated).
    """
    if not 0.5 <= w0 <= 12.0:
        raise ValueError("W0 must be in [0.5, 12]")
    rng = _rng(rng)
    r_grid, w_grid = _solve_structure(w0)
    rho_grid = _king_density(w_grid)

    # cumulative mass profile for inverse-CDF radius sampling
    integrand = rho_grid * r_grid ** 2
    cum_mass = np.concatenate(
        [[0.0], np.cumsum(
            0.5 * (integrand[1:] + integrand[:-1]) * np.diff(r_grid)
        )]
    )
    cum_mass /= cum_mass[-1]

    u = rng.uniform(0.0, 1.0, n)
    radii = np.interp(u, cum_mass, r_grid)
    w_at_r = np.interp(radii, r_grid, w_grid)

    # velocities: rejection-sample g(v) ~ v^2 [exp(W - v^2/2) - 1]
    # inside the escape speed v_esc = sqrt(2 W); the envelope is the
    # box v in [0, v_esc] x [0, v_esc^2 f_max]
    speeds = np.empty(n)
    remaining = np.arange(n)
    while remaining.size:
        w = w_at_r[remaining]
        v_esc = np.sqrt(2.0 * w)
        v_try = rng.uniform(0.0, 1.0, remaining.size) * v_esc
        g = v_try ** 2 * (np.exp(w - 0.5 * v_try ** 2) - 1.0)
        g_bound = v_esc ** 2 * (np.exp(w) - 1.0)
        accept = rng.uniform(0.0, 1.0, remaining.size) * g_bound <= g
        speeds[remaining[accept]] = v_try[accept]
        remaining = remaining[~accept]

    def isotropic(n_vectors):
        z = rng.uniform(-1.0, 1.0, n_vectors)
        phi = rng.uniform(0.0, 2.0 * np.pi, n_vectors)
        s = np.sqrt(1.0 - z ** 2)
        return np.column_stack(
            [s * np.cos(phi), s * np.sin(phi), z]
        )

    stars = Particles(n)
    stars.mass = Quantity(np.full(n, 1.0 / n), nbody_system.mass)
    stars.position = Quantity(
        radii[:, None] * isotropic(n), nbody_system.length
    )
    stars.velocity = Quantity(
        speeds[:, None] * isotropic(n), nbody_system.speed
    )
    stars.move_to_center()
    if do_scale and n > 1:
        stars.scale_to_standard()
    if convert_nbody is not None:
        stars.mass = convert_nbody.to_si(stars.mass)
        stars.position = convert_nbody.to_si(stars.position)
        stars.velocity = convert_nbody.to_si(stars.velocity)
    return stars
