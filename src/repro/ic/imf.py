"""Initial mass functions: Salpeter and Kroupa sampling.

The embedded-cluster simulation draws stellar masses from an IMF so that
the SSE stellar-evolution model has massive stars that explode as
supernovae during the run (paper Sec. 6: "several of the bigger stars
exploding in a supernova during the simulation").
"""

from __future__ import annotations

import numpy as np

from ..units import astro
from ..units.core import Quantity

__all__ = ["new_salpeter_mass_distribution", "new_kroupa_mass_distribution"]


def _rng(seed_or_rng):
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def _power_law_sample(alpha, m_lo, m_hi, u):
    """Inverse-CDF sample of dN/dm ∝ m^-alpha on [m_lo, m_hi]."""
    if abs(alpha - 1.0) < 1e-12:
        return m_lo * (m_hi / m_lo) ** u
    g = 1.0 - alpha
    return (m_lo ** g + u * (m_hi ** g - m_lo ** g)) ** (1.0 / g)


def new_salpeter_mass_distribution(
    n, mass_min=0.1, mass_max=100.0, alpha=2.35, rng=None
):
    """Draw *n* masses (MSun) from the Salpeter (1955) IMF."""
    rng = _rng(rng)
    u = rng.uniform(0.0, 1.0, n)
    masses = _power_law_sample(alpha, mass_min, mass_max, u)
    return Quantity(masses, astro.MSun)


# Kroupa (2001) segments: (m_lo, m_hi, alpha)
_KROUPA_SEGMENTS = (
    (0.01, 0.08, 0.3),
    (0.08, 0.5, 1.3),
    (0.5, np.inf, 2.3),
)


def new_kroupa_mass_distribution(
    n, mass_min=0.08, mass_max=100.0, rng=None
):
    """Draw *n* masses (MSun) from the Kroupa (2001) broken power law."""
    rng = _rng(rng)
    # Build the piecewise-continuous CDF over [mass_min, mass_max].
    segments = []
    norm = 1.0
    prev_hi = None
    for lo, hi, alpha in _KROUPA_SEGMENTS:
        lo = max(lo, mass_min)
        hi = min(hi, mass_max)
        if lo >= hi:
            continue
        if prev_hi is not None:
            # continuity of dN/dm at the break
            norm *= prev_hi[0] ** (prev_hi[1] - alpha)
        g = 1.0 - alpha
        integral = norm * (hi ** g - lo ** g) / g
        segments.append((lo, hi, alpha, integral))
        prev_hi = (hi, alpha)
    weights = np.array([seg[3] for seg in segments])
    weights = weights / weights.sum()
    counts = rng.multinomial(n, weights)
    samples = []
    for (lo, hi, alpha, _), count in zip(segments, counts,
                                         strict=True):
        if count:
            u = rng.uniform(0.0, 1.0, count)
            samples.append(_power_law_sample(alpha, lo, hi, u))
    masses = np.concatenate(samples) if samples else np.empty(0)
    rng.shuffle(masses)
    return Quantity(masses, astro.MSun)
