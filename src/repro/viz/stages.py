"""Fig. 6 reproduction: the four stages of the embedded-cluster run.

The paper's Fig. 6 shows a 3-D visualization of the simulation "at four
different times: a) The initial condition, young stars embedded in a
sphere of gas.  b) gas is expanding.  c) only a thin shell of gas around
the cluster remains.  d) gas completely removed from cluster (note the
larger size of the cluster)".

Without a 3-D renderer, the figure's *content* is the radial gas
distribution relative to the cluster over time.  This module turns
simulation snapshots into that content: stage classification, radial
density profiles and an ASCII rendering of the profile evolution.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "StageTracker",
    "radial_profile",
    "render_profile_ascii",
    "STAGES",
]

STAGES = ("embedded", "expanding", "shell", "expelled")


def radial_profile(positions_pc, masses, center=None, n_bins=12,
                   r_max=None):
    """Gas surface-density-style radial profile (mass per shell)."""
    pos = np.asarray(positions_pc, dtype=float)
    masses = np.asarray(masses, dtype=float)
    if center is None:
        center = pos.mean(axis=0)
    radii = np.linalg.norm(pos - center, axis=1)
    if r_max is None:
        r_max = max(float(np.percentile(radii, 98)), 1e-6)
    edges = np.linspace(0.0, r_max, n_bins + 1)
    mass_in_bin, _ = np.histogram(radii, bins=edges, weights=masses)
    volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    return edges, mass_in_bin / volumes


class StageTracker:
    """Collects snapshots and reports the Fig. 6 stage sequence."""

    def __init__(self):
        self.snapshots = []

    def record(self, diagnostics):
        self.snapshots.append(dict(diagnostics))
        return diagnostics["stage"]

    @property
    def stages_seen(self):
        """Stages in first-seen order."""
        seen = []
        for snap in self.snapshots:
            if snap["stage"] not in seen:
                seen.append(snap["stage"])
        return seen

    def stage_table(self):
        """One row per first occurrence of each stage (the four panels
        of Fig. 6)."""
        rows = []
        seen = set()
        for snap in self.snapshots:
            if snap["stage"] in seen:
                continue
            seen.add(snap["stage"])
            rows.append(
                {
                    "stage": snap["stage"],
                    "time_myr": snap["time_myr"],
                    "bound_gas_fraction": snap["bound_gas_fraction"],
                    "gas_half_mass_radius_pc":
                        snap["gas_half_mass_radius_pc"],
                    "star_half_mass_radius_pc":
                        snap["star_half_mass_radius_pc"],
                }
            )
        return rows

    def is_monotonic_expulsion(self):
        """Bound gas fraction must trend downward (panels a->d)."""
        fractions = [s["bound_gas_fraction"] for s in self.snapshots]
        if len(fractions) < 2:
            return True
        # allow small bounces; compare smoothed endpoints
        k = max(1, len(fractions) // 5)
        return np.mean(fractions[-k:]) <= np.mean(fractions[:k]) + 0.05

    def cluster_expanded(self):
        """Fig. 6 panel d: 'note the larger size of the cluster'."""
        radii = [s["star_half_mass_radius_pc"] for s in self.snapshots]
        if len(radii) < 2:
            return False
        return radii[-1] > radii[0]


def render_profile_ascii(edges, density, width=40, label=""):
    """One radial profile as an ASCII bar chart (log scale)."""
    lines = [f"radial gas density {label}".rstrip()]
    floor = max(density[density > 0].min() if (density > 0).any()
                else 1.0, 1e-12)
    top = max(density.max(), floor * 10)
    for lo, hi, rho in zip(edges[:-1], edges[1:], density,
                           strict=True):
        if rho <= 0:
            bar = ""
        else:
            frac = np.log(rho / floor) / np.log(top / floor)
            bar = "#" * max(1, int(frac * width))
        lines.append(f"  {lo:5.2f}-{hi:5.2f} pc |{bar}")
    return "\n".join(lines)
