"""Text renderings of the paper's figures (stages, GUI panes)."""

from .monitor_render import (
    render_job_table,
    render_loads,
    render_overlay,
    render_resource_map,
    render_snapshot,
    render_traffic_matrix,
)
from .render_pipeline import FRAME_4K_BYTES, RenderPipeline
from .stages import (
    STAGES,
    StageTracker,
    radial_profile,
    render_profile_ascii,
)

__all__ = [
    "RenderPipeline",
    "FRAME_4K_BYTES",
    "StageTracker",
    "STAGES",
    "radial_profile",
    "render_profile_ascii",
    "render_snapshot",
    "render_resource_map",
    "render_job_table",
    "render_overlay",
    "render_traffic_matrix",
    "render_loads",
]
