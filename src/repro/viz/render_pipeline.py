"""The SC11 visualization pipeline (paper Figs. 8/9).

"We also used a tiled panel display to display a 4K resolution version
of the 3D visualization, rendered by a 16 node cluster located in
Amsterdam" — with dedicated "2 x transatlantic 10G lightpath" links
carrying the video to Seattle (Fig. 9, SARA/RVS + 5x3 tiled panel
display).

:class:`RenderPipeline` models that data path on the jungle DES: render
nodes produce 4K frames in parallel, frames stream over the display
lightpath, and the achieved frame rate is whichever of rendering or the
network is the bottleneck.  Video traffic is accounted separately from
IPL/MPI so it shows up as its own flow in the traffic view.
"""

from __future__ import annotations

__all__ = ["RenderPipeline", "FRAME_4K_BYTES"]

#: one 4K frame, 24-bit RGB, lightly packed (~2:1)
FRAME_4K_BYTES = 3840 * 2160 * 3 // 2
#: seconds one node needs to render one 4K frame of the simulation
RENDER_S_PER_FRAME = 0.5


class RenderPipeline:
    """Streams rendered simulation frames to a remote tiled display."""

    def __init__(self, jungle, render_site, display_site,
                 render_nodes=16, target_fps=25.0,
                 frame_bytes=FRAME_4K_BYTES,
                 render_s_per_frame=RENDER_S_PER_FRAME):
        self.jungle = jungle
        self.render_site = jungle.sites[render_site]
        self.display_site = jungle.sites[display_site]
        self.render_nodes = int(render_nodes)
        self.target_fps = float(target_fps)
        self.frame_bytes = int(frame_bytes)
        self.render_s_per_frame = float(render_s_per_frame)
        self.frames_streamed = 0

    # -- capacity analysis ---------------------------------------------------

    def render_fps(self):
        """Frames/s the render cluster can produce (parallel nodes)."""
        return self.render_nodes / self.render_s_per_frame

    def network_fps(self):
        """Frames/s the display link can carry."""
        bandwidth = self.jungle.network.bandwidth(
            self.render_site.name, self.display_site.name
        )
        return bandwidth / (8.0 * self.frame_bytes)

    def achievable_fps(self):
        """min(render, network, target) — the displayed frame rate."""
        return min(self.render_fps(), self.network_fps(),
                   self.target_fps)

    def bottleneck(self):
        rates = {
            "render": self.render_fps(),
            "network": self.network_fps(),
            "target": self.target_fps,
        }
        return min(rates, key=rates.get)

    # -- DES streaming ------------------------------------------------------------

    def stream(self, duration_s):
        """DES process: stream at the achievable rate for *duration*.

        Returns the process; traffic is recorded under the "video"
        protocol.  Run the jungle env to completion afterwards.
        """
        env = self.jungle.env
        fps = self.achievable_fps()
        n_frames = int(duration_s * fps)
        src = self.render_site.frontend
        dst = self.display_site.frontend

        def _process():
            for _ in range(n_frames):
                yield self.jungle.network.transfer(
                    env, src, dst, self.frame_bytes, protocol="video"
                )
                self.frames_streamed += 1
            return self.frames_streamed

        return env.process(_process())

    def report(self):
        return {
            "render_fps": self.render_fps(),
            "network_fps": self.network_fps(),
            "achievable_fps": self.achievable_fps(),
            "bottleneck": self.bottleneck(),
            "frame_mbytes": self.frame_bytes / 1e6,
            "frames_streamed": self.frames_streamed,
        }
