"""ASCII renderings of the IbisDeploy GUI panes (paper Figs. 10/11).

The paper's monitoring figures are: a resource map, a job table, the
SmartSockets overlay (with one-way arrows and tunnel lines), and the 3-D
traffic view (IPL traffic blue, MPI orange, load bars per site).  These
functions render the same data as terminal text, consuming the snapshot
dictionaries of :class:`repro.ibis.deploy.Monitor`.
"""

from __future__ import annotations

__all__ = [
    "render_resource_map",
    "render_job_table",
    "render_overlay",
    "render_traffic_matrix",
    "render_loads",
    "render_snapshot",
]


def render_resource_map(resources):
    lines = ["RESOURCES (map pane)"]
    for row in sorted(resources, key=lambda r: r["site"]):
        lat, lon = row["location"]
        hub = " [hub]" if row.get("hub") else ""
        lines.append(
            f"  {row['site']:<18} {row['kind']:<12} "
            f"({lat:7.2f},{lon:8.2f}) hosts={row['hosts']:<3} "
            f"mw={','.join(row['middleware']) or '-'}{hub}"
        )
    return "\n".join(lines)


def render_job_table(jobs):
    lines = ["JOBS (deployment pane)"]
    lines.append(
        f"  {'#':<3} {'name':<22} {'site':<18} {'adaptor':<14} "
        f"{'nodes':<5} state"
    )
    for job in jobs:
        lines.append(
            f"  {job['id']:<3} {job['name']:<22} {job['site']:<18} "
            f"{job['adaptor']:<14} {job['nodes']:<5} {job['state']}"
        )
    return "\n".join(lines)


def render_overlay(edges):
    """Hub overlay: '--' direct, '->' one-way (firewalled), '~~' tunnel."""
    symbol = {"direct": "--", "one-way": "->", "tunnel": "~~"}
    lines = ["SMARTSOCKETS OVERLAY (hub pane)"]
    for a, b, kind in edges:
        lines.append(f"  {a:<24}{symbol.get(kind, '??')} {b}")
    return "\n".join(lines)


def _human_bytes(n):
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if n < 1024 or unit == "TB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}TB"


def render_traffic_matrix(ipl_matrix, mpi_matrix=None):
    """Per-site-pair traffic; IPL and MPI columns like Fig. 11's
    blue/orange split."""
    mpi_matrix = mpi_matrix or {}
    keys = sorted(set(ipl_matrix) | set(mpi_matrix))
    lines = ["TRAFFIC (3-D network view)"]
    lines.append(f"  {'src -> dst':<44} {'IPL':>10} {'MPI':>10}")
    for key in keys:
        src, dst = key
        lines.append(
            f"  {src:<20} -> {dst:<20} "
            f"{_human_bytes(ipl_matrix.get(key, 0)):>10} "
            f"{_human_bytes(mpi_matrix.get(key, 0)):>10}"
        )
    return "\n".join(lines)


def render_loads(loads, width=20):
    """Per-host CPU/GPU load bars (red/blue bars of Fig. 11)."""
    lines = ["HOST LOAD (bars: c=cpu, g=gpu)"]
    for host in sorted(loads):
        cpu = loads[host].get("cpu", 0.0)
        gpu = loads[host].get("gpu", 0.0)
        cbar = "c" * int(round(cpu * width))
        gbar = "g" * int(round(gpu * width))
        lines.append(
            f"  {host:<24} cpu {cpu:5.1%} |{cbar:<{width}}| "
            f"gpu {gpu:5.1%} |{gbar:<{width}}|"
        )
    return "\n".join(lines)


def render_snapshot(snapshot):
    """Full GUI: all panes of Figs. 10 and 11."""
    parts = [
        f"== IbisDeploy monitor @ t={snapshot['time_s']:.1f}s ==",
        render_resource_map(snapshot["resources"]),
        render_job_table(snapshot["jobs"]),
        render_overlay(snapshot["overlay"]),
        render_traffic_matrix(
            snapshot["traffic_ipl"], snapshot.get("traffic_mpi")
        ),
        render_loads(snapshot["loads"]),
        "CONNECTION STRATEGIES " + repr(snapshot["strategies"]),
    ]
    return "\n\n".join(parts)
