"""The Ibis daemon — loopback gateway between coupler and workers.

"The AMUSE coupler connects with a local Ibis daemon to start and
communicate with remote workers.  The user must start this daemon on his
or her machine before running any simulation, but it can be re-used for
all simulations run.  We use this separate process as the Ibis software
is written in Java, while AMUSE is written in Python.  The connection is
created using a local loopback socket.  Benchmarks show that this
connection is over 8Gbit/second even on a modest laptop, has a[n]
extremely small latency." (paper Sec. 5)

This daemon is a REAL loopback TCP server speaking the AMUSE frame
protocol — and, beyond the paper's single-script assumption, a
**multi-session scheduler**: every connection is attached to a session
minted (or joined, via its unguessable token) at hello time, pilots
live in per-session namespaces, pilot calls pass fair admission
control (FIFO within a session, round-robin across sessions), per
-session accounting is served on a ``status`` endpoint, idle sessions
are reaped, and a warm pool of pre-spawned subprocess workers cuts
time-to-first-evolve for subprocess/shm pilots.  Start it as a real
service::

    python -m repro.distributed.daemon --port 7654 --warm-pool 2 \
        --max-sessions 8 --idle-timeout 300

and connect with :func:`repro.distributed.connect`.

Daemon message surface (all frames per :mod:`repro.rpc.protocol`):

* ``("hello", req_id, max_version[, caps])`` — wire-version
  negotiation; the optional *caps* dict may offer per-buffer
  compression codecs and a ``session`` entry (``{"join": token}`` to
  attach to an existing session, ``{"name": ...}`` to label a new
  one).  The ack carries the granted ``{"id", "token"}`` pair.
* ``("start_worker", req_id, factory_bytes, resource, node_count
  [, worker_mode[, session_id[, options]]])`` — *worker_mode*
  ("thread", "subprocess" or "shm") overrides the daemon's default;
  subprocess and shm pilots are claimed from the warm pool when one
  is parked.  ``options={"relay": True}`` starts a *relay pilot*: the
  pilot is bootstrapped but NOT wire-negotiated, waiting for an
  ``attach_worker`` splice
* ``("attach_worker", req_id, worker_id[, session_id])`` — flips this
  connection into the zero-decode data plane: after the ack, every
  frame in either direction is spliced verbatim between client and
  pilot (:func:`repro.rpc.protocol.relay_frame` — header + buffer
  table parsed for byte counts, metadata never decoded), so the
  client negotiates capabilities (cancel, compression, same-host shm)
  end to end with the pilot's ``worker_loop``.  When the pilot dies,
  the client is sent a ``("relay_lost", 0, {...})`` obituary carrying
  exit code and stderr tail before the connection closes
* ``("call", req_id, worker_id, method, args, kwargs[, session_id])``
* ``("mcall", req_id, worker_id, [(method, args, kwargs), ...]
  [, session_id])`` — pipelined batch, one mresult frame
* ``("echo", req_id, payload)`` — the loopback benchmark message
  (ungated by admission: it measures the wire, not the scheduler)
* ``("stop_worker", req_id, worker_id[, session_id])``
* ``("list_workers", req_id)`` — this session's pilots only
* ``("status", req_id)`` — session accounting + daemon load
* ``("close_session", req_id)`` / ``("shutdown", req_id)``

A frame-carried ``session_id`` must match the session the connection
authenticated into at hello — the id alone is no credential, the join
token is; worker ids are resolved ONLY inside the owning session's
namespace, so cross-tenant addressing fails even with a guessed id.

Connections start on v1 framing; a hello upgrades the connection to the
zero-copy v2 framing (out-of-band buffers, scatter-gather send) when
both sides support it.  Result arrays are handed to the send path as
buffers of the worker's own output — the daemon hop forwards them
without re-pickling their contents into an intermediate payload.
"""

from __future__ import annotations

import logging
import os
import pickle
import secrets
import socket
import threading
import time
import traceback

from ..rpc.channel import call_entry, worker_loop
from ..rpc.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RelayScratch,
    WireState,
    accept_capabilities,
    recv_frame,
    relay_frame,
    send_frame,
    send_frame_v2,
)
from ..rpc.subproc import SubprocessChannel
from .session import AdmissionController, SessionState, WarmWorkerPool

__all__ = ["IbisDaemon", "main"]

logger = logging.getLogger("repro.distributed.daemon")

#: pilot modes a start_worker frame may ask for
_WORKER_MODES = ("thread", "subprocess", "shm")


class _ThreadWorker:
    """A pilot worker hosted in the daemon process itself (the original
    mode): calls are dispatched straight to the interface in the
    connection handler's thread."""

    mode = "thread"
    pid = None
    warm_hit = False

    def __init__(self, interface):
        self.interface = interface

    def call(self, method, *args, **kwargs):
        return getattr(self.interface, method)(*args, **kwargs)

    def stop(self):
        stop = getattr(self.interface, "stop", None)
        if stop is not None:
            stop()


class _SubprocessWorker:
    """A pilot worker in its own OS process, driven through a
    :class:`~repro.rpc.subproc.SubprocessChannel` — the real AMUSE
    proxy+worker pair: the daemon forwards calls to a child that owns
    its interpreter (and its GIL).  ``shm=True`` is the per-pilot
    transport upgrade: the daemon→child leg moves array payloads
    through shared-memory segments instead of the socket.

    When a *warm_pool* is passed, the worker first tries to claim a
    parked pre-spawned child and activate it with the tenant's factory
    — skipping interpreter startup and the preloaded imports; a pool
    miss (or a failed activation) falls back to the cold spawn."""

    def __init__(self, factory, shm=False, warm_pool=None):
        options = {}
        if shm:
            from ..rpc.shm import DEFAULT_SEGMENT_SIZE

            options["shm_segment_size"] = DEFAULT_SEGMENT_SIZE
        self.mode = "shm" if shm else "subprocess"
        self.warm_hit = False
        channel = None
        if warm_pool is not None:
            channel = warm_pool.claim()
        if channel is not None:
            try:
                channel.activate(factory, **options)
                self.warm_hit = True
            except Exception:  # noqa: BLE001 - warm claim best-effort
                logger.exception(
                    "warm worker activation failed; cold-spawning"
                )
                channel = None
        if channel is None:
            channel = SubprocessChannel(factory, **options)
        self.channel = channel
        self.pid = channel.pid

    def call(self, method, *args, **kwargs):
        return self.channel.call(method, *args, **kwargs)

    def stop(self):
        self.channel.stop()


class _RelayThreadWorker:
    """A relay pilot hosted in the daemon process: a real
    :func:`~repro.rpc.channel.worker_loop` on its own thread behind a
    ``socketpair``, so the spliced client negotiates capabilities
    (cancel, compression, shm) end to end exactly as it would against
    a remote pilot."""

    mode = "thread"
    pid = None
    warm_hit = False

    def __init__(self, factory, worker_capabilities=True):
        self.interface = factory()
        daemon_side, worker_side = socket.socketpair()
        self.relay_sock = daemon_side
        self.attached = False
        self._thread = threading.Thread(
            target=worker_loop, args=(self.interface, worker_side),
            kwargs={"enable_capabilities": worker_capabilities},
            name="relay-thread-pilot", daemon=True,
        )
        self._thread.start()

    def call(self, method, *args, **kwargs):
        raise ProtocolError(
            "worker is relay-attached; calls travel through the "
            "spliced connection, not the daemon dispatcher"
        )

    def death_info(self):
        return {
            "message": "relayed pilot (daemon thread) connection lost",
        }

    def stop(self):
        try:
            self.relay_sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.relay_sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)


class _RelaySubprocessWorker:
    """A relay pilot in its own OS process, bootstrapped but NEVER
    activated: the factory frame is shipped and the pid ack awaited,
    then the raw socket is handed to the relay pump — no daemon-leg
    hello, so the client's capability negotiation passes through to
    the child's :func:`worker_loop` untouched.  Warm-pool claims work
    exactly as for decoded pilots (the parked child is waiting for a
    factory frame either way)."""

    warm_hit = False

    def __init__(self, factory, mode="subprocess", warm_pool=None,
                 worker_capabilities=True):
        self.mode = mode
        self.attached = False
        channel = None
        if warm_pool is not None and worker_capabilities:
            channel = warm_pool.claim()
        if channel is not None:
            try:
                channel.detach_for_relay(factory)
                self.warm_hit = True
            except Exception:  # noqa: BLE001 - warm claim best-effort
                logger.exception(
                    "warm relay bootstrap failed; cold-spawning"
                )
                channel = None
        if channel is None:
            channel = SubprocessChannel(
                warm=True, worker_capabilities=worker_capabilities,
            )
            # detach failure tears the child down inside the channel;
            # the error propagates to the start_worker reply
            channel.detach_for_relay(factory)
        self.channel = channel
        self.relay_sock = channel._sock
        self.pid = channel.pid

    def call(self, method, *args, **kwargs):
        raise ProtocolError(
            "worker is relay-attached; calls travel through the "
            "spliced connection, not the daemon dispatcher"
        )

    def death_info(self):
        return self.channel.death_info()

    def stop(self):
        try:
            self.relay_sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.channel.stop()


class IbisDaemon:
    """Loopback TCP daemon hosting AMUSE workers for many sessions.

    Start once per machine::

        daemon = IbisDaemon(warm_pool=2, idle_timeout=300)
        daemon.start()
        ...
        daemon.shutdown()

    *warm_pool* pre-spawns that many parked subprocess workers;
    *max_sessions* bounds concurrent tenants (hello past the limit is
    rejected); *idle_timeout* reaps sessions (stopping their pilots
    via the stop→terminate→kill escalation) after that many idle
    seconds; *max_active* caps concurrently-executing pilot calls
    (defaults to the core count).
    """

    def __init__(self, host="127.0.0.1", port=0,
                 max_version=PROTOCOL_VERSION, worker_mode="thread",
                 warm_pool=0, max_sessions=None, idle_timeout=None,
                 max_active=None, drain_timeout=5.0):
        if worker_mode not in _WORKER_MODES:
            raise ValueError(
                f"unknown worker mode {worker_mode!r}; "
                f"known: {sorted(_WORKER_MODES)}"
            )
        self._host = host
        self._port = int(port)
        self._max_version = max_version
        self._worker_mode = worker_mode
        self._warm_size = int(warm_pool)
        self._max_sessions = max_sessions
        self._idle_timeout = idle_timeout
        self._max_active = max_active
        self._drain_timeout = float(drain_timeout)
        self._listener = None
        self._unix_listener = None
        self._accept_thread = None
        self._unix_accept_thread = None
        self._reaper_thread = None
        self._sessions = {}
        self._by_token = {}
        self._worker_ids = iter(range(1, 1 << 30))
        self._lock = threading.Lock()
        self._conns = set()
        self._serve_threads = set()
        self._running = False
        self._shutdown_done = threading.Event()
        self._started_at = None
        self.admission = None
        self.warm_pool = None
        self.reaped_sessions = 0
        self.address = None
        #: abstract AF_UNIX address for same-host clients (None when
        #: the platform has no AF_UNIX); bulk relay traffic over this
        #: listener skips the loopback TCP stack entirely
        self.unix_address = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self):
        return self._running

    def start(self):
        self._listener = socket.socket(
            socket.AF_INET, socket.SOCK_STREAM
        )
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind((self._host, self._port))
        self._listener.listen(16)
        self.address = self._listener.getsockname()
        # same-host fast path: an abstract-namespace AF_UNIX listener
        # alongside TCP.  Local clients that dial it (connect() with a
        # daemon instance does so automatically) move bulk relay
        # traffic off the loopback TCP stack — measurably faster under
        # the zero-decode splice, and no filesystem socket to clean up
        if hasattr(socket, "AF_UNIX"):
            try:
                unix = socket.socket(
                    socket.AF_UNIX, socket.SOCK_STREAM
                )
                name = (f"\0repro-daemon-{os.getpid()}-"
                        f"{secrets.token_hex(4)}")
                unix.bind(name)
                unix.listen(16)
            except OSError:
                logger.info(
                    "AF_UNIX listener unavailable; same-host "
                    "clients will use loopback TCP"
                )
            else:
                self._unix_listener = unix
                self.unix_address = name
        self._started_at = time.monotonic()
        self._running = True
        self.admission = AdmissionController(slots=self._max_active)
        if self._warm_size > 0:
            self.warm_pool = WarmWorkerPool(self._warm_size)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, args=(self._listener,),
            daemon=True,
        )
        self._accept_thread.start()
        if self._unix_listener is not None:
            self._unix_accept_thread = threading.Thread(
                target=self._accept_loop,
                args=(self._unix_listener,), daemon=True,
            )
            self._unix_accept_thread.start()
        if self._idle_timeout is not None:
            self._reaper_thread = threading.Thread(
                target=self._reap_loop, daemon=True
            )
            self._reaper_thread.start()
        return self.address

    def shutdown(self):
        """Deterministic teardown: stop admitting pilot calls, DRAIN
        the in-flight ones (bounded), then stop pools/workers and close
        the client connections — the order that makes shutdown during
        an in-flight call race-free instead of best-effort.

        Concurrent callers are safe: exactly one thread performs the
        teardown, and every other caller blocks until it has finished
        (bounded by the drain/join timeouts), so "shutdown() returned"
        always means "the daemon is down" — not "someone else is
        still tearing it down"."""
        with self._lock:
            if not self._running:
                already_down = self._shutdown_done
                wait_needed = True
            else:
                self._running = False
                wait_needed = False
        if wait_needed:
            # a started daemon is being (or has been) torn down by
            # another thread; a never-started one has nothing to wait
            # for and its event is already unset but irrelevant
            if self._started_at is not None:
                already_down.wait(
                    timeout=self._drain_timeout + 10.0
                )
            return
        try:
            self._teardown()
        finally:
            self._shutdown_done.set()

    def _teardown(self):
        try:
            self._listener.close()
        except OSError:
            pass
        if self._unix_listener is not None:
            try:
                self._unix_listener.close()
            except OSError:
                pass
        if self.admission is not None:
            drained = self.admission.close(self._drain_timeout)
            if not drained:
                logger.warning(
                    "shutdown: pilot calls still running after "
                    "%.1fs drain", self._drain_timeout,
                )
        if self.warm_pool is not None:
            self.warm_pool.stop()
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
            self._by_token.clear()
        for session in sessions:
            self._stop_session_workers(session)
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        current = threading.current_thread()
        with self._lock:
            threads = list(self._serve_threads)
        for thread in threads:
            if thread is not current:
                thread.join(timeout=2.0)
        if self._accept_thread is not None \
                and self._accept_thread is not current:
            self._accept_thread.join(timeout=2.0)
        if self._unix_accept_thread is not None \
                and self._unix_accept_thread is not current:
            self._unix_accept_thread.join(timeout=2.0)

    # -- session management ------------------------------------------------

    def _attach_session(self, state, request):
        """Attach this connection to a session: join by token, or mint
        a new one (subject to --max-sessions)."""
        if state["session"] is not None:
            return state["session"]
        name = token = None
        if isinstance(request, dict):
            name = request.get("name")
            token = request.get("join")
        with self._lock:
            if token is not None:
                session = self._by_token.get(token)
                if session is None:
                    raise ProtocolError("unknown session token")
            else:
                if self._max_sessions is not None \
                        and len(self._sessions) >= self._max_sessions:
                    raise ProtocolError(
                        f"session limit reached "
                        f"({self._max_sessions})"
                    )
                session = SessionState(name=name)
                self._sessions[session.sid] = session
                self._by_token[session.token] = session
            session.connections += 1
        state["session"] = session
        return session

    def _drop_session_locked(self, session):
        self._sessions.pop(session.sid, None)
        self._by_token.pop(session.token, None)

    def _stop_session_workers(self, session):
        with self._lock:
            workers = list(session.workers.values())
            session.workers.clear()
            session.worker_meta.clear()
        for worker in workers:
            try:
                worker.stop()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass

    def _reap_loop(self):
        interval = min(max(self._idle_timeout / 4.0, 0.05), 1.0)
        while self._running:
            time.sleep(interval)
            self.reap_idle_sessions()

    def reap_idle_sessions(self):
        """Reap sessions idle past the timeout (no in-flight calls):
        their pilots are stopped via the existing stop→terminate→kill
        escalation, freeing subprocess children and /dev/shm segments.
        Returns the number of sessions reaped."""
        if self._idle_timeout is None or not self._running:
            return 0
        with self._lock:
            expired = [
                session for session in self._sessions.values()
                if session.active_calls == 0
                and session.idle_for() >= self._idle_timeout
            ]
            for session in expired:
                self._drop_session_locked(session)
        for session in expired:
            logger.info(
                "reaping idle session %s (idle %.1fs, %d workers)",
                session.sid, session.idle_for(), len(session.workers),
            )
            self._stop_session_workers(session)
        self.reaped_sessions += len(expired)
        return len(expired)

    def _validate_sid(self, session, sid):
        if sid is not None and sid != session.sid:
            raise ProtocolError(
                f"session mismatch: frame carries {sid!r}, "
                f"connection authenticated as {session.sid!r}"
            )

    # -- serving -----------------------------------------------------------

    def _accept_loop(self, listener):
        while self._running:
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            if conn.family == socket.AF_INET:
                conn.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            with self._lock:
                self._conns.add(conn)
            handler = threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            )
            with self._lock:
                self._serve_threads.add(handler)
            handler.start()

    def _serve(self, conn):
        wire = WireState()
        state = {"session": None}
        received_mark = 0

        def reply_frame(message):
            if wire.version >= 2:
                sent = send_frame_v2(conn, message, wire)
            else:
                sent = send_frame(conn, message)
            session = state["session"]
            if session is not None:
                session.accounting["bytes_out"] += sent

        try:
            while True:
                try:
                    message = recv_frame(conn, wire)
                except (ProtocolError, OSError):
                    # peer went away — or shutdown closed this socket
                    # under us while we blocked in recv
                    return
                delta_in = wire.bytes_received - received_mark
                received_mark = wire.bytes_received
                session = state["session"]
                if session is not None:
                    session.accounting["bytes_in"] += delta_in
                    session.touch()
                kind, req_id, *rest = message
                if kind == "hello" and self._max_version >= 2:
                    wire.version = min(int(rest[0]), self._max_version)
                    ack = {"version": wire.version}
                    offer = rest[1] if len(rest) >= 2 \
                        and isinstance(rest[1], dict) else {}
                    fresh = state["session"] is None
                    try:
                        session = self._attach_session(
                            state, offer.get("session")
                        )
                    except ProtocolError as exc:
                        reply_frame(
                            ("error", req_id, type(exc).__name__,
                             str(exc), traceback.format_exc()),
                        )
                        continue
                    if fresh:
                        # the top-of-loop accounting ran before this
                        # connection had a session; backfill the hello
                        session.accounting["bytes_in"] += delta_in
                    session.touch()
                    if offer:
                        # capability offer (codec list): the daemon is
                        # the WAN-relay end, so a negotiated codec
                        # shrinks exactly the modeled-bottleneck hop
                        ack["caps"] = accept_capabilities(offer, wire)
                        if offer.get("relay"):
                            # relay is a daemon-level capability, not
                            # a wire one: acked here, honoured by the
                            # attach_worker splice
                            ack["caps"]["relay"] = True
                    ack["session"] = {
                        "id": session.sid, "token": session.token,
                    }
                    reply_frame(("result", req_id, ack))
                    continue
                if kind == "attach_worker":
                    try:
                        if session is None:
                            session = self._attach_session(state, None)
                            session.accounting["bytes_in"] += delta_in
                        worker_id = rest[0] if rest else None
                        self._validate_sid(
                            session, rest[1] if len(rest) >= 2 else None
                        )
                        with self._lock:
                            worker = session.workers.get(worker_id)
                        if worker is None:
                            raise KeyError(
                                f"unknown worker {worker_id} in "
                                f"session {session.sid}"
                            )
                        if getattr(worker, "relay_sock", None) is None:
                            raise ProtocolError(
                                f"worker {worker_id} was not started "
                                "for relay"
                            )
                        if worker.attached:
                            raise ProtocolError(
                                f"worker {worker_id} is already "
                                "relay-attached"
                            )
                        worker.attached = True
                    except BaseException as exc:  # noqa: BLE001 - to peer
                        session = state["session"]
                        if session is not None:
                            session.accounting["errors"] += 1
                        reply_frame(
                            ("error", req_id, type(exc).__name__,
                             str(exc), traceback.format_exc()),
                        )
                        continue
                    reply_frame(("result", req_id,
                                 {"attached": worker_id}))
                    session.touch()
                    # from here this connection is a pure byte pipe to
                    # the pilot; the serve loop never decodes another
                    # frame on it
                    self._relay(conn, session, worker_id, worker)
                    return
                # a max_version=1 daemon behaves exactly like a pre-v2
                # one: hello falls through to the unknown-kind error
                try:
                    if session is None:
                        # v1 / no-hello client: implicit single-tenant
                        # session, exactly the paper's original model
                        session = self._attach_session(state, None)
                        session.accounting["bytes_in"] += delta_in
                        session.touch()
                    reply = self._handle(session, kind, rest)
                except BaseException as exc:  # noqa: BLE001 - to peer
                    if session is not None:
                        session.accounting["errors"] += 1
                    reply_frame(
                        ("error", req_id, type(exc).__name__,
                         str(exc), traceback.format_exc()),
                    )
                    continue
                if kind == "mcall":
                    reply_frame(("mresult", req_id, reply))
                else:
                    reply_frame(("result", req_id, reply))
                if kind == "shutdown":
                    self.shutdown()
                    return
        finally:
            with self._lock:
                self._conns.discard(conn)
                self._serve_threads.discard(
                    threading.current_thread()
                )
            try:
                conn.close()
            except OSError:
                pass
            session = state["session"]
            if session is not None:
                with self._lock:
                    session.connections -= 1
                    if session.connections <= 0 \
                            and not session.workers:
                        # a tenant whose every connection is gone and
                        # that left no pilots behind holds nothing
                        self._drop_session_locked(session)

    def _handle(self, session, kind, rest):
        """Dispatch one non-hello frame; pilot calls pass admission.

        EVERY in-flight frame counts in ``active_calls`` — a session
        mid-``start_worker`` (a cold spawn takes longer than a short
        idle timeout) must not look idle to the reaper."""
        with self._lock:
            session.active_calls += 1
        try:
            if kind in ("call", "mcall"):
                admission = self.admission
                if admission is None:
                    raise ProtocolError("daemon not started")
                try:
                    delay, overloaded = admission.acquire(session.sid)
                except RuntimeError as exc:
                    raise ProtocolError(str(exc)) from None
                session.accounting["queue_s"] += delay
                if overloaded:
                    session.accounting["queue_warnings"] += 1
                    logger.warning(
                        "daemon load %.2f above %.2f: session %s "
                        "queued %.1f ms", admission.load,
                        admission.warn_load, session.sid, delay * 1e3,
                    )
                started = time.monotonic()
                try:
                    return self._dispatch(session, kind, rest)
                finally:
                    session.accounting["compute_s"] += \
                        time.monotonic() - started
                    admission.release()
            return self._dispatch(session, kind, rest)
        finally:
            with self._lock:
                session.active_calls -= 1
            session.touch()

    def _run_worker_call(self, session, worker_id, method, args,
                         kwargs):
        with self._lock:
            worker = session.workers.get(worker_id)
        if worker is None:
            raise KeyError(
                f"unknown worker {worker_id} in session {session.sid}"
            )
        return worker.call(method, *args, **kwargs)

    def _dispatch(self, session, kind, rest):
        if kind == "echo":
            (payload,) = rest
            return payload
        if kind == "start_worker":
            # pre-subprocess clients send a 3-tuple (no worker_mode);
            # they get the daemon's default mode.  Session-aware
            # clients append their sid after the mode.
            factory_bytes, resource, node_count, *opt = rest
            worker_mode = opt[0] if opt and opt[0] is not None else \
                self._worker_mode
            self._validate_sid(
                session, opt[1] if len(opt) >= 2 else None
            )
            options = opt[2] if len(opt) >= 3 \
                and isinstance(opt[2], dict) else {}
            relay = bool(options.get("relay"))
            factory = pickle.loads(factory_bytes)
            if relay:
                if worker_mode not in _WORKER_MODES:
                    raise ValueError(
                        f"unknown worker mode {worker_mode!r}; "
                        f"known: {sorted(_WORKER_MODES)}"
                    )
                pilot_caps = bool(
                    options.get("worker_capabilities", True)
                )
                code_name = getattr(
                    getattr(factory, "func", factory), "__name__",
                    type(factory).__name__,
                )
                if worker_mode == "thread":
                    worker = _RelayThreadWorker(
                        factory, worker_capabilities=pilot_caps,
                    )
                else:
                    # relay shm pilots are plain subprocess spawns:
                    # the shm leg is negotiated client<->pilot end to
                    # end through the splice, not with the daemon
                    worker = _RelaySubprocessWorker(
                        factory, mode=worker_mode,
                        warm_pool=self.warm_pool,
                        worker_capabilities=pilot_caps,
                    )
                    key = "warm_hits" if worker.warm_hit else \
                        "cold_spawns"
                    session.accounting[key] += 1
            elif worker_mode in ("subprocess", "shm"):
                worker = _SubprocessWorker(
                    factory, shm=(worker_mode == "shm"),
                    warm_pool=self.warm_pool,
                )
                code_name = getattr(
                    getattr(factory, "func", factory), "__name__",
                    type(factory).__name__,
                )
                key = "warm_hits" if worker.warm_hit else \
                    "cold_spawns"
                session.accounting[key] += 1
            elif worker_mode == "thread":
                worker = _ThreadWorker(factory())
                code_name = type(worker.interface).__name__
            else:
                raise ValueError(
                    f"unknown worker mode {worker_mode!r}; "
                    f"known: {sorted(_WORKER_MODES)}"
                )
            with self._lock:
                # a session reaped or closed while the worker spawned
                # must not adopt it — the orphan would outlive every
                # stop path (and leak its /dev/shm segments)
                live = session.sid in self._sessions
                if live:
                    worker_id = next(self._worker_ids)
                    session.workers[worker_id] = worker
                    session.worker_meta[worker_id] = {
                        "resource": resource,
                        "node_count": node_count,
                        "code": code_name,
                        "mode": worker.mode,
                        "pid": worker.pid,
                        "warm": worker.warm_hit,
                        "relay": getattr(worker, "relay_sock", None)
                        is not None,
                    }
            if not live:
                try:
                    worker.stop()
                except Exception:  # noqa: BLE001 - teardown best-effort
                    pass
                raise ProtocolError(
                    f"session {session.sid} expired while the worker "
                    "was starting"
                )
            return worker_id
        if kind == "call":
            worker_id, method, args, kwargs, *opt = rest
            self._validate_sid(session, opt[0] if opt else None)
            session.accounting["calls"] += 1
            return self._run_worker_call(
                session, worker_id, method, args, kwargs
            )
        if kind == "mcall":
            worker_id, calls, *opt = rest
            self._validate_sid(session, opt[0] if opt else None)
            session.accounting["calls"] += len(calls)
            return [
                call_entry(
                    lambda m=method, a=args, k=kwargs:
                    self._run_worker_call(session, worker_id, m, a, k)
                )
                for method, args, kwargs in calls
            ]
        if kind == "stop_worker":
            worker_id, *opt = rest
            self._validate_sid(session, opt[0] if opt else None)
            with self._lock:
                worker = session.workers.pop(worker_id, None)
                session.worker_meta.pop(worker_id, None)
            if worker is not None:
                worker.stop()
            return True
        if kind == "list_workers":
            with self._lock:
                return dict(session.worker_meta)
        if kind == "status":
            return self._status(session)
        if kind == "close_session":
            with self._lock:
                self._drop_session_locked(session)
            self._stop_session_workers(session)
            return True
        if kind == "shutdown":
            return True
        raise ProtocolError(f"unknown daemon message kind {kind!r}")

    # -- relay data plane ----------------------------------------------------

    def _relay(self, conn, session, worker_id, worker):
        """Pump frames between a client and its relay pilot without
        decoding them (runs on the connection's serve thread).

        The upstream direction (client → pilot) runs here; a helper
        thread pumps downstream (pilot → client) concurrently, so the
        two hops of a transfer pipeline through the cut-through splice
        instead of store-and-forwarding.  Each relayed frame updates
        the session byte accounting and its idle clock — an actively
        relaying session never looks idle to the reaper, while a
        genuinely idle one is reaped exactly like a decoded tenant
        (the client then sees the pilot connection drop).

        A malformed or oversized frame from either side tears down
        ONLY this relay: the pilot is stopped and retired from the
        session; other connections and pilots are untouched.
        """
        pilot = worker.relay_sock
        down = threading.Thread(
            target=self._relay_downstream,
            args=(conn, pilot, session, worker),
            name=f"relay-down-{worker_id}", daemon=True,
        )
        down.start()
        scratch = RelayScratch()
        try:
            while True:
                spliced = relay_frame(conn, pilot, scratch)
                if spliced is None:
                    break
                session.accounting["bytes_in"] += spliced
                session.accounting["relay_frames"] += 1
                session.touch()
        except ProtocolError as exc:
            logger.warning(
                "relay for worker %s: dropping connection: %s",
                worker_id, exc,
            )
        except OSError:
            pass
        # client leg over (EOF, error, or a bad frame): retire the
        # pilot — shutdown wakes the downstream pump out of its recv,
        # stop() runs the usual escalation for subprocess pilots
        with self._lock:
            still = session.workers.pop(worker_id, None)
            session.worker_meta.pop(worker_id, None)
        try:
            pilot.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        if still is not None:
            try:
                still.stop()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        down.join(timeout=5.0)
        scratch.close()

    def _relay_downstream(self, conn, pilot, session, worker):
        """Pilot → client pump.  When the pilot side ends — clean EOF,
        death mid-frame, or a malformed frame — the client is sent a
        ``relay_lost`` obituary (exit code + stderr tail for
        subprocess pilots, mirroring SubprocessChannel's local death
        reports) and the connection is shut down so its reader fails
        over immediately."""
        scratch = RelayScratch()
        reason = None
        try:
            while True:
                spliced = relay_frame(pilot, conn, scratch)
                if spliced is None:
                    break
                session.accounting["bytes_out"] += spliced
                session.accounting["relay_frames"] += 1
                session.touch()
        except ProtocolError as exc:
            reason = f"relay frame error from pilot: {exc}"
        except OSError:
            pass
        try:
            info = worker.death_info()
        except Exception:  # noqa: BLE001 - obituary best-effort
            info = {}
        if reason:
            info["message"] = reason
        try:
            send_frame(conn, ("relay_lost", 0, info))
        except (OSError, ProtocolError):
            pass
        # wake the upstream pump parked in recv on the client socket
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        scratch.close()

    def _status(self, session):
        with self._lock:
            n_sessions = len(self._sessions)
        uptime = 0.0 if self._started_at is None else \
            time.monotonic() - self._started_at
        return {
            "session": session.snapshot(),
            "daemon": {
                "sessions": n_sessions,
                "reaped_sessions": self.reaped_sessions,
                "worker_mode": self._worker_mode,
                "idle_timeout": self._idle_timeout,
                "max_sessions": self._max_sessions,
                "uptime_s": round(uptime, 3),
                "admission": self.admission.stats()
                if self.admission is not None else None,
                "warm_pool": self.warm_pool.stats()
                if self.warm_pool is not None
                else {"size": 0, "idle": 0, "claimed": 0},
            },
        }

    # -- convenience ---------------------------------------------------------------

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


def main(argv=None):
    """Run the daemon as a service: ``python -m
    repro.distributed.daemon --port 7654 --warm-pool 2``.

    Prints the bound ``host:port`` on stdout (port 0 picks a free
    one), then serves until a client sends ``shutdown`` or SIGINT."""
    import argparse

    from .. import __version__

    parser = argparse.ArgumentParser(
        prog="repro.distributed.daemon",
        description="Ibis daemon: multi-session loopback gateway "
                    "hosting AMUSE workers (paper Sec. 5).",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: loopback)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default: 0 = pick a free port)",
    )
    parser.add_argument(
        "--warm-pool", type=int, default=0, metavar="N",
        help="pre-spawn N parked subprocess workers",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=None, metavar="M",
        help="reject hello past M concurrent sessions",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="reap sessions idle for S seconds",
    )
    parser.add_argument(
        "--max-active", type=int, default=None,
        help="concurrently executing pilot calls "
             "(default: core count)",
    )
    parser.add_argument(
        "--worker-mode", default="thread", choices=_WORKER_MODES,
        help="default pilot mode for start_worker frames",
    )
    args = parser.parse_args(argv)

    daemon = IbisDaemon(
        host=args.host, port=args.port, worker_mode=args.worker_mode,
        warm_pool=args.warm_pool, max_sessions=args.max_sessions,
        idle_timeout=args.idle_timeout, max_active=args.max_active,
    )
    host, port = daemon.start()
    if daemon.warm_pool is not None:
        # announce only once the pool is filled: the first client to
        # race in after the banner deserves a warm hit, not a cold
        # spawn with a pool still mid-fill behind it
        daemon.warm_pool.ready(timeout=60.0)
    print(f"ibis daemon listening on {host}:{port}", flush=True)
    try:
        while daemon.running:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        daemon.shutdown()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
