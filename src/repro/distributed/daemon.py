"""The Ibis daemon — loopback gateway between coupler and workers.

"The AMUSE coupler connects with a local Ibis daemon to start and
communicate with remote workers.  The user must start this daemon on his
or her machine before running any simulation, but it can be re-used for
all simulations run.  We use this separate process as the Ibis software
is written in Java, while AMUSE is written in Python.  The connection is
created using a local loopback socket.  Benchmarks show that this
connection is over 8Gbit/second even on a modest laptop, has a[n]
extremely small latency." (paper Sec. 5)

This daemon is a REAL loopback TCP server speaking the AMUSE frame
protocol.  The coupler-side :class:`DistributedChannel` starts workers
through it and routes every RPC through the daemon socket — the extra
hop whose cost the paper measures (and ``benchmarks/bench_loopback.py``
reproduces).  Workers run in daemon-side threads, standing in for the
remote proxy+worker pair (the *modeled* wide-area side lives in
:mod:`repro.distributed.core`).

Daemon message surface (all frames per :mod:`repro.rpc.protocol`):

* ``("hello", req_id, max_version)`` — wire-version negotiation
* ``("start_worker", req_id, factory_bytes, resource, node_count)``
* ``("call", req_id, worker_id, method, args, kwargs)``
* ``("mcall", req_id, worker_id, [(method, args, kwargs), ...])`` —
  pipelined batch, executed in order, answered with one mresult frame
* ``("echo", req_id, payload)`` — the loopback benchmark message
* ``("stop_worker", req_id, worker_id)`` / ``("list_workers", req_id)``
* ``("shutdown", req_id)``

Connections start on v1 framing; a hello upgrades the connection to the
zero-copy v2 framing (out-of-band buffers, scatter-gather send) when
both sides support it.  Result arrays are handed to the send path as
buffers of the worker's own output — the daemon hop forwards them
without re-pickling their contents into an intermediate payload.
"""

from __future__ import annotations

import pickle
import socket
import threading
import traceback

from ..rpc.channel import call_entry
from ..rpc.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
    send_frame_v2,
)

__all__ = ["IbisDaemon"]


class IbisDaemon:
    """Loopback TCP daemon hosting AMUSE workers.

    Start once per user machine::

        daemon = IbisDaemon()
        daemon.start()
        ...
        daemon.shutdown()
    """

    def __init__(self, host="127.0.0.1", max_version=PROTOCOL_VERSION):
        self._host = host
        self._max_version = max_version
        self._listener = None
        self._accept_thread = None
        self._workers = {}
        self._worker_meta = {}
        self._worker_ids = iter(range(1, 1 << 30))
        self._lock = threading.Lock()
        self._running = False
        self.address = None

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        self._listener = socket.socket(
            socket.AF_INET, socket.SOCK_STREAM
        )
        self._listener.bind((self._host, 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._accept_thread.start()
        return self.address

    def shutdown(self):
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            for interface in self._workers.values():
                stop = getattr(interface, "stop", None)
                if stop is not None:
                    try:
                        stop()
                    except Exception:  # noqa: BLE001
                        pass
            self._workers.clear()
            self._worker_meta.clear()

    # -- serving -----------------------------------------------------------------

    def _accept_loop(self):
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handler = threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            )
            handler.start()

    def _serve(self, conn):
        version = 1

        def reply_frame(message):
            if version >= 2:
                send_frame_v2(conn, message)
            else:
                send_frame(conn, message)

        try:
            while True:
                try:
                    message = recv_frame(conn)
                except ProtocolError:
                    return
                kind, req_id, *rest = message
                if kind == "hello" and self._max_version >= 2:
                    version = min(int(rest[0]), self._max_version)
                    reply_frame(("result", req_id, {"version": version}))
                    continue
                # a max_version=1 daemon behaves exactly like a pre-v2
                # one: hello falls through to the unknown-kind error
                try:
                    reply = self._dispatch(kind, rest)
                except BaseException as exc:  # noqa: BLE001 - to peer
                    reply_frame(
                        ("error", req_id, type(exc).__name__,
                         str(exc), traceback.format_exc()),
                    )
                    continue
                if kind == "mcall":
                    reply_frame(("mresult", req_id, reply))
                else:
                    reply_frame(("result", req_id, reply))
                if kind == "shutdown":
                    self.shutdown()
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _run_worker_call(self, worker_id, method, args, kwargs):
        with self._lock:
            interface = self._workers.get(worker_id)
        if interface is None:
            raise KeyError(f"unknown worker {worker_id}")
        return getattr(interface, method)(*args, **kwargs)

    def _dispatch(self, kind, rest):
        if kind == "echo":
            (payload,) = rest
            return payload
        if kind == "start_worker":
            factory_bytes, resource, node_count = rest
            factory = pickle.loads(factory_bytes)
            interface = factory()
            with self._lock:
                worker_id = next(self._worker_ids)
                self._workers[worker_id] = interface
                self._worker_meta[worker_id] = {
                    "resource": resource,
                    "node_count": node_count,
                    "code": type(interface).__name__,
                }
            return worker_id
        if kind == "call":
            worker_id, method, args, kwargs = rest
            return self._run_worker_call(worker_id, method, args, kwargs)
        if kind == "mcall":
            worker_id, calls = rest
            return [
                call_entry(
                    lambda m=method, a=args, k=kwargs:
                    self._run_worker_call(worker_id, m, a, k)
                )
                for method, args, kwargs in calls
            ]
        if kind == "stop_worker":
            (worker_id,) = rest
            with self._lock:
                interface = self._workers.pop(worker_id, None)
                self._worker_meta.pop(worker_id, None)
            if interface is not None and hasattr(interface, "stop"):
                interface.stop()
            return True
        if kind == "list_workers":
            with self._lock:
                return dict(self._worker_meta)
        if kind == "shutdown":
            return True
        raise ProtocolError(f"unknown daemon message kind {kind!r}")

    # -- convenience ---------------------------------------------------------------

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False
