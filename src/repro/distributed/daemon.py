"""The Ibis daemon — loopback gateway between coupler and workers.

"The AMUSE coupler connects with a local Ibis daemon to start and
communicate with remote workers.  The user must start this daemon on his
or her machine before running any simulation, but it can be re-used for
all simulations run.  We use this separate process as the Ibis software
is written in Java, while AMUSE is written in Python.  The connection is
created using a local loopback socket.  Benchmarks show that this
connection is over 8Gbit/second even on a modest laptop, has a[n]
extremely small latency." (paper Sec. 5)

This daemon is a REAL loopback TCP server speaking the AMUSE frame
protocol.  The coupler-side :class:`DistributedChannel` starts workers
through it and routes every RPC through the daemon socket — the extra
hop whose cost the paper measures (and ``benchmarks/bench_loopback.py``
reproduces).  Workers run in daemon-side threads by default, standing in
for the remote proxy+worker pair (the *modeled* wide-area side lives in
:mod:`repro.distributed.core`); with ``worker_mode="subprocess"`` each
pilot spawns a real child process instead, so daemon-hosted models
overlap real compute.

Daemon message surface (all frames per :mod:`repro.rpc.protocol`):

* ``("hello", req_id, max_version[, caps])`` — wire-version
  negotiation; the optional *caps* dict may offer per-buffer
  compression codecs, which the daemon acks with the first one it can
  load (WAN-profile clients use this to shrink the transfers whose
  modeled link is the bottleneck)
* ``("start_worker", req_id, factory_bytes, resource, node_count
  [, worker_mode])`` — *worker_mode* ("thread", "subprocess" or
  "shm") overrides the daemon's default; "subprocess" pilots spawn a
  REAL child process per worker (its own interpreter and GIL) driven
  through a :class:`~repro.rpc.subproc.SubprocessChannel`, and "shm"
  pilots drive that child over shared-memory segments (zero wire
  copies on the daemon→worker leg)
* ``("call", req_id, worker_id, method, args, kwargs)``
* ``("mcall", req_id, worker_id, [(method, args, kwargs), ...])`` —
  pipelined batch, executed in order, answered with one mresult frame
* ``("echo", req_id, payload)`` — the loopback benchmark message
* ``("stop_worker", req_id, worker_id)`` / ``("list_workers", req_id)``
* ``("shutdown", req_id)``

Connections start on v1 framing; a hello upgrades the connection to the
zero-copy v2 framing (out-of-band buffers, scatter-gather send) when
both sides support it.  Result arrays are handed to the send path as
buffers of the worker's own output — the daemon hop forwards them
without re-pickling their contents into an intermediate payload.
"""

from __future__ import annotations

import pickle
import socket
import threading
import traceback

from ..rpc.channel import call_entry
from ..rpc.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    WireState,
    accept_capabilities,
    recv_frame,
    send_frame,
    send_frame_v2,
)
from ..rpc.subproc import SubprocessChannel

__all__ = ["IbisDaemon"]

#: pilot modes a start_worker frame may ask for
_WORKER_MODES = ("thread", "subprocess", "shm")


class _ThreadWorker:
    """A pilot worker hosted in the daemon process itself (the original
    mode): calls are dispatched straight to the interface in the
    connection handler's thread."""

    mode = "thread"
    pid = None

    def __init__(self, interface):
        self.interface = interface

    def call(self, method, *args, **kwargs):
        return getattr(self.interface, method)(*args, **kwargs)

    def stop(self):
        stop = getattr(self.interface, "stop", None)
        if stop is not None:
            stop()


class _SubprocessWorker:
    """A pilot worker in its own OS process, driven through a
    :class:`~repro.rpc.subproc.SubprocessChannel` — the real AMUSE
    proxy+worker pair: the daemon forwards calls to a child that owns
    its interpreter (and its GIL).  ``shm=True`` is the per-pilot
    transport upgrade: the daemon→child leg moves array payloads
    through shared-memory segments instead of the socket."""

    def __init__(self, factory, shm=False):
        options = {}
        if shm:
            from ..rpc.shm import DEFAULT_SEGMENT_SIZE

            options["shm_segment_size"] = DEFAULT_SEGMENT_SIZE
        self.mode = "shm" if shm else "subprocess"
        self.channel = SubprocessChannel(factory, **options)
        self.pid = self.channel.pid

    def call(self, method, *args, **kwargs):
        return self.channel.call(method, *args, **kwargs)

    def stop(self):
        self.channel.stop()


class IbisDaemon:
    """Loopback TCP daemon hosting AMUSE workers.

    Start once per user machine::

        daemon = IbisDaemon()
        daemon.start()
        ...
        daemon.shutdown()
    """

    def __init__(self, host="127.0.0.1", max_version=PROTOCOL_VERSION,
                 worker_mode="thread"):
        if worker_mode not in _WORKER_MODES:
            raise ValueError(
                f"unknown worker mode {worker_mode!r}; "
                f"known: {sorted(_WORKER_MODES)}"
            )
        self._host = host
        self._max_version = max_version
        self._worker_mode = worker_mode
        self._listener = None
        self._accept_thread = None
        self._workers = {}
        self._worker_meta = {}
        self._worker_ids = iter(range(1, 1 << 30))
        self._lock = threading.Lock()
        self._running = False
        self.address = None

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        self._listener = socket.socket(
            socket.AF_INET, socket.SOCK_STREAM
        )
        self._listener.bind((self._host, 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._accept_thread.start()
        return self.address

    def shutdown(self):
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            for worker in self._workers.values():
                try:
                    worker.stop()
                except Exception:  # noqa: BLE001
                    pass
            self._workers.clear()
            self._worker_meta.clear()

    # -- serving -----------------------------------------------------------------

    def _accept_loop(self):
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handler = threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            )
            handler.start()

    def _serve(self, conn):
        wire = WireState()

        def reply_frame(message):
            if wire.version >= 2:
                send_frame_v2(conn, message, wire)
            else:
                send_frame(conn, message)

        try:
            while True:
                try:
                    message = recv_frame(conn, wire)
                except ProtocolError:
                    return
                kind, req_id, *rest = message
                if kind == "hello" and self._max_version >= 2:
                    wire.version = min(int(rest[0]), self._max_version)
                    ack = {"version": wire.version}
                    if len(rest) >= 2 and isinstance(rest[1], dict):
                        # capability offer (codec list): the daemon is
                        # the WAN-relay end, so a negotiated codec
                        # shrinks exactly the modeled-bottleneck hop
                        ack["caps"] = accept_capabilities(
                            rest[1], wire
                        )
                    reply_frame(("result", req_id, ack))
                    continue
                # a max_version=1 daemon behaves exactly like a pre-v2
                # one: hello falls through to the unknown-kind error
                try:
                    reply = self._dispatch(kind, rest)
                except BaseException as exc:  # noqa: BLE001 - to peer
                    reply_frame(
                        ("error", req_id, type(exc).__name__,
                         str(exc), traceback.format_exc()),
                    )
                    continue
                if kind == "mcall":
                    reply_frame(("mresult", req_id, reply))
                else:
                    reply_frame(("result", req_id, reply))
                if kind == "shutdown":
                    self.shutdown()
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _run_worker_call(self, worker_id, method, args, kwargs):
        with self._lock:
            worker = self._workers.get(worker_id)
        if worker is None:
            raise KeyError(f"unknown worker {worker_id}")
        return worker.call(method, *args, **kwargs)

    def _dispatch(self, kind, rest):
        if kind == "echo":
            (payload,) = rest
            return payload
        if kind == "start_worker":
            # pre-subprocess clients send a 3-tuple (no worker_mode);
            # they get the daemon's default mode
            factory_bytes, resource, node_count, *opt = rest
            worker_mode = opt[0] if opt and opt[0] is not None else \
                self._worker_mode
            factory = pickle.loads(factory_bytes)
            if worker_mode in ("subprocess", "shm"):
                worker = _SubprocessWorker(
                    factory, shm=(worker_mode == "shm")
                )
                code_name = getattr(
                    getattr(factory, "func", factory), "__name__",
                    type(factory).__name__,
                )
            elif worker_mode == "thread":
                worker = _ThreadWorker(factory())
                code_name = type(worker.interface).__name__
            else:
                raise ValueError(
                    f"unknown worker mode {worker_mode!r}; "
                    f"known: {sorted(_WORKER_MODES)}"
                )
            with self._lock:
                worker_id = next(self._worker_ids)
                self._workers[worker_id] = worker
                self._worker_meta[worker_id] = {
                    "resource": resource,
                    "node_count": node_count,
                    "code": code_name,
                    "mode": worker.mode,
                    "pid": worker.pid,
                }
            return worker_id
        if kind == "call":
            worker_id, method, args, kwargs = rest
            return self._run_worker_call(worker_id, method, args, kwargs)
        if kind == "mcall":
            worker_id, calls = rest
            return [
                call_entry(
                    lambda m=method, a=args, k=kwargs:
                    self._run_worker_call(worker_id, m, a, k)
                )
                for method, args, kwargs in calls
            ]
        if kind == "stop_worker":
            (worker_id,) = rest
            with self._lock:
                worker = self._workers.pop(worker_id, None)
                self._worker_meta.pop(worker_id, None)
            if worker is not None:
                worker.stop()
            return True
        if kind == "list_workers":
            with self._lock:
                return dict(self._worker_meta)
        if kind == "shutdown":
            return True
        raise ProtocolError(f"unknown daemon message kind {kind!r}")

    # -- convenience ---------------------------------------------------------------

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False
