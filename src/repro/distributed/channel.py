"""The Ibis channel — AMUSE's distributed worker channel.

"For this paper, we added an Ibis channel" (paper Sec. 4.1): instead of
spawning a worker locally over MPI/sockets, the coupler asks the local
Ibis daemon to start the worker on a (possibly remote) resource and
routes every RPC through the daemon's loopback socket.

:class:`DistributedChannel` is a real client of
:class:`~repro.distributed.daemon.IbisDaemon`: frames flow through the
genuine TCP loopback (with the extra daemon hop the paper discusses),
and the worker itself runs daemon-side.  Usage from a script is the
single-line change the paper advertises::

    gravity = PhiGRAPE(conv, channel_type="ibis", channel_options={
        "daemon": daemon, "resource": "LGM (LU)", "node_count": 1})

Requests can be pipelined like the sockets channel (async calls).
"""

from __future__ import annotations

import itertools
import pickle
import socket
import threading

from ..rpc.channel import AsyncRequest, Channel, register_channel_factory
from ..rpc.protocol import (
    ProtocolError,
    RemoteError,
    pack_frame,
    recv_frame,
)

__all__ = ["DistributedChannel"]


class DistributedChannel(Channel):
    """Channel from the coupler to a daemon-managed (remote) worker."""

    kind = "ibis"

    def __init__(self, interface_factory, daemon=None, address=None,
                 resource="local", node_count=1):
        if daemon is not None:
            address = daemon.address
        if address is None:
            raise ValueError(
                "DistributedChannel needs a daemon or its address; "
                "start an IbisDaemon first (paper Sec. 5 step 3)"
            )
        self.resource = resource
        self.node_count = int(node_count)
        self._ids = itertools.count(1)
        self._pending = {}
        self._pending_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._stopped = False
        self.bytes_sent = 0
        self.bytes_received = 0

        self._sock = socket.create_connection(address)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = threading.Thread(
            target=self._read_responses, daemon=True
        )
        self._reader.start()

        factory_bytes = pickle.dumps(interface_factory, protocol=5)
        self.worker_id = self._request(
            ("start_worker", factory_bytes, resource, node_count)
        ).result()

    # -- plumbing ---------------------------------------------------------------

    def _read_responses(self):
        try:
            while True:
                message = recv_frame(self._sock)
                kind, req_id, *rest = message
                with self._pending_lock:
                    request = self._pending.pop(req_id, None)
                if request is None:
                    continue
                if kind == "result":
                    request._resolve(rest[0])
                else:
                    exc_class, msg, tb = rest
                    request._resolve(
                        error=RemoteError(exc_class, msg, tb)
                    )
        except (ProtocolError, OSError):
            failure = ProtocolError("daemon connection lost")
            with self._pending_lock:
                pending = list(self._pending.values())
                self._pending.clear()
            for request in pending:
                request._resolve(error=failure)

    def _request(self, body):
        req_id = next(self._ids)
        request = AsyncRequest()
        with self._pending_lock:
            self._pending[req_id] = request
        frame = pack_frame((body[0], req_id) + tuple(body[1:]))
        with self._send_lock:
            self._sock.sendall(frame)
            self.bytes_sent += len(frame)
        return request

    # -- Channel API ---------------------------------------------------------------

    def call(self, method, *args, **kwargs):
        if self._stopped:
            raise ProtocolError("channel is stopped")
        return self._request(
            ("call", self.worker_id, method, args, kwargs)
        ).result()

    def async_call(self, method, *args, **kwargs):
        if self._stopped:
            raise ProtocolError("channel is stopped")
        return self._request(
            ("call", self.worker_id, method, args, kwargs)
        )

    def echo(self, payload):
        """Round-trip *payload* through the daemon (bench surface)."""
        return self._request(("echo", payload)).result()

    def stop(self):
        if self._stopped:
            return
        try:
            self._request(("stop_worker", self.worker_id)).result(
                timeout=10
            )
        except (ProtocolError, RemoteError, TimeoutError):
            pass
        self._stopped = True
        try:
            self._sock.close()
        except OSError:
            pass


register_channel_factory("ibis", DistributedChannel)
register_channel_factory("distributed", DistributedChannel)
