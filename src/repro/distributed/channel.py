"""The Ibis channel — AMUSE's distributed worker channel.

"For this paper, we added an Ibis channel" (paper Sec. 4.1): instead of
spawning a worker locally over MPI/sockets, the coupler asks the local
Ibis daemon to start the worker on a (possibly remote) resource and
routes every RPC through the daemon's loopback socket.

:class:`DistributedChannel` is a real client of
:class:`~repro.distributed.daemon.IbisDaemon`: frames flow through the
genuine TCP loopback (with the extra daemon hop the paper discusses),
and the worker itself runs daemon-side.  Usage from a script is the
single-line change the paper advertises::

    gravity = PhiGRAPE(conv, channel_type="ibis", channel_options={
        "daemon": daemon, "resource": "LGM (LU)", "node_count": 1})

Requests can be pipelined like the sockets channel (async calls), and
batched (``with channel.batch(): ...`` coalesces queued async calls
into one multi-call frame through the daemon).  The wire version is
negotiated on connect: v2 moves array payloads as out-of-band buffers
(zero-copy scatter-gather send, ``recv_into`` receive) and the daemon
forwards result buffers without re-pickling; a v1 daemon answers the
hello with an error and the channel transparently stays on v1 framing.

Two transport knobs follow the paper's locality spectrum:

* ``compress="auto"`` (default) negotiates per-buffer compression via
  the hello capability dict — but only for WAN-profile channels
  (``resource`` other than local): there the modeled wide-area link is
  the bottleneck and shrinking transfers is worth CPU, while the
  loopback hop of a local pilot is faster than any codec.  Pass
  True/False/codec-name to force either way.
* ``worker_mode="shm"`` asks the daemon for a subprocess pilot driven
  over the shared-memory channel — the daemon-side leg of the
  same-host zero-wire-copy path.
"""

from __future__ import annotations

import pickle
import socket
import threading

from ..rpc.channel import (
    AsyncRequest,
    StreamChannel,
    register_channel_factory,
)
from ..rpc.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    available_codecs,
    resolve_compress_offer,
)

__all__ = ["DistributedChannel"]

#: resource labels that mean "this very machine" — the loopback hop is
#: faster than any codec, so auto compression stays off for them
_LOCAL_RESOURCES = frozenset({"local", "localhost"})


class DistributedChannel(StreamChannel):
    """Channel from the coupler to a daemon-managed (remote) worker."""

    kind = "ibis"
    _lost_message = "daemon connection lost"

    def __init__(self, interface_factory, daemon=None, address=None,
                 resource="local", node_count=1,
                 max_version=PROTOCOL_VERSION, worker_mode=None,
                 compress="auto", compress_min=None):
        super().__init__()
        if daemon is not None:
            address = daemon.address
        if address is None:
            raise ValueError(
                "DistributedChannel needs a daemon or its address; "
                "start an IbisDaemon first (paper Sec. 5 step 3)"
            )
        self.resource = resource
        self.node_count = int(node_count)
        self.worker_mode = worker_mode
        self._compress = compress
        self._compress_min = compress_min

        self._sock = socket.create_connection(address)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = threading.Thread(
            target=self._read_responses, daemon=True
        )
        self._reader.start()

        self.wire_version = self._negotiate(max_version)

        factory_bytes = pickle.dumps(interface_factory, protocol=5)
        # worker_mode=None keeps the pre-subprocess 3-tuple shape, so
        # this client still talks to older daemons (which then apply
        # their own default mode)
        start = ("start_worker", factory_bytes, resource, node_count)
        if worker_mode is not None:
            start += (worker_mode,)
        self.worker_id = self._request(start).result()

    # -- plumbing ---------------------------------------------------------------

    def _compress_offer(self):
        """The codec list offered in the hello; WAN-profile only under
        ``"auto"`` (paper economics: compress where the modeled link is
        the bottleneck, never the same-host loopback)."""
        if self._compress == "auto":
            if self.resource in _LOCAL_RESOURCES or self.resource is None:
                return []
            return available_codecs()
        return resolve_compress_offer(self._compress)

    def _negotiate(self, max_version):
        """Hello handshake; a v1 daemon answers with an error frame,
        which is the downgrade signal.  A pre-capability daemon ignores
        the offer slot and acks a bare version — compression then
        stays off."""
        if max_version < 2:
            return 1
        offer = self._compress_offer()
        caps = {}
        if offer:
            caps["compress"] = offer
            if self._compress_min is not None:
                caps["compress_min"] = int(self._compress_min)
        hello = ("hello", max_version) + ((caps,) if caps else ())
        try:
            ack = self._request(hello).result(timeout=10)
        except RemoteError:
            return 1
        if isinstance(ack.get("caps"), dict):
            self.wire_caps = ack["caps"]
        self._wire.version = min(max_version, ack["version"])
        self._apply_negotiated_caps()
        return self._wire.version

    def _request(self, body):
        """Send a daemon-surface request (echo/start_worker/...)."""
        request = AsyncRequest()
        req_id = self._register_pending(request)
        self._send_frame_locked((body[0], req_id) + tuple(body[1:]))
        return request

    def _call_message(self, call_id, method, args, kwargs):
        return ("call", call_id, self.worker_id, method, args, kwargs)

    def _mcall_message(self, call_id, calls):
        return ("mcall", call_id, self.worker_id, calls)

    def echo(self, payload):
        """Round-trip *payload* through the daemon (bench surface)."""
        return self._request(("echo", payload)).result()

    def stop(self):
        # _stopped may already be set by the reader's loss cleanup;
        # the socket still needs releasing in that case
        if not self._stopped:
            try:
                self._request(("stop_worker", self.worker_id)).result(
                    timeout=10
                )
            except (ProtocolError, RemoteError, TimeoutError):
                pass
            self._stopped = True
        try:
            self._sock.close()
        except OSError:
            pass


register_channel_factory("ibis", DistributedChannel)
register_channel_factory("distributed", DistributedChannel)
