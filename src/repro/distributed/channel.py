"""The Ibis channel — AMUSE's distributed worker channel.

"For this paper, we added an Ibis channel" (paper Sec. 4.1): instead of
spawning a worker locally over MPI/sockets, the coupler asks the local
Ibis daemon to start the worker on a (possibly remote) resource and
routes every RPC through the daemon's loopback socket.

:class:`DistributedChannel` is a real client of
:class:`~repro.distributed.daemon.IbisDaemon`: frames flow through the
genuine TCP loopback (with the extra daemon hop the paper discusses),
and the worker itself runs daemon-side.  Usage from a script is the
single-line change the paper advertises::

    gravity = PhiGRAPE(conv, channel_type="ibis", channel_options={
        "daemon": daemon, "resource": "LGM (LU)", "node_count": 1})

Requests can be pipelined like the sockets channel (async calls), and
batched (``with channel.batch(): ...`` coalesces queued async calls
into one multi-call frame through the daemon).  The wire version is
negotiated on connect: v2 moves array payloads as out-of-band buffers
(zero-copy scatter-gather send, ``recv_into`` receive) and the daemon
forwards result buffers without re-pickling; a v1 daemon answers the
hello with an error and the channel transparently stays on v1 framing.
"""

from __future__ import annotations

import pickle
import socket
import threading

from ..rpc.channel import (
    AsyncRequest,
    StreamChannel,
    register_channel_factory,
)
from ..rpc.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
)

__all__ = ["DistributedChannel"]


class DistributedChannel(StreamChannel):
    """Channel from the coupler to a daemon-managed (remote) worker."""

    kind = "ibis"
    _lost_message = "daemon connection lost"

    def __init__(self, interface_factory, daemon=None, address=None,
                 resource="local", node_count=1,
                 max_version=PROTOCOL_VERSION, worker_mode=None):
        super().__init__()
        if daemon is not None:
            address = daemon.address
        if address is None:
            raise ValueError(
                "DistributedChannel needs a daemon or its address; "
                "start an IbisDaemon first (paper Sec. 5 step 3)"
            )
        self.resource = resource
        self.node_count = int(node_count)
        self.worker_mode = worker_mode

        self._sock = socket.create_connection(address)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = threading.Thread(
            target=self._read_responses, daemon=True
        )
        self._reader.start()

        self.wire_version = self._negotiate(max_version)

        factory_bytes = pickle.dumps(interface_factory, protocol=5)
        # worker_mode=None keeps the pre-subprocess 3-tuple shape, so
        # this client still talks to older daemons (which then apply
        # their own default mode)
        start = ("start_worker", factory_bytes, resource, node_count)
        if worker_mode is not None:
            start += (worker_mode,)
        self.worker_id = self._request(start).result()

    # -- plumbing ---------------------------------------------------------------

    def _negotiate(self, max_version):
        """Hello handshake; a v1 daemon answers with an error frame,
        which is the downgrade signal."""
        if max_version < 2:
            return 1
        try:
            ack = self._request(("hello", max_version)).result(timeout=10)
        except RemoteError:
            return 1
        return min(max_version, ack["version"])

    def _request(self, body):
        """Send a daemon-surface request (echo/start_worker/...)."""
        request = AsyncRequest()
        req_id = self._register_pending(request)
        self._send_frame_locked((body[0], req_id) + tuple(body[1:]))
        return request

    def _call_message(self, call_id, method, args, kwargs):
        return ("call", call_id, self.worker_id, method, args, kwargs)

    def _mcall_message(self, call_id, calls):
        return ("mcall", call_id, self.worker_id, calls)

    def echo(self, payload):
        """Round-trip *payload* through the daemon (bench surface)."""
        return self._request(("echo", payload)).result()

    def stop(self):
        # _stopped may already be set by the reader's loss cleanup;
        # the socket still needs releasing in that case
        if not self._stopped:
            try:
                self._request(("stop_worker", self.worker_id)).result(
                    timeout=10
                )
            except (ProtocolError, RemoteError, TimeoutError):
                pass
            self._stopped = True
        try:
            self._sock.close()
        except OSError:
            pass


register_channel_factory("ibis", DistributedChannel)
register_channel_factory("distributed", DistributedChannel)
