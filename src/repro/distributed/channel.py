"""The Ibis channel — AMUSE's distributed worker channel.

"For this paper, we added an Ibis channel" (paper Sec. 4.1): instead of
spawning a worker locally over MPI/sockets, the coupler asks the local
Ibis daemon to start the worker on a (possibly remote) resource and
routes every RPC through the daemon's loopback socket.

Two layers live here:

* :class:`_DaemonLink` — the control-plane connection: TCP connect,
  hello negotiation (wire version, compression codecs, session
  membership), echo/status/close_session requests.  A link that was
  granted a session carries ``session_id``/``session_token``; the
  token is the credential a second connection presents to join the
  same daemon-side namespace.
* :class:`DistributedChannel` — the pilot channel: a link that also
  starts a worker and routes ``call``/``mcall`` frames to it.  Frames
  carry the session id once one is granted, so the daemon can verify
  a tenant never addresses another tenant's pilots.

The SUPPORTED way to build pilot channels is now::

    session = repro.distributed.connect(daemon_address)
    gravity = session.code(PhiGRAPE, conv, channel_type="shm")

Constructing :class:`DistributedChannel` directly (or via
``channel_type="ibis"`` with a ``daemon``/``address`` option) still
works — each such channel becomes its own single-tenant session — but
emits a :class:`DeprecationWarning` once per process, as do the old
``daemon_host``/``daemon_port`` kwargs.

Requests can be pipelined like the sockets channel (async calls), and
batched (``with channel.batch(): ...`` coalesces queued async calls
into one multi-call frame through the daemon).  The wire version is
negotiated on connect: v2 moves array payloads as out-of-band buffers
(zero-copy scatter-gather send, ``recv_into`` receive) and the daemon
forwards result buffers without re-pickling; a v1 daemon answers the
hello with an error and the channel transparently stays on v1 framing.

Two transport knobs follow the paper's locality spectrum:

* ``compress="auto"`` (default) negotiates per-buffer compression via
  the hello capability dict — but only for WAN-profile channels
  (``resource`` other than local): there the modeled wide-area link is
  the bottleneck and shrinking transfers is worth CPU, while the
  loopback hop of a local pilot is faster than any codec.  Pass
  True/False/codec-name to force either way.
* ``worker_mode="shm"`` asks the daemon for a subprocess pilot driven
  over the shared-memory channel — the daemon-side leg of the
  same-host zero-wire-copy path.

And one routing knob keeps the daemon off the critical path entirely:

* ``relay=True`` asks the daemon for a *relay pilot*: after
  ``start_worker`` the client sends ``attach_worker`` and the daemon
  flips the connection into a zero-decode splice
  (:func:`~repro.rpc.protocol.relay_frame`) straight to the pilot.
  Transport capabilities are then negotiated END TO END with the
  pilot's :func:`~repro.rpc.channel.worker_loop` through the splice —
  compression for WAN-profile resources, shm arenas for a same-host
  ``worker_mode="shm"`` pilot (zero wire copies client → pilot), and
  AMCX cancellation, so ``Future.cancel()`` can interrupt a hung
  REMOTE pilot.  ``autobatch="auto"`` adds Nagle-style micro-batching
  of async calls on WAN-profile relayed channels.  A daemon too old to
  ack the relay capability quietly keeps the decoded dispatcher path.
"""

from __future__ import annotations

import pickle
import socket
import threading
import warnings

from ..rpc.channel import (
    AsyncRequest,
    StreamChannel,
    register_channel_factory,
)
from ..rpc.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    available_codecs,
    resolve_compress_offer,
)

__all__ = ["DistributedChannel"]

#: resource labels that mean "this very machine" — the loopback hop is
#: faster than any codec, so auto compression stays off for them
_LOCAL_RESOURCES = frozenset({"local", "localhost"})

#: deprecation shims warn exactly once per process per shim
_DEPRECATION_SEEN = set()


def _warn_deprecated(key, message):
    if key in _DEPRECATION_SEEN:
        return
    _DEPRECATION_SEEN.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


class _DaemonLink(StreamChannel):
    """Control-plane connection to an Ibis daemon (no pilot attached).

    Handles connect, hello negotiation and the daemon-surface requests
    shared by the control link of a :class:`~repro.distributed.
    session.Session` and every pilot channel.
    """

    kind = "ibis"
    _lost_message = "daemon connection lost"

    def __init__(self, daemon=None, address=None, resource=None,
                 max_version=PROTOCOL_VERSION, compress="auto",
                 compress_min=None, session=None, session_name=None,
                 require_session=False, relay=False):
        super().__init__()
        if daemon is not None:
            # a daemon instance is same-host by construction; prefer
            # its AF_UNIX listener — bulk relay traffic then skips the
            # loopback TCP stack on both legs
            address = getattr(daemon, "unix_address", None) \
                or daemon.address
        self._join_token = None
        if session is not None:
            if address is None:
                address = session.address
            self._join_token = session.token
        if address is None:
            raise ValueError(
                "daemon link needs a daemon or its address; "
                "start an IbisDaemon first (paper Sec. 5 step 3)"
            )
        self.resource = resource
        self._compress = compress
        self._compress_min = compress_min
        self._relay_requested = bool(relay)
        self._session_name = session_name
        self._require_session = require_session or session is not None
        self.session_id = None
        self.session_token = None

        if isinstance(address, str) and hasattr(socket, "AF_UNIX"):
            self._sock = socket.socket(
                socket.AF_UNIX, socket.SOCK_STREAM
            )
            self._sock.connect(address)
        else:
            self._sock = socket.create_connection(tuple(address))
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        self._reader = threading.Thread(
            target=self._read_responses, daemon=True
        )
        self._reader.start()

        self.wire_version = self._negotiate(max_version)

    # -- plumbing ---------------------------------------------------------------

    def _compress_offer(self):
        """The codec list offered in the hello; WAN-profile only under
        ``"auto"`` (paper economics: compress where the modeled link is
        the bottleneck, never the same-host loopback)."""
        if self._compress == "auto":
            if self.resource in _LOCAL_RESOURCES or self.resource is None:
                return []
            return available_codecs()
        return resolve_compress_offer(self._compress)

    def _hello_caps(self):
        caps = {}
        # a relay link defers compression to the END-TO-END hello with
        # the pilot (the daemon only splices frames, it must not own a
        # codec); everything else negotiates with the daemon as before
        offer = [] if self._relay_requested else self._compress_offer()
        if offer:
            caps["compress"] = offer
            if self._compress_min is not None:
                caps["compress_min"] = int(self._compress_min)
        if self._relay_requested:
            caps["relay"] = True
        session = {}
        if self._join_token is not None:
            session["join"] = self._join_token
        if self._session_name is not None:
            session["name"] = self._session_name
        if session:
            caps["session"] = session
        return caps

    def _negotiate(self, max_version):
        """Hello handshake; a v1 daemon answers with an error frame,
        which is the downgrade signal.  A pre-capability daemon ignores
        the offer slot and acks a bare version — compression then
        stays off and no session is granted.

        A link that REQUIRES a session (join token or ``connect()``)
        must not downgrade: the daemon's rejection (bad token, session
        limit) surfaces as the :class:`RemoteError` it is."""
        if max_version < 2:
            return 1
        caps = self._hello_caps()
        hello = ("hello", max_version) + ((caps,) if caps else ())
        try:
            ack = self._request(hello).result(timeout=10)
        except RemoteError:
            if self._require_session:
                raise
            return 1
        if isinstance(ack.get("caps"), dict):
            self.wire_caps = ack["caps"]
        granted = ack.get("session")
        if isinstance(granted, dict):
            self.session_id = granted.get("id")
            self.session_token = granted.get("token")
        self._wire.version = min(max_version, ack["version"])
        self._apply_negotiated_caps()
        return self._wire.version

    def _request(self, body):
        """Send a daemon-surface request (echo/status/start_worker/...)."""
        request = AsyncRequest()
        req_id = self._register_pending(request)
        self._send_frame_locked((body[0], req_id) + tuple(body[1:]))
        return request

    # -- daemon surface ---------------------------------------------------------

    def echo(self, payload):
        """Round-trip *payload* through the daemon (bench surface)."""
        return self._request(("echo", payload)).result()

    def status(self):
        """The daemon's per-session status dict for this connection."""
        return self._request(("status",)).result(timeout=10)

    def close_session(self):
        """Ask the daemon to stop this session's pilots and drop it."""
        try:
            return self._request(("close_session",)).result(timeout=10)
        except (ProtocolError, RemoteError, TimeoutError):
            return False

    def close(self):
        """Drop the connection (the daemon reaps an empty session)."""
        self._stopped = True
        try:
            self._sock.close()
        except OSError:
            pass

    stop = close


class DistributedChannel(_DaemonLink):
    """Channel from the coupler to a daemon-managed (remote) worker."""

    def __init__(self, interface_factory, daemon=None, address=None,
                 resource="local", node_count=1,
                 max_version=PROTOCOL_VERSION, worker_mode=None,
                 compress="auto", compress_min=None, session=None,
                 relay=False, autobatch="auto", shm_min=None,
                 pilot_capabilities=True, stop_timeout=None,
                 daemon_host=None, daemon_port=None,
                 _from_session=False):
        if daemon_host is not None or daemon_port is not None:
            _warn_deprecated(
                "daemon-host-port",
                "the daemon_host/daemon_port kwargs are deprecated; "
                "pass address=(host, port) or use "
                "repro.distributed.connect()",
            )
            if address is None and daemon is None:
                address = (daemon_host or "127.0.0.1", int(daemon_port))
        if session is not None:
            _from_session = True
        if not _from_session:
            _warn_deprecated(
                "direct-distributed-channel",
                "constructing DistributedChannel directly is "
                "deprecated; use repro.distributed.connect() and "
                "Session.code() to place pilots",
            )
        super().__init__(
            daemon=daemon, address=address, resource=resource,
            max_version=max_version, compress=compress,
            compress_min=compress_min, session=session,
            relay=relay,
        )
        self.node_count = int(node_count)
        self.worker_mode = worker_mode
        # end-to-end shm threshold: rides the relay hello's shm offer so
        # the PILOT applies the same cutoff as this side (only
        # meaningful for worker_mode="shm" through the splice)
        self._shm_min = shm_min
        if stop_timeout is not None:
            self._stop_timeout = float(stop_timeout)
        #: True once this connection was flipped into the daemon's
        #: zero-decode splice (frames travel client <-> pilot directly)
        self.relayed = False
        self._pilot_capabilities = bool(pilot_capabilities)
        # relay needs BOTH sides: the request and the daemon's ack (an
        # old daemon that never saw the capability keeps the decoded
        # dispatcher path — graceful degrade, compression stays off
        # because the relay hello withheld the offer)
        relay_active = bool(relay) and bool(self.wire_caps.get("relay"))

        factory_bytes = pickle.dumps(interface_factory, protocol=5)
        # worker_mode=None keeps the pre-subprocess 3-tuple shape, so
        # this client still talks to older daemons (which then apply
        # their own default mode); a granted session id rides after the
        # mode so the daemon can pin the pilot to this tenant
        start = ("start_worker", factory_bytes, resource, node_count)
        if relay_active:
            options = {"relay": True}
            if not self._pilot_capabilities:
                options["worker_capabilities"] = False
            start += (worker_mode, self.session_id, options)
        else:
            if worker_mode is not None or self.session_id is not None:
                start += (worker_mode,)
            if self.session_id is not None:
                start += (self.session_id,)
        self.worker_id = self._request(start).result()
        if relay_active:
            self._attach_relay(worker_mode)
            self._maybe_enable_autobatch(autobatch)
        elif autobatch not in (None, False, "auto"):
            # explicit autobatch works on the decoded path too: the
            # daemon dispatcher understands mcall frames
            self._enable_autobatch(autobatch)

    # -- relay attach -------------------------------------------------------

    def _attach_relay(self, worker_mode):
        """Flip this connection into the daemon's zero-decode splice,
        then negotiate transport END TO END with the pilot.

        After the daemon acks ``attach_worker`` every subsequent frame
        travels client <-> pilot verbatim, so the pilot's
        :func:`~repro.rpc.channel.worker_loop` answers a second,
        worker-shape hello through the splice: compression for
        WAN-profile resources, shm arenas when a same-host shm pilot
        can attach them (zero wire copies end to end), and AMCX
        cancellation (the daemon's decoded path never grants it).
        """
        self._request(
            ("attach_worker", self.worker_id, self.session_id)
        ).result(timeout=30)
        self.relayed = True
        shm_segment_size = None
        if worker_mode == "shm":
            # the pilot only ACKS the arenas it can actually attach
            # (same host, creator alive) — offering is always safe
            from ..rpc.shm import DEFAULT_SEGMENT_SIZE

            shm_segment_size = DEFAULT_SEGMENT_SIZE
        caps = self._offer_capabilities(
            compress=self._compress_offer() or None,
            compress_min=self._compress_min,
            shm_segment_size=shm_segment_size,
            shm_min=self._shm_min,
            cancellable=True,
        )
        hello = ("hello", PROTOCOL_VERSION, (),
                 {"caps": caps} if caps else {})
        try:
            ack = self._request(hello).result(timeout=30)
        except BaseException:
            self._release_shm()
            raise
        if isinstance(ack, dict) and "version" in ack:
            self.wire_caps = ack.get("caps") or {}
            self._wire.version = min(PROTOCOL_VERSION, ack["version"])
        else:
            # pre-v2 pilot acked nothing; stay on v1 framing, no caps
            self.wire_caps = {}
            self._wire.version = 1
        self._apply_negotiated_caps()

    def _maybe_enable_autobatch(self, autobatch):
        if autobatch in (None, False):
            return
        if autobatch == "auto":
            # adaptive window only where round trips dominate: the
            # modeled WAN link of a non-local resource
            if self.resource in _LOCAL_RESOURCES or \
                    self.resource is None:
                return
            self._enable_autobatch(True)
        else:
            self._enable_autobatch(autobatch)

    # -- plumbing ---------------------------------------------------------------

    def _call_message(self, call_id, method, args, kwargs):
        if self.relayed:
            # spliced frames are read by the pilot's worker_loop, so
            # they use the plain worker shape — no worker id, no sid
            return ("call", call_id, method, args, kwargs)
        message = ("call", call_id, self.worker_id, method, args, kwargs)
        if self.session_id is not None:
            message += (self.session_id,)
        return message

    def _mcall_message(self, call_id, calls):
        if self.relayed:
            return ("mcall", call_id, calls)
        message = ("mcall", call_id, self.worker_id, calls)
        if self.session_id is not None:
            message += (self.session_id,)
        return message

    def stop(self):
        if self.relayed:
            # the pilot answers the stop itself; the daemon's
            # downstream pump then sees EOF and retires the worker
            if self._begin_stop():
                self._release_shm()
            return
        self._legacy_stop()

    def _legacy_stop(self):
        # _stopped may already be set by the reader's loss cleanup;
        # the socket still needs releasing in that case
        if not self._stopped:
            stop = ("stop_worker", self.worker_id)
            if self.session_id is not None:
                stop += (self.session_id,)
            try:
                self._request(stop).result(timeout=10)
            except (ProtocolError, RemoteError, TimeoutError):
                pass
            self._stopped = True
        try:
            self._sock.close()
        except OSError:
            pass


register_channel_factory("ibis", DistributedChannel)
register_channel_factory("distributed", DistributedChannel)
