"""Distributed AMUSE: daemon, sessions, ibis channel, pilots, jungle
runner.

The paper's jungle-computing model (Sec. 5) runs simulations through a
local **Ibis daemon**: the coupler script talks to a loopback gateway
which starts and proxies workers on whatever resources are reachable.
This package reproduces that stack and extends it into a multi-tenant
service:

Quick start — run the daemon as a service, then connect::

    $ python -m repro.distributed.daemon --warm-pool 2 --idle-timeout 300
    ibis daemon listening on 127.0.0.1:43211

    from repro.distributed import connect

    with connect("127.0.0.1:43211") as session:
        gravity = session.code(PhiGRAPE, conv, channel_type="shm")
        gravity.evolve_model(1 | nbody_system.time)
        print(session.status()["session"]["accounting"])

Public surface:

* :func:`connect` → :class:`Session` — THE way to place pilots on a
  daemon.  Every session is an isolated namespace: its pilots are
  addressable only through connections holding its token, its calls
  pass fair admission control (FIFO within the session, round-robin
  across sessions), and ``Session.status()`` reports its accounting
  (calls, bytes, compute/queue seconds, warm-pool hits) next to the
  merged client-side transport stats.
* :class:`IbisDaemon` — the server.  Embed it (``with IbisDaemon(...)
  as daemon:``) or run ``python -m repro.distributed.daemon`` with
  ``--warm-pool N`` (pre-spawned subprocess workers that cut
  time-to-first-evolve), ``--max-sessions M`` and ``--idle-timeout S``.
* :class:`DistributedChannel` — the wire layer underneath a session's
  pilots.  Constructing it directly (the pre-session entry point)
  still works but emits a :class:`DeprecationWarning`; each such
  channel becomes its own single-tenant session.
* The modeled wide-area side: :class:`DistributedAmuse`,
  :class:`ResourceSpec`, :class:`Pilot`, :class:`JungleRunner`,
  :class:`FaultPolicy`, :class:`WorkerDiedError` and
  :func:`discover_placement` — reservation/queueing semantics of the
  paper's testbed, independent of the live daemon.
"""

from .channel import DistributedChannel
from .core import (
    DistributedAmuse,
    FaultPolicy,
    JungleRunner,
    Pilot,
    ResourceSpec,
    WorkerDiedError,
)
from .discovery import discover_placement
from .session import Session, connect


def __getattr__(name):
    # IbisDaemon loads lazily so `python -m repro.distributed.daemon`
    # does not re-import the module runpy is about to execute (the
    # sys.modules RuntimeWarning)
    if name == "IbisDaemon":
        from .daemon import IbisDaemon

        return IbisDaemon
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "connect",
    "Session",
    "IbisDaemon",
    "DistributedChannel",
    "DistributedAmuse",
    "ResourceSpec",
    "Pilot",
    "JungleRunner",
    "FaultPolicy",
    "WorkerDiedError",
    "discover_placement",
]
