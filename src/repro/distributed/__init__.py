"""Distributed AMUSE: daemon, ibis channel, pilots, jungle runner."""

from .channel import DistributedChannel
from .core import (
    DistributedAmuse,
    FaultPolicy,
    JungleRunner,
    Pilot,
    ResourceSpec,
    WorkerDiedError,
)
from .daemon import IbisDaemon
from .discovery import discover_placement

__all__ = [
    "IbisDaemon",
    "DistributedChannel",
    "DistributedAmuse",
    "ResourceSpec",
    "Pilot",
    "JungleRunner",
    "FaultPolicy",
    "WorkerDiedError",
    "discover_placement",
]
