"""Multi-session scheduling for the Ibis daemon.

The paper's daemon serves ONE script that owns every resource; the
service the roadmap aims at has to host many concurrent users on a
shared machine.  This module holds both halves of that upgrade:

Server primitives (used by :class:`~repro.distributed.daemon.IbisDaemon`):

* :class:`SessionState` — one tenant's namespace: its pilots, its
  join token (minted at hello time, unguessable), and its accounting
  (calls, errors, bytes in/out, compute- and queue-seconds, warm-pool
  hits).  Worker ids are only resolvable through the owning session,
  so one tenant can never address another's pilots.
* :class:`AdmissionController` — fair admission of pilot calls when
  sessions outnumber cores: FIFO within a session, round-robin across
  sessions, with a queue-delay warning once load exceeds the Gateway
  exemplar's 0.8 threshold.
* :class:`WarmWorkerPool` — pre-spawned, parked subprocess workers
  (interpreter up, ``--preload`` imports done) that a ``start_worker``
  claims and activates, skipping the interpreter/import cost that
  dominates cold time-to-first-evolve.

Client surface (the redesigned entry point)::

    from repro.distributed import connect

    with connect(daemon_address) as session:
        gravity = session.code(PhiGRAPE, conv, channel_type="shm")
        gravity.evolve_model(1 | nbody_system.time)
        print(session.status()["session"]["accounting"])

:func:`connect` opens a control link, is granted a session at hello,
and returns a :class:`Session`; ``Session.code`` is the one way to
place pilots (every pilot channel it opens joins the same session via
the token), ``Session.status`` carries the daemon-side accounting plus
the merged client-side transport stats, and ``Session.close`` stops
the tenant's pilots and releases the session.
"""

from __future__ import annotations

import functools
import logging
import os
import threading
import time
from collections import deque

from ..rpc.channel import merge_transport_stats
from ..rpc.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    new_session_id,
)

__all__ = [
    "AdmissionController",
    "Session",
    "SessionState",
    "WarmWorkerPool",
    "connect",
]

logger = logging.getLogger("repro.distributed.sessions")

#: per-session accounting surface; every key always present
ACCOUNTING_KEYS = (
    "calls", "errors", "bytes_in", "bytes_out", "compute_s",
    "queue_s", "warm_hits", "cold_spawns", "queue_warnings",
    "relay_frames",
)


# -- server side ------------------------------------------------------------


class SessionState:
    """Server-side record of one tenant session.

    Owns the pilot namespace (``workers``/``worker_meta`` keyed by
    worker id) and the accounting dict.  Mutation happens under the
    daemon's lock; the join ``token`` is the only credential that lets
    a second connection attach to the same namespace.
    """

    def __init__(self, sid=None, name=None):
        self.sid = sid or new_session_id()
        self.name = name
        self.token = new_session_id()
        self.workers = {}
        self.worker_meta = {}
        self.connections = 0
        self.active_calls = 0
        self.created = time.monotonic()
        self.last_activity = self.created
        self.accounting = {key: 0 for key in ACCOUNTING_KEYS}
        self.accounting["compute_s"] = 0.0
        self.accounting["queue_s"] = 0.0

    def touch(self):
        self.last_activity = time.monotonic()

    def idle_for(self):
        return time.monotonic() - self.last_activity

    def snapshot(self):
        """Status-endpoint view of this session (safe to pickle)."""
        accounting = {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in self.accounting.items()
        }
        return {
            "id": self.sid,
            "name": self.name,
            "workers": dict(self.worker_meta),
            "connections": self.connections,
            "active_calls": self.active_calls,
            "idle_s": round(self.idle_for(), 3),
            "age_s": round(time.monotonic() - self.created, 3),
            "accounting": accounting,
        }


class AdmissionController:
    """Fair admission of pilot calls when sessions outnumber slots.

    ``slots`` defaults to the core count.  Waiters queue FIFO within
    their session; grants rotate round-robin across sessions with
    pending work, so one chatty tenant cannot starve the others.
    ``acquire`` reports the queue delay and whether the controller was
    over the ``warn_load`` threshold (load = (active + waiting) /
    slots > 0.8 by default — the Gateway exemplar's warning line).

    ``close`` flips the controller into shutdown mode: queued waiters
    are cancelled, new arrivals are rejected, and the caller blocks —
    bounded — until in-flight calls drain.  This is what makes daemon
    shutdown deterministic instead of racing the reply threads.
    """

    def __init__(self, slots=None, warn_load=0.8):
        self.slots = int(slots) if slots else (os.cpu_count() or 4)
        self.warn_load = float(warn_load)
        self._cond = threading.Condition()
        self._queues = {}          # sid -> deque of waiting tickets
        self._rr = deque()         # sids with waiters, in grant order
        self._active = 0
        self._closed = False

    def _load_locked(self):
        waiting = sum(len(queue) for queue in self._queues.values())
        return (self._active + waiting) / self.slots

    @property
    def load(self):
        with self._cond:
            return self._load_locked()

    def stats(self):
        with self._cond:
            waiting = sum(len(q) for q in self._queues.values())
            return {
                "slots": self.slots,
                "active": self._active,
                "waiting": waiting,
                "load": round(self._load_locked(), 4),
            }

    def _grantable(self, sid, ticket):
        return (
            self._active < self.slots
            and self._rr
            and self._rr[0] == sid
            and self._queues[sid][0] is ticket
        )

    def _forget(self, sid, ticket):
        queue = self._queues.get(sid)
        if queue is not None:
            try:
                queue.remove(ticket)
            except ValueError:
                pass
            if not queue:
                del self._queues[sid]
                try:
                    self._rr.remove(sid)
                except ValueError:
                    pass

    def acquire(self, sid, timeout=None):
        """Wait for a slot; returns ``(queue_delay_s, overloaded)``.

        Raises :class:`RuntimeError` when the controller is (or goes)
        closed, :class:`TimeoutError` past *timeout*.
        """
        ticket = object()
        start = time.monotonic()
        deadline = None if timeout is None else start + timeout
        with self._cond:
            if self._closed:
                raise RuntimeError("admission controller closed")
            # load is judged BEFORE our own ticket joins: a single
            # call on an idle single-slot daemon is not overload
            overloaded = self._load_locked() > self.warn_load
            queue = self._queues.setdefault(sid, deque())
            queue.append(ticket)
            if sid not in self._rr:
                self._rr.append(sid)
            while not self._grantable(sid, ticket):
                if self._closed:
                    self._forget(sid, ticket)
                    raise RuntimeError("daemon shutting down")
                remaining = None if deadline is None else \
                    deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self._forget(sid, ticket)
                    raise TimeoutError(
                        f"admission wait exceeded {timeout}s"
                    )
                self._cond.wait(remaining)
            # grant: consume the ticket and rotate the session to the
            # tail so the next grant goes to a DIFFERENT session
            queue.popleft()
            self._rr.popleft()
            if queue:
                self._rr.append(sid)
            else:
                del self._queues[sid]
            self._active += 1
            self._cond.notify_all()
            return time.monotonic() - start, overloaded

    def release(self):
        with self._cond:
            self._active -= 1
            self._cond.notify_all()

    def close(self, drain_timeout=5.0):
        """Reject new work, cancel waiters, drain active calls.

        Returns True when every in-flight call finished within the
        bound (the deterministic-shutdown guarantee the old daemon
        lacked)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            deadline = time.monotonic() + drain_timeout
            while self._active > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            drained = self._active == 0
            self._queues.clear()
            self._rr.clear()
            return drained


class WarmWorkerPool:
    """Pool of pre-spawned, parked subprocess workers.

    Each entry is a :class:`~repro.rpc.subproc.SubprocessChannel`
    built with ``warm=True``: the child interpreter is up and its
    ``--preload`` imports are done, but no interface factory has been
    shipped yet.  ``claim`` hands such a channel to a ``start_worker``,
    which activates it with the tenant's factory — time-to-first-evolve
    then skips interpreter startup and the heavy imports entirely
    (``benchmarks/bench_sessions.py`` measures the ratio).

    A background filler keeps the pool at *size*; parked children are
    health-checked at claim time (a silently-died child is discarded,
    never handed out).
    """

    #: modules a parked worker imports before connecting back; numpy
    #: plus the codes package dominate cold import time
    DEFAULT_PRELOAD = ("numpy", "repro.codes")

    def __init__(self, size, preload=None, spawn_timeout=30.0):
        self.size = int(size)
        self.preload = list(
            self.DEFAULT_PRELOAD if preload is None else preload
        )
        self._spawn_timeout = float(spawn_timeout)
        self._idle = deque()
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stopped = False
        self._filler = None
        self.claimed = 0
        if self.size > 0:
            self._filler = threading.Thread(
                target=self._fill_loop, name="warm-pool-filler",
                daemon=True,
            )
            self._filler.start()

    def _spawn(self):
        from ..rpc.subproc import SubprocessChannel

        return SubprocessChannel(
            warm=True, preload=self.preload,
            spawn_timeout=self._spawn_timeout,
        )

    def _fill_loop(self):
        while not self._stopped:
            with self._lock:
                deficit = self.size - len(self._idle)
            if deficit <= 0:
                self._wake.wait(timeout=1.0)
                self._wake.clear()
                continue
            try:
                channel = self._spawn()
            except Exception:  # noqa: BLE001 - pool refill best-effort
                logger.exception("warm pool spawn failed")
                time.sleep(0.5)
                continue
            with self._lock:
                stopped = self._stopped
                if not stopped:
                    self._idle.append(channel)
            if stopped:
                channel.stop()
                return

    @property
    def idle_count(self):
        with self._lock:
            return len(self._idle)

    def stats(self):
        with self._lock:
            return {
                "size": self.size,
                "idle": len(self._idle),
                "claimed": self.claimed,
                "preload": list(self.preload),
            }

    def ready(self, count=None, timeout=10.0):
        """Block until *count* (default: pool size) workers are parked
        — lets benches exclude fill time from warm measurements."""
        want = min(self.size, self.size if count is None else count)
        deadline = time.monotonic() + timeout
        while self.idle_count < want:
            if self._stopped or time.monotonic() > deadline:
                return False
            time.sleep(0.01)
        return True

    def claim(self):
        """Pop a healthy parked channel, or None (caller spawns cold).

        Health check: a parked child that already exited is reaped and
        skipped."""
        while True:
            with self._lock:
                if self._stopped or not self._idle:
                    return None
                channel = self._idle.popleft()
                self.claimed += 1
            self._wake.set()
            if channel.alive():
                return channel
            with self._lock:
                self.claimed -= 1
            channel.stop()

    def stop(self):
        """Discard every parked worker (socket-close discard — the
        parked child exits cleanly on EOF) and stop refilling."""
        with self._lock:
            self._stopped = True
            idle = list(self._idle)
            self._idle.clear()
        self._wake.set()
        for channel in idle:
            try:
                channel.stop()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        if self._filler is not None:
            self._filler.join(timeout=self._spawn_timeout)


# -- client side ------------------------------------------------------------


def _format_address(address):
    """Human-readable form of a daemon address (TCP pair or the
    abstract AF_UNIX name, shown with ``@`` for its NUL byte)."""
    if isinstance(address, str):
        return address.replace("\0", "@", 1)
    return f"{address[0]}:{address[1]}"


def _resolve_address(target):
    """Accept an IbisDaemon, a ``(host, port)`` pair or "host:port".

    A daemon instance resolves to its abstract AF_UNIX address when it
    has one — the caller holds an in-process handle, so it is on the
    daemon's host by construction and the Unix-socket fast path is
    always valid (and measurably faster for relayed bulk transfers).
    """
    address = getattr(target, "address", None)
    if address is not None and not isinstance(target, (tuple, list, str)):
        unix = getattr(target, "unix_address", None)
        if unix:
            return unix
        return tuple(address)
    if isinstance(target, str):
        host, _, port = target.rpartition(":")
        if not port:
            raise ValueError(
                f"daemon address {target!r} is not 'host:port'"
            )
        return (host or "127.0.0.1", int(port))
    host, port = target
    return (str(host), int(port))


class Session:
    """A tenant's handle on a multi-session daemon.

    Created by :func:`connect`; holds the control link plus the join
    token every pilot channel uses to attach to the same daemon-side
    namespace.  ``code()`` is the one way to place pilots.
    """

    def __init__(self, link, address, name=None, worker_mode=None,
                 compress="auto", relay=False):
        self._link = link
        self.address = address if isinstance(address, str) \
            else tuple(address)
        self.name = name
        self.id = link.session_id
        self.token = link.session_token
        self.default_worker_mode = worker_mode
        self.default_compress = compress
        self.default_relay = bool(relay)
        self._placed = []
        # closed-pilot accumulator: (channel, last good transport
        # snapshot) for EVERY channel this session ever observed, so
        # status() keeps counting pilots that were stopped or replaced
        # (restart_worker swaps item.channel) mid-session.  The strong
        # channel ref pins id() uniqueness for the dict key.
        self._transport_seen = {}
        #: per-campaign accounting fed by CampaignRunner members
        self._campaigns = {}
        self._lock = threading.Lock()
        self._closed = False

    def _check_open(self):
        if self._closed:
            raise ProtocolError(f"session {self.id} is closed")

    def _channel_spec(self, worker_mode=None, channel_options=None):
        """``(channel_type, channel_options)`` pair that routes a
        :class:`~repro.codes.highlevel.CommunityCode` through this
        session (used by its ``session=`` constructor kwarg)."""
        options = dict(channel_options or {})
        options.setdefault(
            "worker_mode", worker_mode or self.default_worker_mode
        )
        options.setdefault("compress", self.default_compress)
        options.setdefault("relay", self.default_relay)
        options["session"] = self
        return "ibis", options

    def _adopt(self, placed):
        with self._lock:
            self._placed.append(placed)
        return placed

    def code(self, target, *args, channel_type=None, worker_mode=None,
             resource="local", node_count=1, channel_options=None,
             **kwargs):
        """Place a pilot in this session.

        *target* is either a :class:`~repro.codes.highlevel.
        CommunityCode` subclass — instantiated with its channel routed
        through this session, positional/keyword args forwarded — or a
        plain interface factory, for which the pilot channel itself is
        returned.  *channel_type* (alias *worker_mode*) picks the
        daemon-side pilot mode: "thread", "subprocess" or "shm".
        """
        self._check_open()
        mode = worker_mode or channel_type
        options = dict(channel_options or {})
        options.setdefault("resource", resource)
        options.setdefault("node_count", node_count)
        from ..codes.highlevel import CommunityCode
        if isinstance(target, type) and issubclass(target, CommunityCode):
            placed = target(
                *args, session=self, channel_type=mode,
                channel_options=options, **kwargs
            )
        else:
            from .channel import DistributedChannel

            if args or kwargs:
                # constructor args travel inside the pickled factory
                target = functools.partial(target, *args, **kwargs)
            _, options = self._channel_spec(mode, options)
            placed = DistributedChannel(target, **options)
        return self._adopt(placed)

    def echo(self, payload):
        """Round-trip *payload* over the control link (bench surface)."""
        self._check_open()
        return self._link.echo(payload)

    def note_campaign_member(self, campaign, status, wall_s,
                             restarts=0):
        """Bill one ensemble-campaign member outcome to this session.

        Called by :class:`~repro.ensemble.runner.CampaignRunner` as
        members finish; the totals surface under ``status()``'s
        ``campaigns`` key so daemon-side accounting and campaign
        accounting read off the same endpoint.
        """
        if status not in ("ok", "failed", "cached"):
            raise ValueError(f"unknown member status {status!r}")
        with self._lock:
            entry = self._campaigns.setdefault(str(campaign), {
                "members": 0, "ok": 0, "failed": 0, "cached": 0,
                "wall_s": 0.0, "restarts": 0,
            })
            entry["members"] += 1
            entry[status] += 1
            entry["wall_s"] += float(wall_s)
            entry["restarts"] += int(restarts)

    def _transport_snapshots(self):
        """Refresh and return every channel snapshot, live or retired.

        Live channels are re-polled; a channel whose stats can no
        longer be read — or that was replaced by ``restart_worker``
        and is no longer reachable through ``_placed`` — keeps its
        last good snapshot, so merged totals never go backwards when
        a pilot stops mid-session.
        """
        for item in self._placed:
            channel = getattr(item, "channel", item)
            try:
                snapshot = dict(channel.transport_stats)
            except Exception:  # noqa: BLE001 - keep last good snapshot
                continue
            self._transport_seen[id(channel)] = (channel, snapshot)
        return [
            snapshot for _, snapshot in self._transport_seen.values()
        ]

    def status(self):
        """Daemon-side accounting for this session plus the merged
        client-side transport stats of every channel it opened —
        including pilots already stopped or respawned, via the
        closed-pilot accumulator."""
        self._check_open()
        info = self._link.status()
        with self._lock:
            stats = (
                [self._link.transport_stats]
                + self._transport_snapshots()
            )
            info["campaigns"] = {
                name: dict(entry)
                for name, entry in self._campaigns.items()
            }
        info["client_transport"] = merge_transport_stats(stats)
        return info

    def close(self, stop_codes=True):
        """Stop this tenant's pilots and release the daemon session.

        Idempotent; with ``stop_codes=False`` only the session is
        released (pilots must already be stopped)."""
        if self._closed:
            return
        self._closed = True
        if stop_codes:
            with self._lock:
                placed = list(self._placed)
                self._placed.clear()
            for item in placed:
                stop = getattr(item, "stop", None)
                if stop is None:
                    continue
                try:
                    stop()
                except Exception:  # noqa: BLE001 - teardown best-effort
                    pass
        self._link.close_session()
        self._link.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return (
            f"<Session {self.id} ({state}) at "
            f"{_format_address(self.address)}>"
        )


def connect(address, *, name=None, worker_mode=None, compress="auto",
            relay=False, max_version=PROTOCOL_VERSION):
    """Open a :class:`Session` against a running Ibis daemon.

    *address* is an :class:`~repro.distributed.daemon.IbisDaemon`
    instance, a ``(host, port)`` pair, or a ``"host:port"`` string
    (the form printed by ``python -m repro.distributed.daemon``).
    *name* labels the session in ``status()`` output; *worker_mode*,
    *compress* and *relay* become the session's defaults for pilots
    placed via :meth:`Session.code` (``relay=True`` routes pilot
    traffic through the daemon's zero-decode splice instead of the
    decoded dispatcher).

    Raises :class:`~repro.rpc.protocol.RemoteError` when the daemon
    rejects the session (``--max-sessions`` reached) and
    :class:`~repro.rpc.protocol.ProtocolError` against a pre-session
    daemon.
    """
    from .channel import _DaemonLink

    addr = _resolve_address(address)
    link = _DaemonLink(
        address=addr, max_version=max_version,
        session_name=name, require_session=True,
    )
    if link.session_id is None:
        link.close()
        raise ProtocolError(
            f"daemon at {_format_address(addr)} did not grant a "
            "session (pre-session daemon?)"
        )
    return Session(
        link, addr, name=name, worker_mode=worker_mode,
        compress=compress, relay=relay,
    )
