"""Distributed AMUSE — gluing the coupler to the jungle (paper Sec. 5).

This module reproduces the orchestration side of the prototype:

* :class:`ResourceSpec` — step 2 of the paper's usage recipe: "Specify
  some basic information such as hostname and type of middleware for
  each resource used in a configuration file";
* :class:`Pilot` — a reservation of nodes on a resource, deployed
  through IbisDeploy/PyGAT with a proxy process that joins the IPL pool
  ("Workers are started by the daemon with JavaGAT, while wide-area
  communication is done using IPL ...  the daemon uses IPL to
  communicate ... to a proxy process running alongside the worker");
* :class:`DistributedAmuse` — the user-facing object tying resources,
  pilots, deployment and monitoring together;
* :class:`JungleRunner` — executes the *real* coupled simulation while
  charging *modeled* time per iteration from the calibrated cost model,
  which is how the Sec. 6.2 scenario table is regenerated;
* fault behaviour: by default a dying pilot crashes the whole
  simulation ("If a reservation ends ... we cannot recover from this
  fault, and the entire simulation crashes"), while
  ``FaultPolicy.RESTART`` implements the transparent-replacement future
  work the paper sketches.
"""

from __future__ import annotations

import enum

from ..ibis.deploy import ApplicationDescription, Deploy
from ..ibis.gat import JobState
from ..ibis.ipl import Ibis, ONE_TO_ONE_OBJECT
from ..jungle.perfmodel import CostModel, IterationWorkload, Placement

__all__ = [
    "ResourceSpec",
    "Pilot",
    "DistributedAmuse",
    "JungleRunner",
    "FaultPolicy",
    "WorkerDiedError",
]


class WorkerDiedError(RuntimeError):
    """A worker's resource disappeared and the policy is CRASH."""


class FaultPolicy(enum.Enum):
    #: paper behaviour: "the entire simulation crashes"
    CRASH = "crash"
    #: paper future work: "transparently find a replacement machine"
    RESTART = "restart"


class ResourceSpec:
    """One entry of the user's resource configuration file."""

    def __init__(self, name, site_name, middleware=None, node_count=1,
                 needs_gpu=False):
        self.name = name
        self.site_name = site_name
        self.middleware = middleware
        self.node_count = int(node_count)
        self.needs_gpu = bool(needs_gpu)

    def __repr__(self):
        return f"<ResourceSpec {self.name} -> {self.site_name}>"


class Pilot:
    """A node reservation running a worker proxy on a resource."""

    def __init__(self, owner, role, resource, deploy_job):
        self.owner = owner
        self.role = role
        self.resource = resource
        self.deploy_job = deploy_job
        self.proxy_ibis = None
        self.alive = False

    @property
    def hosts(self):
        return self.deploy_job.hosts

    @property
    def state(self):
        return self.deploy_job.state

    def kill(self, reason="reservation ended"):
        """The scheduler kills the worker (paper's failure case)."""
        self.alive = False
        if self.proxy_ibis is not None:
            self.owner.deploy.registry.declare_dead(
                self.proxy_ibis.identifier
            )
        self.deploy_job.gat_job.cancel()
        self.owner._on_pilot_death(self, reason)

    def __repr__(self):
        return f"<Pilot {self.role} on {self.resource.name} " \
               f"alive={self.alive}>"


class DistributedAmuse:
    """User-facing distributed-AMUSE object (jungle side).

    Typical flow (mirrors the paper's 4-step recipe)::

        d = DistributedAmuse(jungle, client_host)   # daemon running
        d.add_resource(ResourceSpec("LGM", "LGM (LU)", "ssh", 1, True))
        d.new_pilot("gravity", "LGM")
        d.wait_for_pilots()
        placement = d.placement()                    # -> CostModel
    """

    def __init__(self, jungle, client_host, pool="amuse",
                 fault_policy=FaultPolicy.CRASH):
        self.jungle = jungle
        self.client_host = client_host
        self.deploy = Deploy(jungle, client_host, pool=pool)
        self.deploy.initialize()
        self.resources = {}
        self.pilots = {}
        self.fault_policy = fault_policy
        self.fault_log = []
        self.application = ApplicationDescription("amuse")

    # -- resources (paper step 2) ------------------------------------------------

    def add_resource(self, spec):
        if spec.site_name not in self.jungle.sites:
            raise KeyError(f"unknown site {spec.site_name!r}")
        self.resources[spec.name] = spec
        return spec

    # -- pilots ----------------------------------------------------------------------

    def new_pilot(self, role, resource_name, node_count=None,
                  needs_gpu=None):
        """Reserve nodes and start the worker proxy for *role*."""
        spec = self.resources[resource_name]
        site = self.jungle.sites[spec.site_name]
        pilot_ref = {}

        def proxy_body(env, hosts):
            # the proxy joins the IPL pool and listens for worker calls
            pilot = pilot_ref["pilot"]
            pilot.proxy_ibis = Ibis(
                self.deploy.registry, hosts[0], f"{role}-proxy",
                self.deploy.factory,
            )
            pilot.proxy_ibis.create_receive_port(
                ONE_TO_ONE_OBJECT, "worker-calls"
            )
            pilot.alive = True
            try:
                yield env.timeout(float("inf"))
            finally:
                pilot.alive = False

        deploy_job = self.deploy.submit(
            self.application, site, role,
            node_count=node_count or spec.node_count,
            worker_body=proxy_body,
            needs_gpu=spec.needs_gpu if needs_gpu is None else needs_gpu,
        )
        pilot = Pilot(self, role, spec, deploy_job)
        pilot_ref["pilot"] = pilot
        self.pilots[role] = pilot
        return pilot

    def wait_for_pilots(self, timeout_s=3600.0):
        """Advance the DES until every pilot proxy is up, then connect
        the daemon to every proxy through SmartSockets/IPL (this is
        where firewalled workers force reverse/routed connections)."""
        env = self.jungle.env
        deadline = env.now + timeout_s
        while env.now < deadline:
            if all(p.alive for p in self.pilots.values()):
                self._connect_workers()
                return True
            if any(
                p.deploy_job.state == JobState.SUBMISSION_ERROR
                for p in self.pilots.values()
            ):
                return False
            if not env._queue:
                break
            env.run(until=min(deadline, env._queue[0][0]))
        alive = all(p.alive for p in self.pilots.values())
        if alive:
            self._connect_workers()
        return alive

    def _connect_workers(self):
        """Open one IPL connection daemon -> each proxy."""
        env = self.jungle.env
        client = self.deploy.client_ibis
        procs = []
        for pilot in self.pilots.values():
            if pilot.proxy_ibis is None or \
                    getattr(pilot, "send_port", None) is not None:
                continue

            def _connect(pilot=pilot):
                port = client.create_send_port(ONE_TO_ONE_OBJECT)
                yield from port.connect(
                    pilot.proxy_ibis.identifier, "worker-calls"
                )
                pilot.send_port = port
                return port

            procs.append(env.process(_connect()))
        env.run(until=env.now + 60.0)
        return procs

    # -- fault handling --------------------------------------------------------------

    def _on_pilot_death(self, pilot, reason):
        self.fault_log.append(
            (self.jungle.env.now, pilot.role, reason,
             self.fault_policy.value)
        )
        if self.fault_policy is FaultPolicy.RESTART:
            self._restart_pilot(pilot)

    def _restart_pilot(self, dead_pilot):
        """Future-work behaviour: find a replacement resource.

        Prefers a *different* resource with free capacity; falls back
        to resubmitting on the same resource (whose reservation slot
        frees once the kill has been processed).
        """
        role = dead_pilot.role
        needed = dead_pilot.resource.node_count
        candidates = sorted(
            self.resources.values(),
            key=lambda s: s.name == dead_pilot.resource.name,
        )
        for spec in candidates:
            site = self.jungle.sites[spec.site_name]
            suitable = [
                h for h in site.compute_hosts
                if not dead_pilot.resource.needs_gpu or h.has_gpu
            ]
            if len(suitable) < needed:
                continue
            slots = site.middleware().slots
            free = slots.capacity - slots.in_use
            if spec.name != dead_pilot.resource.name and free < needed:
                continue
            self.new_pilot(
                role, spec.name, node_count=needed,
                needs_gpu=dead_pilot.resource.needs_gpu,
            )
            return self.pilots[role]
        return None

    def check_alive(self):
        """Raise per the CRASH policy when any pilot has died."""
        for pilot in self.pilots.values():
            if not pilot.alive:
                if self.fault_policy is FaultPolicy.CRASH:
                    raise WorkerDiedError(
                        f"worker {pilot.role} on "
                        f"{pilot.resource.name} disappeared; the "
                        "simulation crashes (paper Sec. 5 behaviour)"
                    )
                return False
        return True

    # -- cost-model integration ----------------------------------------------------------

    def placement(self, channel="ibis"):
        """Build the cost-model placement from the live pilots."""
        placement = Placement(coupler_host=self.client_host)
        for role, pilot in self.pilots.items():
            host = pilot.hosts[0] if pilot.hosts else \
                self.jungle.sites[pilot.resource.site_name].frontend
            placement.assign(
                role, host,
                nodes=pilot.resource.node_count
                if pilot.deploy_job.gat_job.description.node_count > 1
                else 1,
                channel=channel,
            )
        return placement

    def monitor(self):
        return self.deploy.monitor

    def stop(self):
        self.deploy.cancel_all()


class JungleRunner:
    """Real physics + modeled time (DESIGN.md "execution planes").

    Wraps an :class:`~repro.coupling.embedded.EmbeddedClusterSimulation`
    (small N, real numerics, direct channels) and a
    :class:`DistributedAmuse` placement; each iteration runs the real
    coupled step and advances the jungle clock by the cost model's
    per-iteration estimate, so monitoring/traffic/timing come out
    paper-shaped while the physics output stays real.

    Concurrency-aware accounting (paper Sec. 6.2): when the wrapped
    simulation drifts its models asynchronously (the TaskGraph bridge,
    ``bridge.use_async``), the modeled per-iteration time charges the
    schedule's CRITICAL PATH — per-model kick→drift→kick chains joined
    per edge (``schedule="dag"``) — instead of kick-barrier plus one
    drift barrier; the serialized prototype keeps barrier accounting
    with ``sum()`` over the drifts.  ``overlap_drift=None`` (default)
    infers this from the simulation's bridge; pass True/False to force
    either accounting (True = barrier-with-overlap ``max()``, the
    pre-DAG async coupler), and *schedule* to pin the schedule
    explicitly (e.g. to reproduce the paper's numbers with an async
    simulation).
    """

    def __init__(self, simulation, damuse, workload=None,
                 overlap_drift=None, schedule=None):
        self.simulation = simulation
        self.damuse = damuse
        self.workload = workload or IterationWorkload()
        self.cost_model = CostModel(damuse.jungle)
        #: None = infer live from the bridge on every read, so
        #: toggling bridge.use_async mid-run (ablations) is honored
        self._overlap_override = overlap_drift
        self._schedule_override = schedule
        self.iteration_costs = []

    @property
    def overlap_drift(self):
        if self._overlap_override is not None:
            return bool(self._overlap_override)
        bridge = getattr(self.simulation, "bridge", None)
        return bool(getattr(bridge, "use_async", False))

    @property
    def schedule(self):
        """Coupling-point accounting: "dag" (critical path over
        per-model chains) when the bridge schedules its steps on a
        TaskGraph, "barrier" otherwise.  An explicit
        ``overlap_drift=`` override pins the pre-DAG barrier
        accounting it historically selected."""
        if self._schedule_override is not None:
            return self._schedule_override
        if self._overlap_override is not None:
            return "barrier"
        return "dag" if self.overlap_drift else "barrier"

    def run_iteration(self):
        """One outer iteration; returns the cost breakdown."""
        self.damuse.check_alive()
        if self.simulation is not None:
            self.simulation.evolve_one_iteration()
        costs = self.cost_model.iteration_time(
            self.workload, self.damuse.placement(),
            overlap_drift=self.overlap_drift,
            schedule=self.schedule,
        )
        env = self.damuse.jungle.env
        env.run(until=env.now + costs["total_s"])
        self.iteration_costs.append(costs)
        return costs

    def run(self, n_iterations):
        for _ in range(int(n_iterations)):
            self.run_iteration()
        return self.summary()

    @property
    def modeled_elapsed_s(self):
        return sum(c["total_s"] for c in self.iteration_costs)

    def summary(self):
        n = len(self.iteration_costs)
        per_iter = self.modeled_elapsed_s / n if n else 0.0
        return {
            "iterations": n,
            "modeled_total_s": self.modeled_elapsed_s,
            "modeled_s_per_iteration": per_iter,
            "last_breakdown": (
                self.iteration_costs[-1] if n else None
            ),
        }
