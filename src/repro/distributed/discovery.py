"""Automatic resource discovery — the paper's fifth requirement.

Sec. 4.3: "Fifth and last is a requirement that is high on the wish
list of users: the automatic discovery of suitable resources.  Given
the list of resources a user has access to, ideally, software should
find suitable resources itself, without any intervention from the
user."  Sec. 5: "Automatic discovery of resources is another
requirement that we do not fulfill."

This module implements that future work on top of the calibrated cost
model: given the jungle and the workload, it enumerates sensible
placements (each role on each capable resource, multi-node where the
role can use it) and returns the cheapest one — so the user supplies
only the resource list, exactly as the paper wishes.
"""

from __future__ import annotations

import itertools

from ..jungle.perfmodel import CostModel, IterationWorkload, Placement

__all__ = ["discover_placement", "candidate_hosts"]

#: which roles want a GPU when one exists, and can use many nodes
ROLE_TRAITS = {
    "coupling": {"wants_gpu": True, "max_nodes": 2},
    "gravity": {"wants_gpu": True, "max_nodes": 1},
    "hydro": {"wants_gpu": False, "max_nodes": 8},
    "se": {"wants_gpu": False, "max_nodes": 1},
}


def candidate_hosts(jungle, role, allowed_sites=None):
    """(host, nodes) candidates for *role* across the jungle."""
    traits = ROLE_TRAITS[role]
    candidates = []
    for site in jungle.sites.values():
        if allowed_sites is not None and site.name not in allowed_sites:
            continue
        hosts = site.compute_hosts
        gpu_hosts = [h for h in hosts if h.has_gpu]
        if traits["wants_gpu"] and gpu_hosts:
            candidates.append((gpu_hosts[0], 1))
            if traits["max_nodes"] > 1 and len(gpu_hosts) > 1:
                candidates.append(
                    (gpu_hosts[0],
                     min(traits["max_nodes"], len(gpu_hosts)))
                )
            continue
        if not hosts:
            continue
        candidates.append((hosts[0], 1))
        if traits["max_nodes"] > 1 and len(hosts) > 1:
            candidates.append(
                (hosts[0], min(traits["max_nodes"], len(hosts)))
            )
    return candidates


def discover_placement(jungle, coupler_host, workload=None,
                       allowed_sites=None, channel_for=None,
                       max_combinations=100000):
    """Find the cheapest placement for the four simulation roles.

    Parameters
    ----------
    jungle : Jungle
        The resources the user has access to.
    coupler_host : Host
        Where the AMUSE script runs.
    workload : IterationWorkload, optional
    allowed_sites : set of site names, optional
        Restrict the search (reservations, allocations, ...).
    channel_for : callable(host) -> channel name, optional
        Defaults to "direct" on the coupler's site, "ibis" elsewhere.

    Returns
    -------
    (placement, predicted) — the best placement and its cost-model
    prediction dict.
    """
    workload = workload or IterationWorkload()
    if channel_for is None:
        def channel_for(host):
            return (
                "direct" if host.site == coupler_host.site else "ibis"
            )

    model = CostModel(jungle)
    roles = sorted(ROLE_TRAITS)
    options = [
        candidate_hosts(jungle, role, allowed_sites)
        for role in roles
    ]
    if any(not opts for opts in options):
        missing = [
            role for role, opts in zip(roles, options, strict=True)
            if not opts
        ]
        raise ValueError(
            f"no suitable resources for roles: {missing}"
        )
    total = 1
    for opts in options:
        total *= len(opts)
    if total > max_combinations:
        raise ValueError(
            f"{total} placements exceed the search budget; restrict "
            "allowed_sites"
        )

    best = None
    best_cost = None
    for combo in itertools.product(*options):
        if not _slots_available(jungle, roles, combo):
            continue
        placement = Placement(coupler_host=coupler_host)
        for role, (host, nodes) in zip(roles, combo, strict=True):
            placement.assign(
                role, host, nodes=nodes, channel=channel_for(host)
            )
        predicted = model.iteration_time(workload, placement)
        if best_cost is None or predicted["total_s"] < \
                best_cost["total_s"]:
            best, best_cost = placement, predicted
    if best is None:
        raise ValueError("no feasible placement found")
    return best, best_cost


def _slots_available(jungle, roles, combo):
    """Feasibility: multi-node reservations fit the site's capacity.

    Single-node roles may share one machine (the paper's desktop
    scenarios run all four models on one quad-core box); only
    multi-node reservations consume exclusive nodes.
    """
    demand = {}
    for _role, (host, nodes) in zip(roles, combo, strict=True):
        if nodes > 1:
            demand[host.site] = demand.get(host.site, 0) + nodes
    for site_name, wanted in demand.items():
        if wanted > len(jungle.sites[site_name].compute_hosts):
            return False
    return True
