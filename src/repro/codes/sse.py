"""SSE — parameterized stellar evolution (Hurley, Pols & Tout 2000).

The paper uses SSE for the stars' evolution: "a so-called parameterized
model, which does a simple lookup of a star's age and initial mass to
determine its current state.  Since this lookup is nearly trivial, SSE is
simply a sequential (Fortran) application."

This port implements the load-bearing subset of the HPT2000 / Tout et
al. (1996) analytic fits at solar metallicity:

* ZAMS luminosity and radius — the full Tout et al. (1996) rational fits
  (exact coefficients, Z = 0.02);
* main-sequence lifetime — Hurley et al. (2000) eq. 4's t_BGB fit;
* a condensed giant phase (luminosity/radius ramp, Reimers mass loss);
* remnant formation — white dwarfs below 8 MSun (Kalirai-style IFMR),
  neutron stars to 25 MSun, black holes above; supernova mass loss is
  instantaneous, matching SSE's treatment at the resolution AMUSE sees.

Stellar types use the SSE integer convention (1 MS, 3 GB, 4 CHeB, 11 WD,
13 NS, 14 BH).  Interface units are SSE-native: MSun, Myr, RSun, LSun.
The reduction relative to full SSE (no detailed HG/EAGB sub-phases) is
documented in DESIGN.md; the coupler-visible contract — cheap lookup,
occasional mass loss, supernovae from big stars during the run — is
preserved.
"""

from __future__ import annotations

import numpy as np

from .base import CodeInterface, InCodeParticleStorage

__all__ = ["SSEInterface", "zams_luminosity", "zams_radius",
           "main_sequence_lifetime", "remnant_mass", "STELLAR_TYPES"]

STELLAR_TYPES = {
    1: "Main Sequence",
    3: "Giant Branch",
    4: "Core Helium Burning",
    11: "Carbon/Oxygen White Dwarf",
    13: "Neutron Star",
    14: "Black Hole",
}

# Tout et al. (1996), Table 1 (Z = 0.02): L_ZAMS(M) rational fit.
_L_COEF = dict(
    alpha=0.39704170, beta=8.52762600, gamma=0.00025546,
    delta=5.43288900, epsilon=5.56357900, zeta=0.78866060,
    eta=0.00586685,
)

# Tout et al. (1996), Table 2 (Z = 0.02): R_ZAMS(M) rational fit.
_R_COEF = dict(
    theta=1.71535900, iota=6.59778800, kappa=10.08855000,
    lam=1.01249500, mu=0.07490166, nu=0.01077422,
    xi=3.08223400, omicron=17.84778000, pi=0.00022582,
)

# Hurley et al. (2000) eq. 4 t_BGB coefficients (Z = 0.02).
_T_COEF = (1.593890e3, 2.706708e3, 1.466143e2, 4.141960e-2, 3.426349e-1)


def zams_luminosity(mass):
    """ZAMS luminosity (LSun) for mass in MSun — Tout et al. 1996."""
    m = np.asarray(mass, dtype=float)
    c = _L_COEF
    num = c["alpha"] * m ** 5.5 + c["beta"] * m ** 11
    den = (
        c["gamma"] + m ** 3 + c["delta"] * m ** 5
        + c["epsilon"] * m ** 7 + c["zeta"] * m ** 8
        + c["eta"] * m ** 9.5
    )
    return num / den


def zams_radius(mass):
    """ZAMS radius (RSun) for mass in MSun — Tout et al. 1996."""
    m = np.asarray(mass, dtype=float)
    c = _R_COEF
    num = (
        c["theta"] * m ** 2.5 + c["iota"] * m ** 6.5
        + c["kappa"] * m ** 11 + c["lam"] * m ** 19
        + c["mu"] * m ** 19.5
    )
    den = (
        c["nu"] + c["xi"] * m ** 2 + c["omicron"] * m ** 8.5
        + m ** 18.5 + c["pi"] * m ** 19.5
    )
    return num / den


def main_sequence_lifetime(mass):
    """Main-sequence lifetime (Myr): Hurley et al. (2000) t_BGB fit."""
    m = np.asarray(mass, dtype=float)
    a1, a2, a3, a4, a5 = _T_COEF
    return (a1 + a2 * m ** 4 + a3 * m ** 5.5 + m ** 7) / (
        a4 * m ** 2 + a5 * m ** 7
    )


def remnant_mass(zams_mass):
    """Remnant mass (MSun) after the final evolution stage."""
    m = np.asarray(zams_mass, dtype=float)
    # Kalirai et al. (2008) IFMR, clamped: a remnant can never exceed
    # its progenitor (the linear fit crosses M below ~0.45 MSun, where
    # stars outlive a Hubble time anyway)
    wd = np.minimum(0.394 + 0.109 * m, 0.999 * m)
    ns = np.full_like(m, 1.4)
    bh = np.maximum(3.0, 0.25 * m)
    return np.where(m < 8.0, wd, np.where(m < 25.0, ns, bh))


def remnant_type(zams_mass):
    m = np.asarray(zams_mass, dtype=float)
    return np.where(m < 8.0, 11, np.where(m < 25.0, 13, 14)).astype(int)


#: fraction of t_MS spent in the condensed giant/CHeB stage
_GIANT_FRACTION = 0.15
#: giants reach this multiple of their ZAMS luminosity at the tip
_GIANT_LUM_BOOST = 1.0e3
#: fraction of the envelope shed by winds on the giant branch
_GIANT_WIND_FRACTION = 0.2


class SSEInterface(CodeInterface):
    """Low-level SSE interface: lookup-style stellar evolution.

    Methods mirror the AMUSE SE contract: add particles with ZAMS
    masses, ``evolve_model(t)`` advances every star to age t, state
    getters return (mass, radius, luminosity, temperature, stellar type).
    """

    PARAMETERS = {
        "metallicity": (0.02, "metallicity Z (only 0.02 fits shipped)"),
    }
    KERNEL_DEVICE = "cpu"
    LITERATURE = "Hurley, Pols & Tout (2000); Tout et al. (1996)"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.storage = InCodeParticleStorage(
            {
                "zams_mass": 1, "mass": 1, "age": 1,
                "luminosity": 1, "radius": 1, "temperature": 1,
                "stellar_type": 1,
            }
        )

    # -- particle management -----------------------------------------------

    def new_particle(self, zams_mass):
        """Add star(s) with the given ZAMS mass (MSun); returns ids."""
        self.invalidate_model()
        m = np.atleast_1d(np.asarray(zams_mass, dtype=float))
        if np.any(m <= 0):
            raise ValueError("stellar masses must be positive")
        return self.storage.add(
            zams_mass=m,
            mass=m,
            age=np.zeros_like(m),
            luminosity=zams_luminosity(m),
            radius=zams_radius(m),
            temperature=self._teff(zams_luminosity(m), zams_radius(m)),
            stellar_type=np.ones_like(m),
        )

    def delete_particle(self, ids):
        self.invalidate_model()
        self.storage.remove(ids)
        return 0

    def get_number_of_particles(self):
        return len(self.storage)

    # -- evolution ------------------------------------------------------------

    @staticmethod
    def _teff(lum, rad):
        """Effective temperature (K) from L (LSun) and R (RSun)."""
        lum = np.asarray(lum, dtype=float)
        rad = np.asarray(rad, dtype=float)
        return 5778.0 * (lum / np.maximum(rad, 1e-10) ** 2) ** 0.25

    def evolve_model(self, end_time):
        """Evolve all stars to age *end_time* (Myr)."""
        self.ensure_state("RUN")
        if end_time < self.model_time:
            raise ValueError("cannot evolve backwards in time")
        st = self.storage
        zams = st.arrays["zams_mass"]
        age = np.full_like(zams, float(end_time))
        t_ms = main_sequence_lifetime(zams)
        t_end_giant = t_ms * (1.0 + _GIANT_FRACTION)

        lum = zams_luminosity(zams).copy()
        rad = zams_radius(zams).copy()
        mass = np.minimum(st.arrays["mass"], zams).copy()
        stype = np.ones(len(zams))

        on_gb = (age >= t_ms) & (age < t_end_giant)
        if on_gb.any():
            # fractional progress through the condensed giant stage
            f = (age[on_gb] - t_ms[on_gb]) / (
                t_end_giant[on_gb] - t_ms[on_gb]
            )
            lum[on_gb] = zams_luminosity(zams[on_gb]) * \
                _GIANT_LUM_BOOST ** f
            rad[on_gb] = zams_radius(zams[on_gb]) * (
                1.0 + f * 100.0
            )
            # Reimers-style wind: shed a fixed envelope fraction linearly
            mass[on_gb] = zams[on_gb] * (
                1.0 - _GIANT_WIND_FRACTION * f
            )
            stype[on_gb] = np.where(f < 0.5, 3, 4)

        done = age >= t_end_giant
        if done.any():
            mass[done] = remnant_mass(zams[done])
            stype[done] = remnant_type(zams[done])
            lum[done] = 1e-4
            rad[done] = np.where(
                stype[done] == 14, 1e-5,
                np.where(stype[done] == 13, 1.6e-5, 0.01),
            )

        st.arrays["age"] = age
        st.arrays["mass"] = mass
        st.arrays["luminosity"] = lum
        st.arrays["radius"] = rad
        st.arrays["temperature"] = self._teff(lum, rad)
        st.arrays["stellar_type"] = stype
        self.model_time = float(end_time)
        self.step_count += 1
        self.interaction_count += len(zams)
        return 0

    # -- getters (RPC surface) ---------------------------------------------------

    def get_mass(self, ids=None):
        return self.storage.get("mass", ids)

    def get_luminosity(self, ids=None):
        return self.storage.get("luminosity", ids)

    def get_radius(self, ids=None):
        return self.storage.get("radius", ids)

    def get_temperature(self, ids=None):
        return self.storage.get("temperature", ids)

    def get_stellar_type(self, ids=None):
        return self.storage.get("stellar_type", ids).astype(int)

    def get_age(self, ids=None):
        return self.storage.get("age", ids)

    def get_state(self, ids=None):
        """(mass, radius, luminosity, temperature, stellar_type)."""
        return (
            self.get_mass(ids),
            self.get_radius(ids),
            self.get_luminosity(ids),
            self.get_temperature(ids),
            self.get_stellar_type(ids),
        )

    def time_of_next_supernova(self):
        """Earliest end-of-life time (Myr) among stars that become NS/BH."""
        zams = self.storage.arrays["zams_mass"]
        stype = self.storage.arrays["stellar_type"]
        massive = (zams >= 8.0) & (stype < 10)
        if not massive.any():
            return np.inf
        t = main_sequence_lifetime(zams[massive]) * (1.0 + _GIANT_FRACTION)
        return float(t.min())
