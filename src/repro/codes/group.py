"""EvolveGroup — the concurrent multi-model scheduler.

The paper's jungle scenario wins because its models run *simultaneously*
on different resources ("multiple simulations ... executed
concurrently", Sec. 5).  :class:`EvolveGroup` is the script-side
scheduler that makes that the one-line default: it launches
``evolve_model`` on every member through the async method surface
(:mod:`repro.codes.highlevel`), lets the workers advance in parallel,
and joins them at the coupling point — communication overlaps
computation, and a failure in any member surfaces as an aggregate error
naming exactly which models failed.

Internally ``evolve``/``each`` run on a
:class:`~repro.rpc.taskgraph.TaskGraph` of independent nodes: each
member's future is joined the moment its own responses arrive (a fast
code's mirror refresh never queues behind the slowest worker), a
timeout CANCELS the outstanding calls (withdrawing them from the
channel pending tables so the in-flight trackers unlock immediately),
and an optional :class:`~repro.rpc.taskgraph.FaultPolicy` lets a
group survive — or transparently respawn — a dead worker.

Members can be:

* high-level codes — their ``evolve_model.async_(t)`` future is used,
  so the evolve pipelines over the worker channel with no extra thread;
* objects with a plain blocking ``evolve_model`` (or bare callables) —
  the call is offloaded to a thread via :meth:`Future.submit`, which is
  how CESM-style components without an RPC channel still overlap.

Usage::

    group = EvolveGroup([gravity, hydro, se])
    group.evolve(t_end)          # overlapped, joined, mirrors refreshed
"""

from __future__ import annotations

import functools

from ..rpc.futures import AggregateRequestError, Future
from ..rpc.taskgraph import FaultPolicy, TaskGraph
from .base import CodeStateError, InflightTracker

__all__ = ["EvolveGroup"]


def _join_quietly(futures):
    """Join futures for their side effects (cleanup hooks, mirror
    refreshes), swallowing their errors — the recovery path when a
    launch failed or a deadline expired and the results are moot."""
    for future in futures:
        try:
            future.result()
        except Exception:  # noqa: BLE001 - results are abandoned
            pass


class EvolveGroup:
    """Overlap ``evolve_model`` across a set of model codes.

    ``evolve`` / ``evolve_async`` advance every member to the same end
    time; ``each`` runs an arbitrary per-member action concurrently
    (thread offload) — the generic form used by the CESM coupler to
    step its components.
    """

    def __init__(self, members=()):
        self.members = list(members)
        # per-member guards for THREAD-OFFLOADED calls: high-level
        # codes carry their own InflightTracker, but a blocking-only
        # member (CESM component, bare callable) has none — without
        # this, a retry after a timeout would run two evolve/step
        # calls concurrently on the same unlocked object
        self._offload_trackers = {}

    def add(self, member):
        self.members.append(member)
        return member

    def _offload(self, member, op, fn, *args):
        # prune trackers of members no longer in the group: bounds the
        # dict on long-lived groups with changing membership and makes
        # id() recycling harmless (a recycled id implies the old
        # member is gone from self.members)
        live = {id(m) for m in self.members}
        for stale in [k for k in self._offload_trackers
                      if k not in live]:
            del self._offload_trackers[stale]
        tracker = self._offload_trackers.setdefault(
            id(member), InflightTracker(type(member).__name__)
        )
        tracker.begin(op)
        try:
            return Future.submit(
                fn, *args,
                description=f"{type(member).__name__}.{op}",
                cleanup=lambda: tracker.finish(op),
            )
        except BaseException:
            tracker.finish(op)
            raise

    def __len__(self):
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    # -- launching -----------------------------------------------------------

    def _launch(self, member, t_end):
        evolve = getattr(member, "evolve_model", None)
        if evolve is None:
            if callable(member):
                return self._offload(
                    member, "evolve_model", member, t_end
                )
            raise TypeError(
                f"{member!r} has no evolve_model and is not callable"
            )
        async_form = getattr(evolve, "async_", None)
        if async_form is not None:
            return async_form(t_end)
        # blocking-only member: overlap it on a thread instead
        return self._offload(member, "evolve_model", evolve, t_end)

    def evolve_async(self, t_end):
        """Launch ``evolve_model(t_end)`` on every member; returns the
        futures in member order without joining them.

        If a launch fails partway (e.g. a stopped or already-evolving
        member raises eagerly), the futures already launched are joined
        before the error propagates, so no member is left with a
        stranded in-flight transition.
        """
        futures = []
        try:
            for member in self.members:
                futures.append(self._launch(member, t_end))
        except BaseException:
            _join_quietly(futures)
            raise
        return futures

    # -- graph-scheduled joins ----------------------------------------------

    def _member_nodes(self, graph, op, launcher):
        """One independent graph node per member (unique names; codes
        that can respawn are bound for the RESTART policy)."""
        nodes = []
        for index, member in enumerate(self.members):
            base = f"{type(member).__name__}.{op}"
            name = base if base not in graph.nodes else \
                f"{base}#{index}"
            nodes.append(graph.add(
                name, functools.partial(launcher, member),
                code=member if hasattr(member, "restart_worker")
                else None,
            ))
        return nodes

    @staticmethod
    def _run_graph(graph, timeout, fault_policy):
        """Run the graph, unwrapping a lone caller-mistake
        :class:`CodeStateError` (illegal overlap, stopped member) back
        to its bare form — the eager-guard contract of the async API —
        while genuine model failures keep the aggregate shape."""
        try:
            graph.run(
                timeout=timeout,
                fault_policy=fault_policy or FaultPolicy.RAISE,
            )
        except AggregateRequestError as error:
            if len(error.failures) == 1 and \
                    isinstance(error.failures[0][1], CodeStateError):
                raise error.failures[0][1] from None
            raise

    def evolve(self, t_end, timeout=None, fault_policy=None):
        """Advance every member to *t_end* concurrently and join.

        Scheduled as a :class:`~repro.rpc.taskgraph.TaskGraph` of
        independent nodes: each member's future materializes (mirror
        refresh, unit conversion) the moment its own responses arrive,
        not when the slowest member finishes.  Returns the per-member
        results in member order.  Failures are collected into an
        :class:`~repro.rpc.futures.AggregateRequestError` naming each
        failed model — after every member has been joined, so no code
        is left with a stranded in-flight transition.  On *timeout*
        the outstanding calls are CANCELLED (withdrawn from the
        channel pending tables, trackers retired immediately; calls
        that cannot be withdrawn are abandoned and unlock when their
        worker answers).  *fault_policy* —
        :class:`~repro.rpc.taskgraph.FaultPolicy` — lets the group
        ignore a dead model or transparently respawn its worker
        (``RESTART``).
        """
        graph = TaskGraph()
        nodes = self._member_nodes(
            graph, "evolve_model",
            lambda member: self._launch(member, t_end),
        )
        self._run_graph(graph, timeout, fault_policy)
        return [node.result for node in nodes]

    def each(self, action, timeout=None, fault_policy=None):
        """Run ``action(member)`` for every member concurrently.

        Thread-offloaded through the same task graph as
        :meth:`evolve`; returns results in member order.  This is the
        generic overlap primitive for members without an async method
        surface (e.g. CESM components stepping their grids).
        """
        op = getattr(action, "__name__", "action")
        graph = TaskGraph()
        nodes = self._member_nodes(
            graph, op,
            lambda member: self._offload(member, op, action, member),
        )
        self._run_graph(graph, timeout, fault_policy)
        return [node.result for node in nodes]

    # -- lifecycle -----------------------------------------------------------

    def stop(self):
        """Stop every member that exposes stop() and is not stopped.

        This is a cleanup path: a member still busy with an in-flight
        transition (whose orderly ``stop()`` raises) is force-shut-down
        via its ``shutdown()`` hook, and ANY member's failure is
        collected rather than aborting the loop — one bad member never
        leaves the rest of the group's workers running.  Failures are
        re-raised at the end as an
        :class:`~repro.rpc.futures.AggregateRequestError` naming each
        member.
        """
        failures = []
        attempted = 0
        for member in self.members:
            stop = getattr(member, "stop", None)
            if stop is None or getattr(member, "stopped", False):
                continue
            attempted += 1
            try:
                try:
                    stop()
                except CodeStateError:
                    shutdown = getattr(member, "shutdown", None)
                    if shutdown is None:
                        raise
                    shutdown()
            except Exception as exc:  # noqa: BLE001 - aggregated below
                failures.append((f"{type(member).__name__}.stop", exc))
        if failures:
            raise AggregateRequestError(failures, total=attempted)

    def __repr__(self):
        names = ", ".join(type(m).__name__ for m in self.members)
        return f"<EvolveGroup [{names}]>"
