"""Synthetic model codes for overlap tests and benchmarks.

:class:`SleepInterface` is a worker whose evolve costs a fixed
wall-clock time — the stand-in for *off-process* compute: a real remote
worker burns CPU on its own node exactly like a sleeping worker thread
here, with the GIL out of the picture.  :class:`SleepCode` wraps it
with the full async-first high-level surface, so the concurrency
machinery (futures, EvolveGroup, in-flight tracking) can be measured
and tested against workers with perfectly known per-step cost.

:class:`NumpyKernelInterface` is the adversarial counterpart: its
evolve is a GIL-holding numpy compute loop.  In-process worker threads
serialize on it (~2x for two workers), while subprocess workers —
each with its own interpreter — overlap it fully (~1x).  It is the
kernel behind the GIL-bound acceptance check in
``benchmarks/bench_async_overlap.py``.

The fault-injection interfaces (:class:`CrashingInterface`,
:class:`FailingInterface`, :class:`WedgedStopInterface`) exercise the
channel lifecycle paths: worker death mid-call, constructor failure in
a spawned child, and a worker that never acknowledges stop.

Everything here is importable as ``repro.codes.testing`` so a
subprocess worker child can unpickle the factories.  Shared by
``tests/test_async_api.py``, ``tests/test_subproc.py`` and
``benchmarks/bench_async_overlap.py`` so they always exercise the same
worker semantics.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from ..units import nbody as nbody_system
from .base import CodeInterface
from .highlevel import CommunityCode

__all__ = [
    "ArrayEchoInterface",
    "DriftingInterface",
    "DriftingCode",
    "SleepInterface",
    "SleepCode",
    "PhasedSleepInterface",
    "PhasedSleepCode",
    "NumpyKernelInterface",
    "NumpyKernelCode",
    "CrashingInterface",
    "FailingInterface",
    "WedgedStopInterface",
]


class ArrayEchoInterface(CodeInterface):
    """Bulk-transfer worker: echoes / transforms array payloads.

    The measurement surface for channel throughput (sockets vs shm vs
    compressed): ``echo`` moves a payload both ways untouched, and
    ``scale`` proves the data genuinely crossed into the worker (the
    result differs from the input, so a transport that secretly
    shared state with the caller could not fake it).
    """

    def echo(self, payload):
        return payload

    def scale(self, array, factor):
        return np.asarray(array) * float(factor)

    def checksum(self, array):
        return float(np.sum(np.asarray(array)))


class SleepInterface(CodeInterface):
    """Model code whose evolve costs ``cost_s`` wall-clock seconds."""

    PARAMETERS = {
        "cost_s": (0.15, "wall-clock seconds charged per evolve call"),
    }

    def evolve_model(self, end_time):
        self.ensure_state("RUN")
        time.sleep(self.cost_s)
        self.model_time = float(end_time)
        self.step_count += 1
        return 0


class SleepCode(CommunityCode):
    """High-level wrapper: full async surface over a SleepInterface."""

    INTERFACE = SleepInterface
    _TIME_UNIT = nbody_system.time


class DriftingInterface(CodeInterface):
    """Model code with seeded, reproducible conservation errors.

    Each evolve accrues a pseudo-random energy-drift increment and a
    mass-loss fraction drawn from a generator seeded by ``seed`` —
    the same seed and step count always produce the same drift, on any
    host.  That makes it the reference workload for the ensemble
    campaign layer: sweeps over ``seed`` give member results with a
    known, reproducible statistical spread, without paying for a real
    N-body integration.  ``cost_s`` optionally charges wall clock per
    step so cold-vs-cached campaign timings have a controlled scale.
    """

    PARAMETERS = {
        "seed": (0, "generator seed for the per-step drift draws"),
        "drift_scale": (
            1e-6, "mean |dE/E| increment accrued per evolve call"),
        "loss_scale": (
            1e-4, "mean mass fraction lost per evolve call"),
        "cost_s": (0.0, "wall-clock seconds charged per evolve call"),
    }

    def initialize_code(self):
        self._rng = np.random.default_rng(int(self.seed))
        self.energy_drift = 0.0
        self.mass_fraction = 1.0
        return 0

    def evolve_model(self, end_time):
        self.ensure_state("RUN")
        if self.cost_s:
            time.sleep(self.cost_s)
        self.energy_drift += float(
            self.drift_scale * self._rng.exponential()
        )
        self.mass_fraction *= 1.0 - float(
            self.loss_scale * self._rng.random()
        )
        self.model_time = float(end_time)
        self.step_count += 1
        return 0

    def get_energy_drift(self):
        return float(self.energy_drift)

    def get_mass_loss(self):
        return float(1.0 - self.mass_fraction)


class DriftingCode(CommunityCode):
    """High-level wrapper exposing the drift/loss conservation metrics."""

    INTERFACE = DriftingInterface
    _TIME_UNIT = nbody_system.time

    def metrics(self):
        """``{energy_drift, mass_loss}`` read back from the worker."""
        self._require_open("metrics")
        return {
            "energy_drift": self.channel.call("get_energy_drift"),
            "mass_loss": self.channel.call("get_mass_loss"),
        }


class PhasedSleepInterface(CodeInterface):
    """Model code with SEPARATE known costs for its drift and kick.

    The measurement surface for schedule-shape benchmarks
    (``benchmarks/bench_taskgraph.py``): a kick–drift–kick step over
    codes with unequal ``drift_s``/``kick_s`` makes the difference
    between a barrier schedule (every phase waits for the slowest
    code) and a DAG schedule (each code's chain pipelines
    independently) directly measurable in wall clock.
    """

    PARAMETERS = {
        "drift_s": (0.1, "wall-clock seconds per evolve_model call"),
        "kick_s": (0.05, "wall-clock seconds per apply_kick call"),
    }

    def evolve_model(self, end_time):
        self.ensure_state("RUN")
        time.sleep(self.drift_s)
        self.model_time = float(end_time)
        self.step_count += 1
        return 0

    def apply_kick(self, dt):
        self.ensure_state("RUN")
        time.sleep(self.kick_s)
        return 0


class PhasedSleepCode(CommunityCode):
    """High-level wrapper: async evolve + async kick with pinned costs."""

    INTERFACE = PhasedSleepInterface
    _TIME_UNIT = nbody_system.time

    def kick(self, dt):
        """Blocking kick; ``kick_async`` is the overlapping form."""
        return self.kick_async(dt).result()

    def kick_async(self, dt):
        self._begin_transition("kick")
        request = self._launch_guarded(
            "kick",
            lambda: self.channel.async_call("apply_kick", float(dt)),
        )
        return self._transition_future(
            "kick", request, transform=lambda _v: None
        )


class NumpyKernelInterface(CodeInterface):
    """Model code whose evolve is GIL-holding numpy compute.

    The loop runs many *small* element-wise kernels: numpy ufuncs hold
    the GIL, so two of these in worker threads of one process serialize
    — exactly the bound the subprocess channel exists to lift.
    ``work_items`` scales the per-evolve cost linearly.
    """

    PARAMETERS = {
        "work_items": (
            2000, "numpy kernel slices executed per evolve call"),
        "item_size": (
            20000, "elements per kernel slice"),
    }

    def evolve_model(self, end_time):
        self.ensure_state("RUN")
        x = np.linspace(0.0, 1.0, int(self.item_size))
        checksum = 0.0
        for _ in range(int(self.work_items)):
            checksum += float(np.sum(np.sqrt(x * x + 1.0) * np.cos(x)))
        self.checksum = checksum
        self.model_time = float(end_time)
        self.step_count += 1
        return 0


class NumpyKernelCode(CommunityCode):
    """High-level wrapper: full async surface over compute-heavy evolve."""

    INTERFACE = NumpyKernelInterface
    _TIME_UNIT = nbody_system.time


class CrashingInterface(CodeInterface):
    """Fault injection: methods that take the whole worker process down.

    ``crash()`` writes a marker to stderr and hard-exits the process —
    from the channel's point of view the worker died mid-call, the
    worker-death path the subprocess channel must surface as
    :class:`~repro.rpc.protocol.ConnectionLostError`.
    """

    PARAMETERS = {
        "exit_code": (3, "process exit code used by crash()"),
        "stderr_message": (
            "worker crashed on purpose", "marker written to stderr"),
    }

    def evolve_model(self, end_time):
        self.ensure_state("RUN")
        self.crash()

    def crash(self):
        print(self.stderr_message, file=sys.stderr, flush=True)
        os._exit(int(self.exit_code))


class FailingInterface(CodeInterface):
    """Fault injection: the interface constructor itself raises."""

    def __init__(self, **parameters):
        raise RuntimeError("FailingInterface refused to construct")


class WedgedStopInterface(CodeInterface):
    """Fault injection: ``stop`` blocks far past any stop timeout."""

    PARAMETERS = {
        "wedge_s": (2.0, "seconds stop() stays wedged"),
    }

    def stop(self):
        time.sleep(self.wedge_s)
        return super().stop()
