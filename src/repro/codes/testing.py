"""Synthetic model codes for overlap tests and benchmarks.

:class:`SleepInterface` is a worker whose evolve costs a fixed
wall-clock time — the stand-in for *off-process* compute: a real remote
worker burns CPU on its own node exactly like a sleeping worker thread
here, with the GIL out of the picture.  :class:`SleepCode` wraps it
with the full async-first high-level surface, so the concurrency
machinery (futures, EvolveGroup, in-flight tracking) can be measured
and tested against workers with perfectly known per-step cost.

Shared by ``tests/test_async_api.py`` and
``benchmarks/bench_async_overlap.py`` so the two always exercise the
same worker semantics.
"""

from __future__ import annotations

import time

from ..units import nbody as nbody_system
from .base import CodeInterface
from .highlevel import CommunityCode

__all__ = ["SleepInterface", "SleepCode"]


class SleepInterface(CodeInterface):
    """Model code whose evolve costs ``cost_s`` wall-clock seconds."""

    PARAMETERS = {
        "cost_s": (0.15, "wall-clock seconds charged per evolve call"),
    }

    def evolve_model(self, end_time):
        self.ensure_state("RUN")
        time.sleep(self.cost_s)
        self.model_time = float(end_time)
        self.step_count += 1
        return 0


class SleepCode(CommunityCode):
    """High-level wrapper: full async surface over a SleepInterface."""

    INTERFACE = SleepInterface
    _TIME_UNIT = nbody_system.time
