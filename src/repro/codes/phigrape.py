"""PhiGRAPE — direct-summation N-body dynamics (Harfst et al. 2007).

The paper uses PhiGRAPE for the gravity between stars, "available in both
a CPU and a GPU (using CUDA) variant".  This port implements the same
algorithm both variants share: a 4th-order Hermite predictor–corrector
with a shared adaptive time step (Aarseth criterion) and Plummer
softening.  The two kernel variants are numerically identical — the paper
stresses that kernel choice "has no influence in the result of the
simulation, but may have a dramatic effect on performance" — so
:class:`PhiGRAPEInterface` takes a ``kernel`` parameter ("cpu" or "gpu")
that only changes the device tag the jungle cost model charges time for.

All quantities are in N-body units (G = 1).
"""

from __future__ import annotations

import numpy as np

from .base import CodeInterface, InCodeParticleStorage
from .kernels import direct_acc_jerk, direct_acceleration, direct_potential

__all__ = ["PhiGRAPEInterface"]


class PhiGRAPEInterface(CodeInterface):
    """Low-level PhiGRAPE interface (Hermite scheme, direct summation)."""

    PARAMETERS = {
        "eps2": (1e-4, "Plummer softening length squared (nbody units)"),
        "eta": (0.02, "Aarseth accuracy parameter for the time step"),
        "kernel": ("cpu", "'cpu' or 'gpu' — identical physics, "
                          "different device for the cost model"),
        "initial_dt_fraction": (0.01, "first-step dt as fraction of eta"),
    }
    LITERATURE = "Harfst et al. (2007), New Astronomy 12"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.storage = InCodeParticleStorage(
            {"mass": 1, "pos": 3, "vel": 3}
        )
        self._acc = None
        self._jerk = None

    @property
    def KERNEL_DEVICE(self):  # noqa: N802 - mirrors the class attribute
        return "gpu" if self.kernel == "gpu" else "cpu"

    def commit_parameters(self):
        if self.kernel not in ("cpu", "gpu"):
            raise ValueError(f"unknown kernel {self.kernel!r}")
        if self.eta <= 0:
            raise ValueError("eta must be positive")
        return 0

    # -- particle management ---------------------------------------------------

    def new_particle(self, mass, x, y, z, vx, vy, vz):
        """Add particles; scalar or array arguments; returns ids."""
        self.invalidate_model()
        pos = np.column_stack(
            [np.atleast_1d(np.asarray(c, dtype=float)) for c in (x, y, z)]
        )
        vel = np.column_stack(
            [np.atleast_1d(np.asarray(c, dtype=float))
             for c in (vx, vy, vz)]
        )
        return self.storage.add(mass=mass, pos=pos, vel=vel)

    def delete_particle(self, ids):
        self.invalidate_model()
        self.storage.remove(ids)
        return 0

    def get_number_of_particles(self):
        return len(self.storage)

    def set_state(self, ids, mass, x, y, z, vx, vy, vz):
        self.invalidate_model()
        self.storage.set("mass", mass, ids)
        self.storage.set("pos", np.column_stack([x, y, z]), ids)
        self.storage.set("vel", np.column_stack([vx, vy, vz]), ids)
        return 0

    def get_state(self, ids=None):
        m = self.storage.get("mass", ids)
        p = self.storage.get("pos", ids)
        v = self.storage.get("vel", ids)
        return m, p[:, 0], p[:, 1], p[:, 2], v[:, 0], v[:, 1], v[:, 2]

    def set_mass(self, ids, mass):
        # mass updates do NOT invalidate: the stellar-evolution coupling
        # updates masses mid-run (paper Fig. 7, slower SE exchange)
        self.storage.set("mass", mass, ids)
        self._acc = None
        return 0

    def get_mass(self, ids=None):
        return self.storage.get("mass", ids)

    def get_position(self, ids=None):
        return self.storage.get("pos", ids)

    def get_velocity(self, ids=None):
        return self.storage.get("vel", ids)

    def set_position(self, ids, pos):
        self.invalidate_model()
        self.storage.set("pos", pos, ids)
        return 0

    def set_velocity(self, ids, vel):
        self.invalidate_model()
        self.storage.set("vel", vel, ids)
        return 0

    def add_velocity(self, ids, dv):
        """Increment velocities (bridge p-kicks): one round trip."""
        self.invalidate_model()
        self.storage.add_to("vel", dv, ids)
        return 0

    # -- dynamics -----------------------------------------------------------------

    def commit_particles(self):
        self._refresh_forces()
        return 0

    def _refresh_forces(self):
        st = self.storage
        self._acc, self._jerk = direct_acc_jerk(
            st.arrays["pos"], st.arrays["vel"], st.arrays["mass"],
            self.eps2,
        )
        self.interaction_count += len(st) ** 2

    def _timestep(self, t_left):
        """Shared adaptive step: eta * min |a|/|j| (Aarseth-style)."""
        a = np.linalg.norm(self._acc, axis=1)
        j = np.linalg.norm(self._jerk, axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(j > 0, a / j, np.inf)
        dt = self.eta * float(ratio.min()) if len(ratio) else t_left
        if not np.isfinite(dt) or dt <= 0:
            dt = self.eta * self.initial_dt_fraction
        return min(dt, t_left)

    def evolve_model(self, end_time):
        """Hermite steps until model_time reaches *end_time*."""
        self.ensure_state("RUN")
        st = self.storage
        if len(st) == 0:
            self.model_time = float(end_time)
            return 0
        pos = st.arrays["pos"]
        vel = st.arrays["vel"]
        mass = st.arrays["mass"]
        if self._acc is None:
            self._refresh_forces()
        while self.model_time < end_time - 1e-15:
            dt = self._timestep(end_time - self.model_time)
            a0, j0 = self._acc, self._jerk
            # predict
            dt2, dt3 = dt * dt / 2.0, dt ** 3 / 6.0
            pos_p = pos + vel * dt + a0 * dt2 + j0 * dt3
            vel_p = vel + a0 * dt + j0 * dt * dt / 2.0
            # evaluate at prediction
            a1, j1 = direct_acc_jerk(pos_p, vel_p, mass, self.eps2)
            self.interaction_count += len(st) ** 2
            # correct (Hermite 4th order, Makino & Aarseth 1992)
            vel_c = vel + 0.5 * (a0 + a1) * dt + (j0 - j1) * dt * dt / 12.0
            pos_c = (
                pos + 0.5 * (vel + vel_c) * dt
                + (a0 - a1) * dt * dt / 12.0
            )
            pos[...] = pos_c
            vel[...] = vel_c
            self._acc, self._jerk = a1, j1
            self.model_time += dt
            self.step_count += 1
        return 0

    # -- diagnostics & bridge surface ------------------------------------------------

    def get_kinetic_energy(self):
        st = self.storage
        return float(
            0.5 * (st.arrays["mass"] * (st.arrays["vel"] ** 2).sum(axis=1)
                   ).sum()
        )

    def get_potential_energy(self):
        st = self.storage
        phi = direct_potential(
            st.arrays["pos"], st.arrays["mass"], self.eps2
        )
        return float(0.5 * (st.arrays["mass"] * phi).sum())

    def get_total_energy(self):
        return self.get_kinetic_energy() + self.get_potential_energy()

    def get_gravity_at_point(self, eps2, points):
        """Acceleration field of this system at external points."""
        st = self.storage
        self.interaction_count += len(st) * len(points)
        return direct_acceleration(
            st.arrays["pos"], st.arrays["mass"],
            eps2=max(float(eps2), self.eps2), targets=np.asarray(points),
        )

    def get_potential_at_point(self, eps2, points):
        st = self.storage
        self.interaction_count += len(st) * len(points)
        return direct_potential(
            st.arrays["pos"], st.arrays["mass"],
            eps2=max(float(eps2), self.eps2), targets=np.asarray(points),
        )

    def get_center_of_mass(self):
        st = self.storage
        m = st.arrays["mass"]
        return (m[:, None] * st.arrays["pos"]).sum(axis=0) / m.sum()
