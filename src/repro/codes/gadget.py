"""Gadget — smoothed-particle hydrodynamics (Springel 2005).

The gas in the embedded-cluster simulation is evolved by Gadget, "a CPU
only model, written in C/MPI", run on 8 nodes in the paper's experiments.
This port implements the standard SPH formulation Gadget-2 uses at the
resolution relevant here:

* cubic-spline kernel, adaptive smoothing lengths from a fixed neighbour
  number (k-NN via a cKDTree, fully vectorized);
* ideal-gas equation of state (γ = 5/3) with Monaghan artificial
  viscosity;
* self-gravity through the shared Barnes–Hut octree;
* kick–drift–kick leapfrog with a Courant-limited global step.

The *MPI* character of the original is preserved by
:func:`run_parallel_step` /:class:`ParallelGadget`, which decompose the
particle set over the ranks of the in-process MPI substrate
(:mod:`repro.mpi`) and reproduce Gadget's allgather + local-work +
allreduce communication pattern.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .base import CodeInterface, InCodeParticleStorage
from .kernels import Octree

__all__ = [
    "GadgetInterface",
    "ParallelGadget",
    "cubic_spline_kernel",
    "cubic_spline_gradient",
    "sph_state_arrays",
]


def cubic_spline_kernel(r, h):
    """Monaghan & Lattanzio (1985) M4 cubic spline, 3-D normalisation.

    Support is 2h: W = σ/h³ · (1 - 1.5q² + 0.75q³) for q<1,
    0.25·σ/h³·(2-q)³ for 1≤q<2, with σ = 1/π and q = r/h.
    """
    q = np.asarray(r) / np.asarray(h)
    sigma = 1.0 / np.pi / np.asarray(h) ** 3
    w = np.where(
        q < 1.0,
        1.0 - 1.5 * q ** 2 + 0.75 * q ** 3,
        np.where(q < 2.0, 0.25 * (2.0 - q) ** 3, 0.0),
    )
    return sigma * w


def cubic_spline_gradient(r, h):
    """dW/dr of the cubic spline (same support/normalisation)."""
    q = np.asarray(r) / np.asarray(h)
    sigma = 1.0 / np.pi / np.asarray(h) ** 4
    dw = np.where(
        q < 1.0,
        -3.0 * q + 2.25 * q ** 2,
        np.where(q < 2.0, -0.75 * (2.0 - q) ** 2, 0.0),
    )
    return sigma * dw


def sph_state_arrays(pos, vel, mass, u, n_neighbours, gamma,
                     alpha, beta, eps2, theta, self_gravity,
                     row_slice=None):
    """Density + acceleration + du/dt for (a slab of) an SPH system.

    This is the shared compute core for the serial and MPI-parallel
    paths: the caller passes the *global* arrays and optionally a
    ``row_slice`` restricting which particles' results are computed
    (domain decomposition).  Returns (rho, h, acc, dudt, dt_courant)
    for the selected rows.
    """
    pos = np.asarray(pos, dtype=float)
    vel = np.asarray(vel, dtype=float)
    mass = np.asarray(mass, dtype=float)
    u = np.maximum(np.asarray(u, dtype=float), 1e-12)
    n = len(pos)
    sel = slice(0, n) if row_slice is None else row_slice
    k = min(int(n_neighbours), n)

    tree = cKDTree(pos)
    dist, idx = tree.query(pos[sel], k=k)
    if k == 1:
        dist = dist[:, None]
        idx = idx[:, None]
    # smoothing length: kernel support 2h holds the k neighbours
    h = np.maximum(dist[:, -1] / 2.0, 1e-10)

    # density (gather form)
    w = cubic_spline_kernel(dist, h[:, None])
    rho = (mass[idx] * w).sum(axis=1)

    # to evaluate the symmetric pressure term we need rho at the
    # neighbours too; recompute it globally only when decomposed
    if row_slice is None:
        rho_all = rho
        h_all = h
    else:
        dist_all, idx_all = tree.query(pos, k=k)
        if k == 1:
            dist_all, idx_all = dist_all[:, None], idx_all[:, None]
        h_all = np.maximum(dist_all[:, -1] / 2.0, 1e-10)
        rho_all = (
            mass[idx_all] * cubic_spline_kernel(dist_all, h_all[:, None])
        ).sum(axis=1)

    pressure = (gamma - 1.0) * rho_all * u
    cs = np.sqrt(gamma * (gamma - 1.0) * u)

    dr = pos[sel][:, None, :] - pos[idx]              # (m, k, 3)
    dv = vel[sel][:, None, :] - vel[idx]
    r = np.maximum(dist, 1e-12)
    # symmetrised smoothing length and sound speed
    h_ij = 0.5 * (h[:, None] + h_all[idx])
    c_ij = 0.5 * (cs[sel][:, None] + cs[idx])
    rho_ij = 0.5 * (rho[:, None] + rho_all[idx])
    vdotr = (dv * dr).sum(axis=2)

    # Monaghan (1992) artificial viscosity
    mu = h_ij * vdotr / (r ** 2 + 0.01 * h_ij ** 2)
    mu = np.where(vdotr < 0.0, mu, 0.0)
    visc = (-alpha * c_ij * mu + beta * mu ** 2) / rho_ij

    grad = cubic_spline_gradient(r, h_ij)             # dW/dr at h_ij
    p_term = (
        pressure[sel][:, None] / rho[:, None] ** 2
        + pressure[idx] / rho_all[idx] ** 2
        + visc
    )
    # ∇W = grad * dr/r
    coeff = mass[idx] * p_term * grad / r
    acc = -(coeff[:, :, None] * dr).sum(axis=1)

    du_coeff = mass[idx] * (
        pressure[sel][:, None] / rho[:, None] ** 2 + 0.5 * visc
    ) * grad / r
    dudt = (du_coeff * vdotr).sum(axis=1)

    if self_gravity:
        gtree = Octree(pos, mass)
        acc = acc + gtree.accelerations(
            targets=pos[sel], theta=theta, eps2=eps2
        )

    vmag = np.linalg.norm(vel[sel], axis=1)
    signal = cs[sel] + vmag + 1e-12
    dt_courant = float((h / signal).min()) if len(h) else np.inf
    return rho, h, acc, dudt, dt_courant


class GadgetInterface(CodeInterface):
    """Low-level Gadget interface (serial path; N-body units, G = 1)."""

    PARAMETERS = {
        "n_neighbours": (32, "SPH neighbour count"),
        "gamma": (5.0 / 3.0, "adiabatic index"),
        "alpha_visc": (1.0, "Monaghan viscosity alpha"),
        "beta_visc": (2.0, "Monaghan viscosity beta"),
        "courant": (0.3, "Courant factor for the global step"),
        "eps2": (1e-4, "gravitational softening squared"),
        "theta": (0.6, "gravity tree opening angle"),
        "self_gravity": (True, "include gas self-gravity"),
        "max_dt": (1.0 / 32.0, "upper bound on the leapfrog step"),
    }
    KERNEL_DEVICE = "cpu"
    LITERATURE = "Springel (2005), MNRAS 364"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.storage = InCodeParticleStorage(
            {"mass": 1, "pos": 3, "vel": 3, "u": 1, "rho": 1, "h": 1}
        )

    # -- particles ---------------------------------------------------------

    def new_particle(self, mass, x, y, z, vx, vy, vz, u):
        self.invalidate_model()
        pos = np.column_stack(
            [np.atleast_1d(np.asarray(c, dtype=float)) for c in (x, y, z)]
        )
        vel = np.column_stack(
            [np.atleast_1d(np.asarray(c, dtype=float))
             for c in (vx, vy, vz)]
        )
        return self.storage.add(mass=mass, pos=pos, vel=vel, u=u)

    def delete_particle(self, ids):
        self.invalidate_model()
        self.storage.remove(ids)
        return 0

    def get_number_of_particles(self):
        return len(self.storage)

    def get_state(self, ids=None):
        st = self.storage
        m = st.get("mass", ids)
        p = st.get("pos", ids)
        v = st.get("vel", ids)
        u = st.get("u", ids)
        return m, p[:, 0], p[:, 1], p[:, 2], v[:, 0], v[:, 1], v[:, 2], u

    def get_mass(self, ids=None):
        return self.storage.get("mass", ids)

    def get_position(self, ids=None):
        return self.storage.get("pos", ids)

    def get_velocity(self, ids=None):
        return self.storage.get("vel", ids)

    def get_internal_energy(self, ids=None):
        return self.storage.get("u", ids)

    def set_internal_energy(self, ids, u):
        # feedback injection path: no state invalidation (paper Fig. 7:
        # SE/feedback exchanged between inner steps)
        self.storage.set("u", u, ids)
        return 0

    def add_internal_energy(self, ids, du):
        rows = self.storage.rows(ids)
        self.storage.arrays["u"][rows] += np.asarray(du, dtype=float)
        return 0

    def get_density(self, ids=None):
        return self.storage.get("rho", ids)

    def get_smoothing_length(self, ids=None):
        return self.storage.get("h", ids)

    def set_position(self, ids, pos):
        self.invalidate_model()
        self.storage.set("pos", pos, ids)
        return 0

    def set_velocity(self, ids, vel):
        self.storage.set("vel", vel, ids)
        return 0

    def add_velocity(self, ids, dv):
        """Increment velocities (bridge p-kicks): one round trip."""
        self.storage.add_to("vel", dv, ids)
        return 0

    # -- dynamics ---------------------------------------------------------------

    def _forces(self):
        st = self.storage
        rho, h, acc, dudt, dt_c = sph_state_arrays(
            st.arrays["pos"], st.arrays["vel"], st.arrays["mass"],
            st.arrays["u"], self.n_neighbours, self.gamma,
            self.alpha_visc, self.beta_visc, self.eps2, self.theta,
            self.self_gravity,
        )
        st.arrays["rho"][...] = rho
        st.arrays["h"][...] = h
        n = len(st)
        self.interaction_count += n * min(self.n_neighbours, n)
        if self.self_gravity:
            self.interaction_count += int(
                n * max(1.0, np.log2(max(n, 2)))
            )
        return acc, dudt, dt_c

    def commit_particles(self):
        if len(self.storage):
            self._forces()
        return 0

    def evolve_model(self, end_time):
        """KDK leapfrog to *end_time* with Courant-limited steps."""
        self.ensure_state("RUN")
        st = self.storage
        if len(st) == 0:
            self.model_time = float(end_time)
            return 0
        pos = st.arrays["pos"]
        vel = st.arrays["vel"]
        u = st.arrays["u"]
        while self.model_time < end_time - 1e-15:
            acc, dudt, dt_c = self._forces()
            dt = min(
                self.courant * dt_c, self.max_dt,
                end_time - self.model_time,
            )
            vel += 0.5 * dt * acc
            u += 0.5 * dt * dudt
            np.maximum(u, 1e-12, out=u)
            pos += dt * vel
            acc, dudt, _ = self._forces()
            vel += 0.5 * dt * acc
            u += 0.5 * dt * dudt
            np.maximum(u, 1e-12, out=u)
            self.model_time += dt
            self.step_count += 1
        return 0

    # -- diagnostics / bridge surface -----------------------------------------------

    def get_kinetic_energy(self):
        st = self.storage
        return float(
            0.5 * (st.arrays["mass"] * (st.arrays["vel"] ** 2).sum(axis=1)
                   ).sum()
        )

    def get_thermal_energy(self):
        st = self.storage
        return float((st.arrays["mass"] * st.arrays["u"]).sum())

    def get_potential_energy(self):
        st = self.storage
        if not self.self_gravity or len(st) == 0:
            return 0.0
        tree = Octree(st.arrays["pos"], st.arrays["mass"])
        phi = tree.potentials(theta=self.theta, eps2=self.eps2)
        return float(0.5 * (st.arrays["mass"] * phi).sum())

    def get_total_energy(self):
        return (
            self.get_kinetic_energy() + self.get_thermal_energy()
            + self.get_potential_energy()
        )

    def get_gravity_at_point(self, eps2, points):
        st = self.storage
        tree = Octree(st.arrays["pos"], st.arrays["mass"])
        pts = np.asarray(points, dtype=float)
        self.interaction_count += int(
            len(pts) * max(1.0, np.log2(max(len(st), 2)))
        )
        return tree.accelerations(
            targets=pts, theta=self.theta,
            eps2=max(float(eps2), self.eps2),
        )

    def get_potential_at_point(self, eps2, points):
        st = self.storage
        tree = Octree(st.arrays["pos"], st.arrays["mass"])
        return tree.potentials(
            targets=np.asarray(points, dtype=float), theta=self.theta,
            eps2=max(float(eps2), self.eps2),
        )


class ParallelGadget:
    """Domain-decomposed evolution of a :class:`GadgetInterface` over the
    in-process MPI substrate — Gadget's C/MPI character (paper: "8 nodes,
    C/MPI/Ibis, gas dynamics (Gadget)").

    Rank r owns a contiguous slab of particles.  Each step: allgather the
    (small) global state, compute forces for the local slab, allreduce
    the Courant step, advance the slab, allgather the result.  The serial
    and parallel paths share :func:`sph_state_arrays`, so results agree
    to round-off for the same step sequence.
    """

    def __init__(self, interface, world):
        self.interface = interface
        self.world = world

    def evolve_model(self, end_time):
        iface = self.interface
        iface.ensure_state("RUN")
        st = iface.storage
        n = len(st)
        if n == 0:
            iface.model_time = float(end_time)
            return 0
        size = self.world.size
        bounds = np.linspace(0, n, size + 1).astype(int)
        state = {
            "pos": st.arrays["pos"].copy(),
            "vel": st.arrays["vel"].copy(),
            "u": st.arrays["u"].copy(),
            "mass": st.arrays["mass"].copy(),
            "t": float(iface.model_time),
        }

        def rank_main(comm):
            lo, hi = bounds[comm.rank], bounds[comm.rank + 1]
            sl = slice(lo, hi)
            pos = comm.bcast(state["pos"], root=0)
            vel = comm.bcast(state["vel"], root=0)
            u = comm.bcast(state["u"], root=0)
            mass = comm.bcast(state["mass"], root=0)
            t = state["t"]
            while t < end_time - 1e-15:
                rho, h, acc, dudt, dt_c = sph_state_arrays(
                    pos, vel, mass, u, iface.n_neighbours, iface.gamma,
                    iface.alpha_visc, iface.beta_visc, iface.eps2,
                    iface.theta, iface.self_gravity, row_slice=sl,
                )
                dt = comm.allreduce(
                    min(iface.courant * dt_c, iface.max_dt,
                        end_time - t),
                    op="min",
                )
                my_vel = vel[sl] + 0.5 * dt * acc
                my_u = np.maximum(u[sl] + 0.5 * dt * dudt, 1e-12)
                my_pos = pos[sl] + dt * my_vel
                pos = comm.allgatherv(my_pos)
                # u and vel at half step are needed globally for forces
                vel_half = comm.allgatherv(my_vel)
                u_half = comm.allgatherv(my_u)
                rho, h, acc, dudt, _ = sph_state_arrays(
                    pos, vel_half, mass, u_half, iface.n_neighbours,
                    iface.gamma, iface.alpha_visc, iface.beta_visc,
                    iface.eps2, iface.theta, iface.self_gravity,
                    row_slice=sl,
                )
                my_vel = vel_half[sl] + 0.5 * dt * acc
                my_u = np.maximum(u_half[sl] + 0.5 * dt * dudt, 1e-12)
                vel = comm.allgatherv(my_vel)
                u = comm.allgatherv(my_u)
                t += dt
            return pos, vel, u, t

        results = self.world.run(rank_main)
        pos, vel, u, t = results[0]
        st.arrays["pos"][...] = pos
        st.arrays["vel"][...] = vel
        st.arrays["u"][...] = u
        iface.model_time = t
        iface.step_count += 1
        return 0
