"""High-level (script-side) model code wrappers — async-first API.

These are the objects an AMUSE script instantiates: they hide the channel
and the worker behind a units-checked interface.  "This API is based as
much as possible on the physical interactions of the different types of
models, rather than their underlying numerical representation" (paper
Sec. 4.1) — and "AMUSE implements ... automatic unit conversion", which
happens here: gravity/hydro workers run in N-body units internally, the
script sees SI quantities through a
:class:`~repro.units.nbody.ConvertBetweenGenericAndSiUnits`.

**The API is async-first.**  Every remote operation ``code.m(...)`` also
exists as ``code.m.async_(...)``, which returns a *unit-aware future*
(:class:`~repro.rpc.futures.Future` / ``QuantityFuture``) instead of
blocking; unit conversion and mirror refreshes happen at
future-resolution time, in the joining thread.  The blocking form is a
thin shim — exactly ``async_(...).result()`` — so legacy scripts keep
working unchanged while concurrent ones overlap their models, the
paper's core performance claim ("multiple simulations ... executed
concurrently", Sec. 5).  Illegal overlaps (a second evolve, particle
edits or ``stop`` while an evolve future is outstanding) raise
:class:`~repro.codes.base.CodeStateError` eagerly in the caller.

Blocking usage (unchanged from the classic API)::

    conv = nbody_system.nbody_to_si(1000 | units.MSun, 1 | units.parsec)
    gravity = PhiGRAPE(conv, channel_type="sockets", kernel="gpu")
    gravity.add_particles(stars)
    gravity.evolve_model(1.0 | units.Myr)
    gravity.stop()

Concurrent usage — gravity, hydro and stellar evolution advance
simultaneously on their own resources and join at the coupling point::

    from repro.codes import EvolveGroup

    group = EvolveGroup([gravity, hydro, se])
    group.evolve(1.0 | units.Myr)          # overlapped, joined

    # or hand-rolled with futures:
    f1 = gravity.evolve_model.async_(1.0 | units.Myr)
    f2 = hydro.evolve_model.async_(1.0 | units.Myr)
    wait_all([f1, f2])
"""

from __future__ import annotations

import functools

import numpy as np

from ..datamodel import Particles
from ..rpc import (
    Future,
    ProtocolError,
    QuantityFuture,
    new_channel,
    remote_method,
    wait_all,
)
from ..units import nbody as nbody_system
from ..units import units as u
from ..units.core import Quantity
from .base import CodeStateError, InflightTracker
from .gadget import GadgetInterface
from .phigrape import PhiGRAPEInterface
from .sse import SSEInterface
from .treecode import FiInterface, OctgravInterface

__all__ = [
    "CommunityCode",
    "GravitationalDynamicsCode",
    "PhiGRAPE",
    "Octgrav",
    "Fi",
    "Gadget",
    "SSE",
]


class _ParametersProxy:
    """Attribute-style access to worker parameters over the channel.

    *on_set* (when given) records every successful parameter write —
    the replay cache :meth:`CommunityCode.restart_worker` pushes onto a
    respawned worker.
    """

    def __init__(self, channel, names, inflight=None, on_set=None):
        object.__setattr__(self, "_channel", channel)
        object.__setattr__(self, "_names", tuple(names))
        object.__setattr__(self, "_inflight", inflight)
        object.__setattr__(self, "_on_set", on_set)

    def __getattr__(self, name):
        if name not in self._names:
            raise AttributeError(
                f"unknown parameter {name!r}; valid: {sorted(self._names)}"
            )
        return self._channel.call("get_parameter", name)

    def __setattr__(self, name, value):
        if name not in self._names:
            raise AttributeError(
                f"unknown parameter {name!r}; valid: {sorted(self._names)}"
            )
        if self._inflight is not None:
            self._inflight.require_idle(f"set parameter {name}")
        self._channel.call("set_parameter", name, value)
        if self._on_set is not None:
            self._on_set(name, value)

    def __repr__(self):
        # ONE batched frame for the full table, not a round trip per
        # parameter
        names = sorted(self._names)
        with self._channel.batch():
            requests = [
                self._channel.async_call("get_parameter", name)
                for name in names
            ]
        values = wait_all(requests)
        pairs = ", ".join(
            f"{n}={v!r}" for n, v in zip(names, values, strict=True)
        )
        return f"<parameters {pairs}>"


class CommunityCode:
    """Base for script-side code wrappers.

    Subclasses set ``INTERFACE`` to a low-level interface class.  The
    worker is started through a channel chosen by name ("direct"/"mpi",
    "sockets", "subprocess", "ibis"/"distributed") — switching resource
    or channel is the single-line change the paper demonstrates
    (Sec. 6.2: "we only had to change a single line in our simulation
    script").  ``channel_type="subprocess"`` runs the worker in its own
    OS process: concurrent models then overlap real compute, not just
    sleep/IO (the AMUSE process model).

    Remote operations are :class:`~repro.rpc.futures.remote_method`\\ s:
    ``code.evolve_model(t)`` blocks, ``code.evolve_model.async_(t)``
    returns a future joined at the next coupling point.  A per-code
    :class:`~repro.codes.base.InflightTracker` rejects operations that
    would race with an outstanding evolve.
    """

    INTERFACE = None

    def __init__(self, convert_nbody=None, channel_type="direct",
                 channel_options=None, session=None, **parameters):
        interface_cls = self.INTERFACE
        if interface_cls is None:
            raise TypeError(
                f"{type(self).__name__} does not define an interface"
            )
        if session is not None:
            # place this code's pilot inside a daemon session (the
            # repro.distributed.connect surface); channel_type then
            # names the daemon-side pilot mode, not a channel factory
            channel_type, channel_options = session._channel_spec(
                None if channel_type == "direct" else channel_type,
                channel_options,
            )
        # partial (not a closure) so the ibis channel can pickle the
        # factory across the daemon's loopback socket
        factory = functools.partial(interface_cls, **parameters)

        # retained so restart_worker can respawn through the same
        # factory (the FaultPolicy.RESTART primitive)
        self._channel_type = channel_type
        self._channel_options = dict(channel_options or {})
        self._interface_factory = factory
        #: parameters set through the proxy, in write order — replayed
        #: verbatim onto a respawned worker
        self._parameter_cache = {}
        #: the worker's model clock (code units) at the last completed
        #: evolve — restored on restart so the replay resumes, not
        #: re-integrates
        self._model_time_code = 0.0

        self.channel = new_channel(
            channel_type, factory, **self._channel_options
        )
        self.converter = convert_nbody
        self._inflight = InflightTracker(type(self).__name__)
        self.parameters = _ParametersProxy(
            self.channel, self.channel.call("parameter_names"),
            self._inflight, on_set=self._record_parameter,
        )
        self.particles = Particles(0)
        self._ids = np.empty(0, dtype=np.int64)
        self._stopped = False

    def _record_parameter(self, name, value):
        self._parameter_cache[name] = value

    # -- unit plumbing -------------------------------------------------------

    def _to_code(self, quantity, code_unit):
        """Script quantity -> bare number in the code's unit."""
        if self.converter is not None and not quantity.unit.is_generic:
            quantity = self.converter.to_nbody(quantity)
        return quantity.value_in(code_unit)

    def _from_code(self, number, code_unit):
        """Bare number in the code's unit -> script quantity."""
        q = Quantity(number, code_unit)
        if self.converter is not None:
            q = self.converter.to_si(q)
        return q

    # -- state guards --------------------------------------------------------

    def _require_open(self, action):
        if self._stopped:
            raise CodeStateError(
                f"{type(self).__name__} has been stopped; "
                f"cannot {action}"
            )

    def _require_edit(self, action):
        """Guard for operations that mutate worker state: the code must
        be open AND no async transition may be in flight."""
        self._require_open(action)
        self._inflight.require_idle(action)

    # -- evolution (the async-first core) ------------------------------------

    def _begin_transition(self, name):
        """Mark a mutating async operation in flight.  Every mutating
        remote method registers here, so ANY ordering of overlapping
        mutations (evolve-then-kick or kick-then-evolve) raises
        :class:`CodeStateError` eagerly instead of letting a late join
        clobber the worker state."""
        self._require_open(name)
        self._inflight.begin(name)

    def _transition_future(self, name, request=None, requests=None,
                           transform=None):
        """Future for an in-flight transition: retires it at join time
        whatever the outcome."""
        return Future(
            request=request, requests=requests, transform=transform,
            cleanup=lambda: self._inflight.finish(name),
            description=f"{type(self).__name__}.{name}",
        )

    def _abort_transition(self, name):
        self._inflight.finish(name)

    def _launch_guarded(self, name, launch):
        """Run *launch* (which issues the channel calls for an already-
        begun transition); abort the transition if the launch itself
        raises, so a failed send can never brick the tracker."""
        try:
            return launch()
        except BaseException:
            self._abort_transition(name)
            raise

    def _launch_evolve(self, t_code):
        """Issue the evolve, mark the transition in flight, and return
        a future that refreshes the mirror at join time."""
        self._begin_transition("evolve_model")
        request = self._launch_guarded(
            "evolve_model",
            lambda: self.channel.async_call(
                "evolve_model", float(t_code)
            ),
        )

        def _join(value):
            self.pull_state()
            self._model_time_code = float(t_code)
            return value

        return self._transition_future(
            "evolve_model", request, transform=_join
        )

    @remote_method
    def evolve_model(self, end_time):
        """Advance the worker to *end_time* and refresh the mirror.

        ``evolve_model.async_(t)`` returns the future instead: the
        worker advances in the background and the mirror refresh (plus
        unit conversion) runs when the future is joined.
        """
        return self._launch_evolve(
            self._to_code(end_time, self._TIME_UNIT)
        )

    @remote_method
    def pull_state(self):
        """Refresh the local mirror from the worker (no-op by default;
        subclasses fetch their attribute sets in one batched frame)."""
        self._require_open("pull_state")
        return Future.completed(
            self.particles,
            description=f"{type(self).__name__}.pull_state",
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def model_time(self):
        self._require_open("read model_time")
        return self._from_code(
            self.channel.call("get_model_time"), self._TIME_UNIT
        )

    @property
    def stopped(self):
        """True once :meth:`stop` has completed."""
        return self._stopped

    def stop(self):
        """Stop the worker.  A second stop — or stopping while an async
        evolve is in flight — raises :class:`CodeStateError` instead of
        racing the channel shutdown."""
        if self._stopped:
            raise CodeStateError(
                f"{type(self).__name__} has already been stopped"
            )
        self._inflight.require_idle("stop")
        self.channel.stop()
        self._stopped = True

    def shutdown(self):
        """Unconditional worker shutdown — the cleanup path.

        Unlike :meth:`stop` this never raises for an in-flight async
        transition and is a no-op on an already-stopped code.  An
        outstanding future is never left hanging: its join either
        returns normally (the worker finished the call before the
        channel closed) or raises — typically :class:`CodeStateError`
        from the post-evolve mirror refresh, or a channel error if the
        call was still on the wire.  Used by ``__exit__`` during
        exception unwinding and by :meth:`EvolveGroup.stop`.
        """
        if self._stopped:
            return
        try:
            self.channel.stop()
        except ProtocolError:
            # the worker is already gone (e.g. a crashed subprocess
            # child surfacing as ConnectionLostError); cleanup must
            # still release the script-side state, never re-raise
            pass
        self._inflight.resync()
        self._stopped = True

    def restart_worker(self):
        """Respawn the worker through the original channel factory and
        replay the script-side state — the RESTART fault-policy
        primitive (the paper's Sec. 5 "transparently find a
        replacement machine" future work).

        The dead (or hung) channel is force-closed, the in-flight
        tracker resynchronized, a fresh worker spawned with the same
        channel type/options, every parameter ever set through the
        proxy replayed in write order, and the subclass's
        :meth:`_replay_state` hook re-uploads the particle mirror and
        restores the model clock.  The code is usable immediately —
        typically relaunched by
        :meth:`~repro.rpc.taskgraph.TaskGraph.run` resuming its graph.
        """
        try:
            self.channel.stop()
        except ProtocolError:
            # the worker is already gone (ConnectionLostError from a
            # SIGKILLed child) or the channel is beyond an orderly
            # stop; respawning is the whole point
            pass
        self._inflight.resync()
        self.channel = new_channel(
            self._channel_type, self._interface_factory,
            **self._channel_options,
        )
        self.parameters = _ParametersProxy(
            self.channel, self.channel.call("parameter_names"),
            self._inflight, on_set=self._record_parameter,
        )
        for name, value in self._parameter_cache.items():
            self.channel.call("set_parameter", name, value)
        self._stopped = False
        self._replay_state()
        return self

    def _replay_state(self):
        """Push the cached script-side state onto a fresh worker.

        The base replay restores the model clock; subclasses that
        mirror particles re-upload them first (in code units, through
        the same converter as the original upload, so unit-converted
        state round-trips exactly).
        """
        self.channel.call("set_model_time", self._model_time_code)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        if not self._stopped:
            if exc[0] is None and self._inflight.inflight is None:
                self.stop()
            else:
                # unwinding an exception (or exiting with an
                # outstanding future): an orderly stop could raise —
                # CodeStateError for the in-flight transition, or
                # ConnectionLostError from a crashed subprocess
                # worker — and mask the body's exception; force the
                # shutdown instead
                self.shutdown()
        return False


class GravitationalDynamicsCode(CommunityCode):
    """Shared wrapper for PhiGRAPE / Octgrav / Fi (and Gadget's gravity
    surface): particle management, evolution, energies, bridge fields."""

    _TIME_UNIT = nbody_system.time
    _MASS_UNIT = nbody_system.mass
    _LENGTH_UNIT = nbody_system.length
    _SPEED_UNIT = nbody_system.speed

    def add_particles(self, particles):
        """Register script particles with the worker; returns the local
        mirror subset."""
        self._require_edit("add_particles")
        mass = self._to_code(particles.mass, self._MASS_UNIT)
        pos = self._to_code(particles.position, self._LENGTH_UNIT)
        vel = self._to_code(particles.velocity, self._SPEED_UNIT)
        ids = self.channel.call(
            "new_particle", mass,
            pos[:, 0], pos[:, 1], pos[:, 2],
            vel[:, 0], vel[:, 1], vel[:, 2],
        )
        self._register(particles, ids, mass, pos, vel)
        return self.particles

    def _register(self, particles, ids, mass, pos, vel):
        mirror = Particles(keys=np.asarray(particles.key))
        mirror.mass = self._from_code(mass, self._MASS_UNIT)
        mirror.position = self._from_code(pos, self._LENGTH_UNIT)
        mirror.velocity = self._from_code(vel, self._SPEED_UNIT)
        self.particles.add_particles(mirror)
        self._ids = np.concatenate(
            [self._ids, np.asarray(ids, dtype=np.int64)]
        )

    def commit_particles(self):
        self._require_edit("commit_particles")
        self.channel.call("ensure_state", "RUN")

    def _replay_state(self):
        """RESTART replay: re-upload the mirror (converted back to
        code units exactly like the original ``add_particles``), run
        the fresh worker up to RUN, and restore the model clock.  The
        worker assigns new ids; the mirror keeps its keys."""
        if len(self._ids):
            mass = self._to_code(self.particles.mass, self._MASS_UNIT)
            pos = self._to_code(
                self.particles.position, self._LENGTH_UNIT
            )
            vel = self._to_code(
                self.particles.velocity, self._SPEED_UNIT
            )
            ids = self.channel.call(
                "new_particle", mass,
                pos[:, 0], pos[:, 1], pos[:, 2],
                vel[:, 0], vel[:, 1], vel[:, 2],
                *self._replay_extra_columns(),
            )
            self._ids = np.asarray(ids, dtype=np.int64)
            self.channel.call("ensure_state", "RUN")
        self.channel.call("set_model_time", self._model_time_code)

    def _replay_extra_columns(self):
        """Extra ``new_particle`` columns for the replay upload (the
        Gadget subclass adds internal energy)."""
        return ()

    #: worker getter -> (mirror attribute, unit factory) for pull_state;
    #: subclasses extend this to sync extra attributes in the same frame
    _PULL_ATTRS = (
        ("get_mass", "mass", lambda self: self._MASS_UNIT),
        ("get_position", "position", lambda self: self._LENGTH_UNIT),
        ("get_velocity", "velocity", lambda self: self._SPEED_UNIT),
    )

    @remote_method
    def pull_state(self):
        """Refresh the local mirror from the worker.

        One batched frame fetches every attribute in ``_PULL_ATTRS``
        per sync instead of one frame per attribute; the async form
        applies the values (and unit conversion) at join time.
        """
        self._require_open("pull_state")
        if not len(self._ids):
            return Future.completed(
                self.particles,
                description=f"{type(self).__name__}.pull_state",
            )
        with self.channel.batch():
            requests = [
                (attr, unit_of, self.channel.async_call(getter, self._ids))
                for getter, attr, unit_of in self._PULL_ATTRS
            ]

        def _apply(values):
            for (attr, unit_of, _request), value in zip(requests, values,
                                                        strict=True):
                setattr(
                    self.particles, attr,
                    self._from_code(value, unit_of(self)),
                )
            return self.particles

        return Future(
            requests=[request for _a, _u, request in requests],
            transform=_apply,
            description=f"{type(self).__name__}.pull_state",
        )

    @remote_method
    def push_masses(self):
        """Send mirror masses to the worker (stellar-evolution coupling)."""
        self._begin_transition("push_masses")
        if not len(self._ids):
            self._abort_transition("push_masses")
            return Future.completed(None)
        request = self._launch_guarded(
            "push_masses",
            lambda: self.channel.async_call(
                "set_mass", self._ids,
                self._to_code(self.particles.mass, self._MASS_UNIT),
            ),
        )
        return self._transition_future(
            "push_masses", request, transform=lambda _v: None
        )

    @remote_method
    def push_state(self):
        """Send mirror positions/velocities/masses to the worker in one
        batched frame."""
        self._begin_transition("push_state")
        if not len(self._ids):
            self._abort_transition("push_state")
            return Future.completed(None)

        def _launch():
            pos = self._to_code(
                self.particles.position, self._LENGTH_UNIT
            )
            vel = self._to_code(
                self.particles.velocity, self._SPEED_UNIT
            )
            mass = self._to_code(self.particles.mass, self._MASS_UNIT)
            with self.channel.batch():
                return [
                    self.channel.async_call(
                        "set_position", self._ids, pos
                    ),
                    self.channel.async_call(
                        "set_velocity", self._ids, vel
                    ),
                    self.channel.async_call("set_mass", self._ids, mass),
                ]

        requests = self._launch_guarded("push_state", _launch)
        return self._transition_future(
            "push_state", requests=requests,
            transform=lambda _values: None,
        )

    @remote_method
    def kick(self, velocity_delta):
        """Apply a velocity increment to all particles (bridge kicks).

        One pipelined ``add_velocity`` round trip per kick — no
        join-time channel I/O, so kicks on independent codes overlap
        fully when launched asynchronously."""
        self._begin_transition("kick")
        request = self._launch_guarded(
            "kick",
            lambda: self.channel.async_call(
                "add_velocity", self._ids,
                self._to_code(velocity_delta, self._SPEED_UNIT),
            ),
        )
        return self._transition_future(
            "kick", request, transform=lambda _v: None
        )

    # -- diagnostics ---------------------------------------------------------

    def _energy_future(self, getter):
        self._require_open(getter)
        return QuantityFuture(
            self.channel.async_call(getter),
            transform=lambda v: self._from_code(v, nbody_system.energy),
            description=f"{type(self).__name__}.{getter}",
        )

    @remote_method
    def get_kinetic_energy(self):
        return self._energy_future("get_kinetic_energy")

    @remote_method
    def get_potential_energy(self):
        return self._energy_future("get_potential_energy")

    @remote_method
    def get_total_energy(self):
        return self._energy_future("get_total_energy")

    @property
    def kinetic_energy(self):
        return self.get_kinetic_energy()

    @property
    def potential_energy(self):
        return self.get_potential_energy()

    @property
    def total_energy(self):
        return self.get_total_energy()

    # -- bridge field surface ------------------------------------------------

    def _field_query(self, method, unit, eps, points, sources):
        """Evaluate a field method, optionally uploading source
        particles first — upload and query travel in ONE batched frame
        (the coupling model's per-kick exchange).  Returns a
        :class:`QuantityFuture`; unit conversion runs at join time."""
        self._require_open(method)
        if sources is not None:
            # the source upload REPLACES the worker's particle
            # content — a mutation, so it must not pipeline behind an
            # in-flight evolve of this same code
            self._inflight.require_idle(f"{method} with source upload")
        eps2 = float(self._to_code(eps, self._LENGTH_UNIT)) ** 2
        pts = self._to_code(points, self._LENGTH_UNIT)
        upload = None
        with self.channel.batch():
            if sources is not None:
                mass, pos = sources
                upload = self.channel.async_call(
                    "load_field_particles", mass, pos
                )
            request = self.channel.async_call(method, eps2, pts)

        def _convert(value):
            if upload is not None:
                upload.result()   # a failed upload must raise, not let
                                  # the query pass off stale field data
            return self._from_code(value, unit)

        return QuantityFuture(
            request, transform=_convert,
            description=f"{type(self).__name__}.{method}",
        )

    @remote_method
    def get_gravity_at_point(self, eps, points, sources=None):
        return self._field_query(
            "get_gravity_at_point", nbody_system.acceleration,
            eps, points, sources,
        )

    @remote_method
    def get_potential_at_point(self, eps, points, sources=None):
        return self._field_query(
            "get_potential_at_point", nbody_system.speed ** 2,
            eps, points, sources,
        )


class PhiGRAPE(GravitationalDynamicsCode):
    """Direct N-body dynamics; ``kernel="cpu"`` or ``"gpu"``."""

    INTERFACE = PhiGRAPEInterface


class Octgrav(GravitationalDynamicsCode):
    """GPU Barnes–Hut tree gravity (the coupling model of the paper)."""

    INTERFACE = OctgravInterface


class Fi(GravitationalDynamicsCode):
    """CPU tree gravity — the coupling fallback when no GPU exists."""

    INTERFACE = FiInterface


class Gadget(GravitationalDynamicsCode):
    """SPH gas dynamics; adds internal energy handling on top of the
    gravitational surface."""

    INTERFACE = GadgetInterface

    def add_particles(self, particles):
        self._require_edit("add_particles")
        mass = self._to_code(particles.mass, self._MASS_UNIT)
        pos = self._to_code(particles.position, self._LENGTH_UNIT)
        vel = self._to_code(particles.velocity, self._SPEED_UNIT)
        uu = self._to_code(particles.u, self._SPEED_UNIT ** 2)
        ids = self.channel.call(
            "new_particle", mass,
            pos[:, 0], pos[:, 1], pos[:, 2],
            vel[:, 0], vel[:, 1], vel[:, 2], uu,
        )
        self._register(particles, ids, mass, pos, vel)
        self.particles.u = self._from_code(uu, self._SPEED_UNIT ** 2)
        return self.particles

    _PULL_ATTRS = GravitationalDynamicsCode._PULL_ATTRS + (
        ("get_internal_energy", "u", lambda self: self._SPEED_UNIT ** 2),
    )

    def _replay_extra_columns(self):
        return (self._to_code(self.particles.u, self._SPEED_UNIT ** 2),)

    def inject_energy(self, subset_indices, du):
        """Add specific internal energy *du* to the given particles —
        the supernova/wind feedback path of the embedded-cluster run."""
        self._require_edit("inject_energy")
        ids = self._ids[np.asarray(subset_indices, dtype=np.intp)]
        self.channel.call(
            "add_internal_energy", ids,
            self._to_code(du, self._SPEED_UNIT ** 2),
        )

    @remote_method
    def get_thermal_energy(self):
        return self._energy_future("get_thermal_energy")

    @property
    def thermal_energy(self):
        return self.get_thermal_energy()


class SSE(CommunityCode):
    """Stellar evolution; native units are MSun/RSun/LSun/Myr/K, so no
    N-body converter is involved."""

    INTERFACE = SSEInterface
    _TIME_UNIT = u.Myr

    def __init__(self, channel_type="direct", channel_options=None,
                 session=None, **parameters):
        super().__init__(
            convert_nbody=None, channel_type=channel_type,
            channel_options=channel_options, session=session,
            **parameters,
        )

    def add_particles(self, particles):
        self._require_edit("add_particles")
        zams = particles.mass.value_in(u.MSun)
        ids = self.channel.call("new_particle", zams)
        mirror = Particles(keys=np.asarray(particles.key))
        mirror.mass = Quantity(zams, u.MSun)
        self.particles.add_particles(mirror)
        self._ids = np.concatenate(
            [self._ids, np.asarray(ids, dtype=np.int64)]
        )
        self.pull_state()
        return self.particles

    def _replay_state(self):
        """RESTART replay: re-seed the fresh worker from the mirror's
        current masses and restore the evolution clock.  (The mirror
        holds evolved masses, not ZAMS values — replaying them keeps
        the script-visible state continuous across the respawn.)"""
        if len(self._ids):
            ids = self.channel.call(
                "new_particle", self.particles.mass.value_in(u.MSun)
            )
            self._ids = np.asarray(ids, dtype=np.int64)
            self.channel.call("ensure_state", "RUN")
        self.channel.call("set_model_time", self._model_time_code)

    @remote_method
    def pull_state(self):
        self._require_open("pull_state")
        if not len(self._ids):
            return Future.completed(
                self.particles, description="SSE.pull_state"
            )
        request = self.channel.async_call("get_state", self._ids)

        def _apply(state):
            mass, radius, lum, teff, stype = state
            self.particles.mass = Quantity(mass, u.MSun)
            self.particles.radius = Quantity(radius, u.RSun)
            self.particles.luminosity = Quantity(lum, u.LSun)
            self.particles.temperature = Quantity(teff, u.K)
            self.particles.stellar_type = np.asarray(stype)
            return self.particles

        return Future(
            request, transform=_apply, description="SSE.pull_state"
        )

    @remote_method
    def time_of_next_supernova(self):
        return QuantityFuture(
            self.channel.async_call("time_of_next_supernova"),
            transform=lambda t: Quantity(t, u.Myr),
            description="SSE.time_of_next_supernova",
        )
