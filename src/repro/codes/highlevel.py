"""High-level (script-side) model code wrappers.

These are the objects an AMUSE script instantiates: they hide the channel
and the worker behind a units-checked interface.  "This API is based as
much as possible on the physical interactions of the different types of
models, rather than their underlying numerical representation" (paper
Sec. 4.1) — and "AMUSE implements ... automatic unit conversion", which
happens here: gravity/hydro workers run in N-body units internally, the
script sees SI quantities through a
:class:`~repro.units.nbody.ConvertBetweenGenericAndSiUnits`.

Usage::

    conv = nbody_system.nbody_to_si(1000 | units.MSun, 1 | units.parsec)
    gravity = PhiGRAPE(conv, channel_type="sockets", kernel="gpu")
    gravity.add_particles(stars)
    gravity.evolve_model(1.0 | units.Myr)
    gravity.particles.new_channel_to(stars).copy_attributes(
        ["position", "velocity"])
    gravity.stop()
"""

from __future__ import annotations

import functools

import numpy as np

from ..datamodel import Particles
from ..rpc import new_channel, wait_all
from ..units import nbody as nbody_system
from ..units import units as u
from ..units.core import Quantity
from .gadget import GadgetInterface
from .phigrape import PhiGRAPEInterface
from .sse import SSEInterface
from .treecode import FiInterface, OctgravInterface

__all__ = [
    "CommunityCode",
    "GravitationalDynamicsCode",
    "PhiGRAPE",
    "Octgrav",
    "Fi",
    "Gadget",
    "SSE",
]


class _ParametersProxy:
    """Attribute-style access to worker parameters over the channel."""

    def __init__(self, channel, names):
        object.__setattr__(self, "_channel", channel)
        object.__setattr__(self, "_names", tuple(names))

    def __getattr__(self, name):
        if name not in self._names:
            raise AttributeError(
                f"unknown parameter {name!r}; valid: {sorted(self._names)}"
            )
        return self._channel.call("get_parameter", name)

    def __setattr__(self, name, value):
        if name not in self._names:
            raise AttributeError(
                f"unknown parameter {name!r}; valid: {sorted(self._names)}"
            )
        self._channel.call("set_parameter", name, value)

    def __repr__(self):
        pairs = ", ".join(
            f"{n}={self._channel.call('get_parameter', n)!r}"
            for n in sorted(self._names)
        )
        return f"<parameters {pairs}>"


class CommunityCode:
    """Base for script-side code wrappers.

    Subclasses set ``INTERFACE`` to a low-level interface class.  The
    worker is started through a channel chosen by name ("direct"/"mpi",
    "sockets", "ibis"/"distributed") — switching resource or channel is
    the single-line change the paper demonstrates (Sec. 6.2: "we only
    had to change a single line in our simulation script").
    """

    INTERFACE = None

    def __init__(self, convert_nbody=None, channel_type="direct",
                 channel_options=None, **parameters):
        interface_cls = self.INTERFACE
        if interface_cls is None:
            raise TypeError(
                f"{type(self).__name__} does not define an interface"
            )
        # partial (not a closure) so the ibis channel can pickle the
        # factory across the daemon's loopback socket
        factory = functools.partial(interface_cls, **parameters)

        self.channel = new_channel(
            channel_type, factory, **(channel_options or {})
        )
        self.converter = convert_nbody
        self.parameters = _ParametersProxy(
            self.channel, self.channel.call("parameter_names")
        )
        self.particles = Particles(0)
        self._ids = np.empty(0, dtype=np.int64)
        self._stopped = False

    # -- unit plumbing -------------------------------------------------------

    def _to_code(self, quantity, code_unit):
        """Script quantity -> bare number in the code's unit."""
        if self.converter is not None and not quantity.unit.is_generic:
            quantity = self.converter.to_nbody(quantity)
        return quantity.value_in(code_unit)

    def _from_code(self, number, code_unit):
        """Bare number in the code's unit -> script quantity."""
        q = Quantity(number, code_unit)
        if self.converter is not None:
            q = self.converter.to_si(q)
        return q

    # -- lifecycle --------------------------------------------------------------

    @property
    def model_time(self):
        return self._from_code(
            self.channel.call("get_model_time"), self._TIME_UNIT
        )

    def stop(self):
        if not self._stopped:
            self.channel.stop()
            self._stopped = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()
        return False


class GravitationalDynamicsCode(CommunityCode):
    """Shared wrapper for PhiGRAPE / Octgrav / Fi (and Gadget's gravity
    surface): particle management, evolution, energies, bridge fields."""

    _TIME_UNIT = nbody_system.time
    _MASS_UNIT = nbody_system.mass
    _LENGTH_UNIT = nbody_system.length
    _SPEED_UNIT = nbody_system.speed

    def add_particles(self, particles):
        """Register script particles with the worker; returns the local
        mirror subset."""
        mass = self._to_code(particles.mass, self._MASS_UNIT)
        pos = self._to_code(particles.position, self._LENGTH_UNIT)
        vel = self._to_code(particles.velocity, self._SPEED_UNIT)
        ids = self.channel.call(
            "new_particle", mass,
            pos[:, 0], pos[:, 1], pos[:, 2],
            vel[:, 0], vel[:, 1], vel[:, 2],
        )
        self._register(particles, ids, mass, pos, vel)
        return self.particles

    def _register(self, particles, ids, mass, pos, vel):
        mirror = Particles(keys=np.asarray(particles.key))
        mirror.mass = self._from_code(mass, self._MASS_UNIT)
        mirror.position = self._from_code(pos, self._LENGTH_UNIT)
        mirror.velocity = self._from_code(vel, self._SPEED_UNIT)
        self.particles.add_particles(mirror)
        self._ids = np.concatenate(
            [self._ids, np.asarray(ids, dtype=np.int64)]
        )

    def commit_particles(self):
        self.channel.call("ensure_state", "RUN")

    def evolve_model(self, end_time):
        """Advance the worker to *end_time* and refresh the mirror."""
        t = self._to_code(end_time, self._TIME_UNIT)
        result = self.channel.call("evolve_model", float(t))
        self.pull_state()
        return result

    #: worker getter -> (mirror attribute, unit factory) for pull_state;
    #: subclasses extend this to sync extra attributes in the same frame
    _PULL_ATTRS = (
        ("get_mass", "mass", lambda self: self._MASS_UNIT),
        ("get_position", "position", lambda self: self._LENGTH_UNIT),
        ("get_velocity", "velocity", lambda self: self._SPEED_UNIT),
    )

    def pull_state(self):
        """Refresh the local mirror from the worker.

        One batched frame fetches every attribute in ``_PULL_ATTRS``
        per sync instead of one frame per attribute.
        """
        if not len(self._ids):
            return
        with self.channel.batch():
            requests = [
                (attr, unit_of, self.channel.async_call(getter, self._ids))
                for getter, attr, unit_of in self._PULL_ATTRS
            ]
        for attr, unit_of, request in requests:
            setattr(
                self.particles, attr,
                self._from_code(request.result(), unit_of(self)),
            )

    def push_masses(self):
        """Send mirror masses to the worker (stellar-evolution coupling)."""
        if len(self._ids):
            self.channel.call(
                "set_mass", self._ids,
                self._to_code(self.particles.mass, self._MASS_UNIT),
            )

    def push_state(self):
        """Send mirror positions/velocities/masses to the worker in one
        batched frame."""
        if not len(self._ids):
            return
        pos = self._to_code(self.particles.position, self._LENGTH_UNIT)
        vel = self._to_code(self.particles.velocity, self._SPEED_UNIT)
        mass = self._to_code(self.particles.mass, self._MASS_UNIT)
        with self.channel.batch():
            requests = [
                self.channel.async_call("set_position", self._ids, pos),
                self.channel.async_call("set_velocity", self._ids, vel),
                self.channel.async_call("set_mass", self._ids, mass),
            ]
        wait_all(requests)

    def kick(self, velocity_delta):
        """Apply a velocity increment to all particles (bridge kicks)."""
        vel = self.channel.call("get_velocity", self._ids)
        dv = self._to_code(velocity_delta, self._SPEED_UNIT)
        self.channel.call("set_velocity", self._ids, vel + dv)

    # -- diagnostics -----------------------------------------------------------

    @property
    def kinetic_energy(self):
        return self._from_code(
            self.channel.call("get_kinetic_energy"), nbody_system.energy
        )

    @property
    def potential_energy(self):
        return self._from_code(
            self.channel.call("get_potential_energy"),
            nbody_system.energy,
        )

    @property
    def total_energy(self):
        return self._from_code(
            self.channel.call("get_total_energy"), nbody_system.energy
        )

    # -- bridge field surface ------------------------------------------------------

    def _field_query(self, method, unit, eps, points, sources):
        """Evaluate a field method, optionally uploading source
        particles first — upload and query travel in ONE batched frame
        (the coupling model's per-kick exchange)."""
        eps2 = float(self._to_code(eps, self._LENGTH_UNIT)) ** 2
        pts = self._to_code(points, self._LENGTH_UNIT)
        upload = None
        with self.channel.batch():
            if sources is not None:
                mass, pos = sources
                upload = self.channel.async_call(
                    "load_field_particles", mass, pos
                )
            request = self.channel.async_call(method, eps2, pts)
        if upload is not None:
            upload.result()   # a failed upload must raise, not let the
                              # query run against stale field particles
        return self._from_code(request.result(), unit)

    def get_gravity_at_point(self, eps, points, sources=None):
        return self._field_query(
            "get_gravity_at_point", nbody_system.acceleration,
            eps, points, sources,
        )

    def get_potential_at_point(self, eps, points, sources=None):
        return self._field_query(
            "get_potential_at_point", nbody_system.speed ** 2,
            eps, points, sources,
        )


class PhiGRAPE(GravitationalDynamicsCode):
    """Direct N-body dynamics; ``kernel="cpu"`` or ``"gpu"``."""

    INTERFACE = PhiGRAPEInterface


class Octgrav(GravitationalDynamicsCode):
    """GPU Barnes–Hut tree gravity (the coupling model of the paper)."""

    INTERFACE = OctgravInterface


class Fi(GravitationalDynamicsCode):
    """CPU tree gravity — the coupling fallback when no GPU exists."""

    INTERFACE = FiInterface


class Gadget(GravitationalDynamicsCode):
    """SPH gas dynamics; adds internal energy handling on top of the
    gravitational surface."""

    INTERFACE = GadgetInterface

    def add_particles(self, particles):
        mass = self._to_code(particles.mass, self._MASS_UNIT)
        pos = self._to_code(particles.position, self._LENGTH_UNIT)
        vel = self._to_code(particles.velocity, self._SPEED_UNIT)
        uu = self._to_code(particles.u, self._SPEED_UNIT ** 2)
        ids = self.channel.call(
            "new_particle", mass,
            pos[:, 0], pos[:, 1], pos[:, 2],
            vel[:, 0], vel[:, 1], vel[:, 2], uu,
        )
        self._register(particles, ids, mass, pos, vel)
        self.particles.u = self._from_code(uu, self._SPEED_UNIT ** 2)
        return self.particles

    _PULL_ATTRS = GravitationalDynamicsCode._PULL_ATTRS + (
        ("get_internal_energy", "u", lambda self: self._SPEED_UNIT ** 2),
    )

    def inject_energy(self, subset_indices, du):
        """Add specific internal energy *du* to the given particles —
        the supernova/wind feedback path of the embedded-cluster run."""
        ids = self._ids[np.asarray(subset_indices, dtype=np.intp)]
        self.channel.call(
            "add_internal_energy", ids,
            self._to_code(du, self._SPEED_UNIT ** 2),
        )

    @property
    def thermal_energy(self):
        return self._from_code(
            self.channel.call("get_thermal_energy"), nbody_system.energy
        )


class SSE(CommunityCode):
    """Stellar evolution; native units are MSun/RSun/LSun/Myr/K, so no
    N-body converter is involved."""

    INTERFACE = SSEInterface
    _TIME_UNIT = u.Myr

    def __init__(self, channel_type="direct", channel_options=None,
                 **parameters):
        super().__init__(
            convert_nbody=None, channel_type=channel_type,
            channel_options=channel_options, **parameters,
        )

    def add_particles(self, particles):
        zams = particles.mass.value_in(u.MSun)
        ids = self.channel.call("new_particle", zams)
        mirror = Particles(keys=np.asarray(particles.key))
        mirror.mass = Quantity(zams, u.MSun)
        self.particles.add_particles(mirror)
        self._ids = np.concatenate(
            [self._ids, np.asarray(ids, dtype=np.int64)]
        )
        self.pull_state()
        return self.particles

    def evolve_model(self, end_time):
        result = self.channel.call(
            "evolve_model", float(end_time.value_in(u.Myr))
        )
        self.pull_state()
        return result

    def pull_state(self):
        if not len(self._ids):
            return
        mass, radius, lum, teff, stype = self.channel.call(
            "get_state", self._ids
        )
        self.particles.mass = Quantity(mass, u.MSun)
        self.particles.radius = Quantity(radius, u.RSun)
        self.particles.luminosity = Quantity(lum, u.LSun)
        self.particles.temperature = Quantity(teff, u.K)
        self.particles.stellar_type = np.asarray(stype)

    def time_of_next_supernova(self):
        t = self.channel.call("time_of_next_supernova")
        return Quantity(t, u.Myr)
