"""Shared numerical kernels: direct-summation gravity and a Barnes–Hut
octree.

These are the compute cores behind the model codes: PhiGRAPE uses the
direct O(N²) acceleration+jerk kernel (the work a GRAPE board / GPU does),
Octgrav and Fi use the octree (Octgrav is literally "a gravitational
tree-code on GPUs", Gaburov et al. 2010), and Gadget uses the octree for
gas self-gravity.

All kernels are NumPy-vectorized and blocked to bound peak memory, per the
HPC guides ("vectorizing for loops", "beware of cache effects").  Units
never appear here — raw float64 arrays only; unit handling happens at the
AMUSE interface layer.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "direct_acceleration",
    "direct_acc_jerk",
    "direct_potential",
    "total_energy",
    "Octree",
]


def direct_acceleration(pos, mass, eps2=0.0, targets=None, G=1.0,
                        block=1024):
    """Softened direct-sum gravitational acceleration.

    Parameters
    ----------
    pos : (N, 3) source positions;  mass : (N,) source masses.
    targets : (M, 3) evaluation points; defaults to the sources
        (self-interaction contributes zero force).
    """
    pos = np.asarray(pos, dtype=float)
    mass = np.asarray(mass, dtype=float)
    tgt = pos if targets is None else np.asarray(targets, dtype=float)
    acc = np.zeros_like(tgt)
    for i0 in range(0, len(tgt), block):
        i1 = min(i0 + block, len(tgt))
        d = pos[None, :, :] - tgt[i0:i1, None, :]     # (b, N, 3)
        r2 = (d * d).sum(axis=2) + eps2
        inv_r3 = np.zeros_like(r2)
        np.divide(1.0, r2 * np.sqrt(r2), out=inv_r3, where=r2 > 0)
        acc[i0:i1] = (mass[None, :, None] * d * inv_r3[:, :, None]).sum(
            axis=1
        )
    return G * acc


def direct_acc_jerk(pos, vel, mass, eps2=0.0, G=1.0, block=512):
    """Acceleration and jerk (d a / d t) for the Hermite integrator.

    jerk_i = G Σ_j m_j [ v_ij / r³ - 3 (r_ij·v_ij) r_ij / r⁵ ]
    """
    pos = np.asarray(pos, dtype=float)
    vel = np.asarray(vel, dtype=float)
    mass = np.asarray(mass, dtype=float)
    n = len(pos)
    acc = np.zeros_like(pos)
    jerk = np.zeros_like(pos)
    for i0 in range(0, n, block):
        i1 = min(i0 + block, n)
        dr = pos[None, :, :] - pos[i0:i1, None, :]    # (b, N, 3)
        dv = vel[None, :, :] - vel[i0:i1, None, :]
        r2 = (dr * dr).sum(axis=2) + eps2
        inv_r2 = np.zeros_like(r2)
        np.divide(1.0, r2, out=inv_r2, where=r2 > 0)
        inv_r = np.sqrt(inv_r2)
        inv_r3 = inv_r2 * inv_r
        rv = (dr * dv).sum(axis=2) * inv_r2
        m3 = mass[None, :, None] * inv_r3[:, :, None]
        acc[i0:i1] = (m3 * dr).sum(axis=1)
        jerk[i0:i1] = (m3 * (dv - 3.0 * rv[:, :, None] * dr)).sum(axis=1)
    return G * acc, G * jerk


def direct_potential(pos, mass, eps2=0.0, targets=None, G=1.0,
                     block=1024, include_self=False):
    """Softened potential φ at the target points.

    When targets are the sources themselves the self term (m/ε) is
    excluded unless *include_self* is set.
    """
    pos = np.asarray(pos, dtype=float)
    mass = np.asarray(mass, dtype=float)
    self_eval = targets is None
    tgt = pos if self_eval else np.asarray(targets, dtype=float)
    phi = np.zeros(len(tgt))
    for i0 in range(0, len(tgt), block):
        i1 = min(i0 + block, len(tgt))
        d = pos[None, :, :] - tgt[i0:i1, None, :]
        r2 = (d * d).sum(axis=2) + eps2
        inv_r = np.zeros_like(r2)
        np.divide(1.0, np.sqrt(r2), out=inv_r, where=r2 > 0)
        if self_eval and not include_self and eps2 > 0:
            rows = np.arange(i0, i1) - i0
            cols = np.arange(i0, i1)
            inv_r[rows, cols] = 0.0
        phi[i0:i1] = -(mass[None, :] * inv_r).sum(axis=1)
    return G * phi


def total_energy(pos, vel, mass, eps2=0.0, G=1.0):
    """Kinetic + potential energy (diagnostic for integrator tests)."""
    ke = 0.5 * (mass * (np.asarray(vel) ** 2).sum(axis=1)).sum()
    phi = direct_potential(pos, mass, eps2, G=G)
    pe = 0.5 * (mass * phi).sum()
    return ke + pe


class _Node:
    __slots__ = (
        "center", "half", "mass", "com", "children", "start", "end",
        "is_leaf",
    )


class Octree:
    """Barnes–Hut octree over a fixed particle distribution.

    Built once per force evaluation (positions move every step).  The
    traversal is *vectorized over targets*: each node decides acceptance
    for all pending targets at once, recursing only with the subset that
    rejected the node — this keeps the Python-level work O(#nodes) instead
    of O(#targets × #nodes).
    """

    def __init__(self, pos, mass, leaf_size=16):
        self.pos = np.asarray(pos, dtype=float)
        self.mass = np.asarray(mass, dtype=float)
        if self.pos.ndim != 2 or self.pos.shape[1] != 3:
            raise ValueError("positions must be (N, 3)")
        self.leaf_size = int(leaf_size)
        n = len(self.pos)
        self.order = np.arange(n)
        self.nodes = []
        if n:
            lo = self.pos.min(axis=0)
            hi = self.pos.max(axis=0)
            center = 0.5 * (lo + hi)
            half = float(max((hi - lo).max() / 2.0, 1e-12))
            self._build(0, n, center, half)

    # -- construction -------------------------------------------------------

    def _build(self, start, end, center, half):
        """Create the node for order[start:end]; returns its index."""
        node = _Node()
        node.center = center
        node.half = half
        # copy: children overwrite order[start:end] during partitioning
        idx = self.order[start:end].copy()
        node.mass = float(self.mass[idx].sum())
        if node.mass > 0:
            node.com = (
                self.mass[idx, None] * self.pos[idx]
            ).sum(axis=0) / node.mass
        else:
            node.com = center.copy()
        node.start, node.end = start, end
        index = len(self.nodes)
        self.nodes.append(node)
        if end - start <= self.leaf_size or half < 1e-12:
            node.is_leaf = True
            node.children = ()
            return index
        node.is_leaf = False
        # partition particles into octants
        rel = self.pos[idx] >= center[None, :]
        octant = rel[:, 0] * 4 + rel[:, 1] * 2 + rel[:, 2] * 1
        children = []
        cursor = start
        quarter = half / 2.0
        for oct_id in range(8):
            sel = idx[octant == oct_id]
            if not len(sel):
                continue
            self.order[cursor:cursor + len(sel)] = sel
            offset = np.array(
                [
                    quarter if (oct_id & 4) else -quarter,
                    quarter if (oct_id & 2) else -quarter,
                    quarter if (oct_id & 1) else -quarter,
                ]
            )
            child = self._build(
                cursor, cursor + len(sel), center + offset, quarter
            )
            children.append(child)
            cursor += len(sel)
        node.children = tuple(children)
        return index

    # -- traversal ------------------------------------------------------------

    def accelerations(self, targets=None, theta=0.6, eps2=0.0, G=1.0):
        """Monopole BH acceleration at the target points."""
        tgt = self.pos if targets is None else np.asarray(
            targets, dtype=float
        )
        acc = np.zeros_like(tgt)
        if self.nodes:
            self._walk(
                0, np.arange(len(tgt)), tgt, theta, eps2, acc, None
            )
        return G * acc

    def potentials(self, targets=None, theta=0.6, eps2=0.0, G=1.0):
        """Monopole BH potential at the target points."""
        tgt = self.pos if targets is None else np.asarray(
            targets, dtype=float
        )
        phi = np.zeros(len(tgt))
        if self.nodes:
            self._walk(0, np.arange(len(tgt)), tgt, theta, eps2, None, phi)
        return G * phi

    def _walk(self, node_id, pending, tgt, theta, eps2, acc, phi):
        node = self.nodes[node_id]
        if not len(pending) or node.mass == 0.0:
            return
        d = node.com[None, :] - tgt[pending]
        r2 = (d * d).sum(axis=1)
        size = 2.0 * node.half
        if node.is_leaf:
            accepted = np.zeros(len(pending), dtype=bool)
        else:
            accepted = size * size < theta * theta * r2
        if accepted.any():
            sel = pending[accepted]
            dr = d[accepted]
            r2a = r2[accepted] + eps2
            if acc is not None:
                inv_r3 = node.mass / (r2a * np.sqrt(r2a))
                acc[sel] += dr * inv_r3[:, None]
            if phi is not None:
                phi[sel] -= node.mass / np.sqrt(r2a)
        rejected = pending[~accepted]
        if not len(rejected):
            return
        if node.is_leaf:
            src = self.order[node.start:node.end]
            dr = self.pos[src][None, :, :] - tgt[rejected][:, None, :]
            r2l = (dr * dr).sum(axis=2) + eps2
            inv_r = np.zeros_like(r2l)
            np.divide(1.0, np.sqrt(r2l), out=inv_r, where=r2l > 0)
            if acc is not None:
                inv_r3 = inv_r / np.where(r2l > 0, r2l, 1.0)
                acc[rejected] += (
                    self.mass[src][None, :, None] * dr
                    * inv_r3[:, :, None]
                ).sum(axis=1)
            if phi is not None:
                # exclude exact self-hits (r == eps only from the
                # softening): a zero distance means target == source
                zero_dist = (dr == 0).all(axis=2)
                inv_phi = inv_r.copy()
                inv_phi[zero_dist] = 0.0
                phi[rejected] -= (
                    self.mass[src][None, :] * inv_phi
                ).sum(axis=1)
        else:
            for child in node.children:
                self._walk(child, rejected, tgt, theta, eps2, acc, phi)
