"""Model codes ("community codes"): low-level interfaces and high-level
script-side wrappers.

Low level (raw arrays, code-native units): :class:`PhiGRAPEInterface`,
:class:`SSEInterface`, :class:`GadgetInterface`, :class:`OctgravInterface`,
:class:`FiInterface`.

High level (units + channels): :class:`PhiGRAPE`, :class:`SSE`,
:class:`Gadget`, :class:`Octgrav`, :class:`Fi`.
"""

from .base import (
    CodeInterface,
    CodeStateError,
    InCodeParticleStorage,
    InflightTracker,
)
from .gadget import GadgetInterface, ParallelGadget
from .group import EvolveGroup
from .highlevel import (
    CommunityCode,
    Fi,
    Gadget,
    GravitationalDynamicsCode,
    Octgrav,
    PhiGRAPE,
    SSE,
)
from .kernels import (
    Octree,
    direct_acc_jerk,
    direct_acceleration,
    direct_potential,
    total_energy,
)
from .phigrape import PhiGRAPEInterface
from .sse import SSEInterface
from .treecode import FiInterface, OctgravInterface, TreeGravityInterface

__all__ = [
    "CodeInterface",
    "CodeStateError",
    "EvolveGroup",
    "InCodeParticleStorage",
    "InflightTracker",
    "PhiGRAPEInterface",
    "SSEInterface",
    "GadgetInterface",
    "ParallelGadget",
    "OctgravInterface",
    "FiInterface",
    "TreeGravityInterface",
    "CommunityCode",
    "GravitationalDynamicsCode",
    "PhiGRAPE",
    "Octgrav",
    "Fi",
    "Gadget",
    "SSE",
    "Octree",
    "direct_acceleration",
    "direct_acc_jerk",
    "direct_potential",
    "total_energy",
]
