"""Common machinery for model codes ("community codes" in AMUSE speak).

Every kernel (PhiGRAPE, SSE, Gadget, Octgrav, Fi) is implemented as a
*low-level interface*: a class holding raw float64 state whose public
methods take and return plain numbers/arrays — exactly the surface the
original Fortran/C codes expose through MPI.  The RPC layer
(:mod:`repro.rpc`) can run any low-level interface behind a channel, and
the high-level layer (:mod:`repro.codes.highlevel`) adds units and
particle-set mirroring on the script side.

The AMUSE state model is reproduced in compact form: codes move through
``UNINITIALIZED → INITIALIZED → EDIT → RUN`` via ``initialize_code``,
``commit_parameters`` and ``commit_particles``; editing particles drops a
RUN code back to EDIT; ``stop`` ends in STOPPED.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = [
    "CodeInterface",
    "InCodeParticleStorage",
    "CodeStateError",
    "InflightTracker",
    "STATES",
]

STATES = ("UNINITIALIZED", "INITIALIZED", "EDIT", "RUN", "STOPPED")


class CodeStateError(RuntimeError):
    """Raised on illegal state transitions (e.g. evolving a stopped code)."""


class InflightTracker:
    """Script-side tracking of in-flight asynchronous state transitions.

    With the async API a transition like ``evolve_model`` is *in
    flight* between the moment the call is issued and the moment its
    future is joined.  During that window the worker is advancing its
    model, so operations that would race with it — a second evolve,
    particle edits, ``stop`` — are illegal and must raise
    :class:`CodeStateError` *eagerly*, in the caller, rather than be
    pipelined behind the evolve and silently act on a different model
    state than the script sees.

    The high-level wrappers hold one tracker per code: ``begin`` marks
    a transition in flight (rejecting overlaps), ``finish`` retires it
    (wired to the future's cleanup hook so it runs exactly once,
    whatever the outcome), and ``require_idle`` guards mutating
    operations.
    """

    def __init__(self, owner=""):
        self.owner = owner
        self._inflight = None
        self._lock = threading.Lock()

    @property
    def inflight(self):
        """Name of the in-flight transition, or None when idle."""
        return self._inflight

    def begin(self, transition):
        with self._lock:
            if self._inflight is not None:
                raise CodeStateError(
                    f"cannot start {transition} on {self.owner or 'code'}"
                    f" while async {self._inflight} is in flight; join "
                    "its future first"
                )
            self._inflight = transition
        return transition

    def finish(self, transition):
        with self._lock:
            if self._inflight == transition:
                self._inflight = None

    def resync(self):
        """Forget any in-flight transition unconditionally.

        The worker-death recovery path: when the channel is lost (e.g.
        a crashed subprocess worker) the transition can never complete
        remotely, so the tracker must not stay wedged on it.  Normal
        retirement goes through :meth:`finish` via the future's cleanup
        hook; ``resync`` is for cleanup paths that cannot wait for a
        join.
        """
        with self._lock:
            self._inflight = None

    def require_idle(self, action):
        if self._inflight is not None:
            raise CodeStateError(
                f"cannot {action} on {self.owner or 'code'} while async "
                f"{self._inflight} is in flight; join its future first"
            )


class InCodeParticleStorage:
    """Id-keyed structure-of-arrays storage used inside model codes.

    Rows are dense; particle ids map to rows through ``_id_to_row``.
    Deletion compacts the arrays (ids of other particles stay valid).
    """

    def __init__(self, fields):
        # fields: name -> number of components (1 = scalar, 3 = vector)
        self.fields = dict(fields)
        self.arrays = {
            name: np.empty((0, dim)) if dim > 1 else np.empty(0)
            for name, dim in self.fields.items()
        }
        self.ids = np.empty(0, dtype=np.int64)
        self._id_to_row = {}
        self._next_id = 0

    def __len__(self):
        return len(self.ids)

    def add(self, **values):
        """Append particles; returns the assigned ids (ndarray)."""
        counts = {
            name: np.atleast_1d(np.asarray(v, dtype=float)).shape[0]
            for name, v in values.items()
        }
        n = max(counts.values()) if counts else 1
        new_ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
        self._next_id += n
        for name, dim in self.fields.items():
            arr = values.get(name)
            if arr is None:
                block = np.zeros((n, dim)) if dim > 1 else np.zeros(n)
            else:
                block = np.asarray(arr, dtype=float)
                if dim > 1:
                    block = np.broadcast_to(
                        np.atleast_2d(block), (n, dim)
                    ).copy()
                else:
                    block = np.broadcast_to(
                        np.atleast_1d(block), (n,)
                    ).copy()
            self.arrays[name] = np.concatenate([self.arrays[name], block])
        base_row = len(self.ids)
        self.ids = np.concatenate([self.ids, new_ids])
        for offset, pid in enumerate(new_ids):
            self._id_to_row[int(pid)] = base_row + offset
        return new_ids

    def rows(self, ids):
        """Row indices for the given particle ids."""
        try:
            return np.array(
                [self._id_to_row[int(i)] for i in np.atleast_1d(ids)],
                dtype=np.intp,
            )
        except KeyError as exc:
            raise KeyError(f"unknown particle id {exc}") from None

    def get(self, name, ids=None):
        arr = self.arrays[name]
        if ids is None:
            return arr
        return arr[self.rows(ids)]

    def set(self, name, values, ids=None):
        arr = self.arrays[name]
        values = np.asarray(values, dtype=float)
        if ids is None:
            arr[...] = values
        else:
            arr[self.rows(ids)] = values

    def add_to(self, name, values, ids=None):
        """In-place increment (e.g. bridge velocity kicks): one wire
        round trip instead of a get followed by a set."""
        arr = self.arrays[name]
        values = np.asarray(values, dtype=float)
        if ids is None:
            arr += values
        else:
            arr[self.rows(ids)] += values

    def remove(self, ids):
        rows = self.rows(ids)
        keep = np.ones(len(self.ids), dtype=bool)
        keep[rows] = False
        for name in self.arrays:
            self.arrays[name] = self.arrays[name][keep]
        self.ids = self.ids[keep]
        self._id_to_row = {
            int(pid): row for row, pid in enumerate(self.ids)
        }


class CodeInterface:
    """Base class for low-level model-code interfaces.

    Subclasses define PARAMETERS (name -> (default, docstring)) and get
    one instance attribute per parameter.  The state machine hooks
    (``initialize_code`` etc.) may be overridden; ``ensure_state`` walks
    the chain automatically, mirroring AMUSE's implicit state
    transitions.
    """

    PARAMETERS = {}
    #: device the kernel variant targets — used by the jungle cost model
    KERNEL_DEVICE = "cpu"
    #: short literature tag, for documentation / monitoring displays
    LITERATURE = ""

    def __init__(self, **parameter_overrides):
        self.state = "UNINITIALIZED"
        self.model_time = 0.0
        # instrumentation counters read by the jungle performance model
        self.interaction_count = 0
        self.step_count = 0
        for name, (default, _doc) in self.PARAMETERS.items():
            setattr(self, name, parameter_overrides.pop(name, default))
        if parameter_overrides:
            raise TypeError(
                f"unknown parameters {sorted(parameter_overrides)} for "
                f"{type(self).__name__}; valid: {sorted(self.PARAMETERS)}"
            )

    # -- state machine ------------------------------------------------------

    _CHAIN = {
        "UNINITIALIZED": ("INITIALIZED", "initialize_code"),
        "INITIALIZED": ("EDIT", "commit_parameters"),
        "EDIT": ("RUN", "commit_particles"),
    }

    def ensure_state(self, target):
        if self.state == "STOPPED":
            raise CodeStateError(
                f"{type(self).__name__} has been stopped"
            )
        guard = 0
        while self.state != target:
            step = self._CHAIN.get(self.state)
            if step is None:
                raise CodeStateError(
                    f"cannot reach state {target} from {self.state}"
                )
            next_state, hook = step
            getattr(self, hook)()
            # hooks may not change state themselves:
            if self.state != next_state:
                self.state = next_state
            guard += 1
            if guard > len(STATES):
                raise CodeStateError("state machine did not converge")

    def invalidate_model(self):
        """Particle edits drop a running model back to EDIT."""
        if self.state == "RUN":
            self.state = "EDIT"

    # default (overridable) hooks
    def initialize_code(self):
        return 0

    def commit_parameters(self):
        return 0

    def commit_particles(self):
        return 0

    def synchronize_model(self):
        return 0

    def recommit_particles(self):
        return 0

    def cleanup_code(self):
        return 0

    def stop(self):
        if self.state != "STOPPED":
            self.cleanup_code()
            self.state = "STOPPED"
        return 0

    # -- parameter access (RPC-friendly) ---------------------------------------

    def get_parameter(self, name):
        if name not in self.PARAMETERS:
            raise KeyError(name)
        return getattr(self, name)

    def set_parameter(self, name, value):
        if name not in self.PARAMETERS:
            raise KeyError(name)
        if self.state not in ("UNINITIALIZED", "INITIALIZED"):
            # AMUSE allows it only before commit_parameters; be faithful
            raise CodeStateError(
                f"parameter {name} must be set before commit_parameters"
            )
        setattr(self, name, value)
        return 0

    def parameter_names(self):
        return sorted(self.PARAMETERS)

    def get_model_time(self):
        return self.model_time

    def set_model_time(self, value):
        """Restore the model clock — the RESTART replay path: a
        respawned worker resumes from the script's last synchronized
        time instead of re-integrating from zero."""
        self.model_time = float(value)
        return 0

    # -- introspection used by the RPC worker ------------------------------------

    @classmethod
    def remote_methods(cls):
        """Public callables exposed through a channel."""
        out = {}
        for name in dir(cls):
            if name.startswith("_"):
                continue
            attr = getattr(cls, name)
            if callable(attr) and name not in (
                "remote_methods",
            ):
                out[name] = attr
        return out
