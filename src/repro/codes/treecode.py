"""Shared implementation of the Barnes–Hut tree gravity codes.

Octgrav (Gaburov et al. 2010, GPU) and Fi (Pelupessy 2005, CPU) both act
as the *coupling* model in the embedded-cluster simulation: they compute
the gravitational field that gas and stars exert on each other (the
"p-kicks" of paper Fig. 7).  Both expose the same interface; they differ
in device (GPU vs CPU — a factor the jungle cost model charges) and in
their default opening angle.

Self-contained dynamics (leapfrog KDK with a fixed time step, the usual
choice for tree codes) is also provided so the codes can be used as
standalone gravity solvers.
"""

from __future__ import annotations

import numpy as np

from .base import CodeInterface, InCodeParticleStorage
from .kernels import Octree

__all__ = ["TreeGravityInterface", "OctgravInterface", "FiInterface"]


class TreeGravityInterface(CodeInterface):
    """Base for Barnes–Hut tree gravity codes (N-body units, G = 1)."""

    PARAMETERS = {
        "eps2": (1e-4, "Plummer softening squared"),
        "theta": (0.6, "Barnes-Hut opening angle"),
        "timestep": (1.0 / 64.0, "leapfrog step (nbody time)"),
        "leaf_size": (16, "tree leaf size"),
    }

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.storage = InCodeParticleStorage(
            {"mass": 1, "pos": 3, "vel": 3}
        )
        self._tree = None

    # -- particles ------------------------------------------------------------

    def new_particle(self, mass, x, y, z, vx, vy, vz):
        self.invalidate_model()
        self._tree = None
        pos = np.column_stack(
            [np.atleast_1d(np.asarray(c, dtype=float)) for c in (x, y, z)]
        )
        vel = np.column_stack(
            [np.atleast_1d(np.asarray(c, dtype=float))
             for c in (vx, vy, vz)]
        )
        return self.storage.add(mass=mass, pos=pos, vel=vel)

    def delete_particle(self, ids):
        self.invalidate_model()
        self._tree = None
        self.storage.remove(ids)
        return 0

    def get_number_of_particles(self):
        return len(self.storage)

    def get_state(self, ids=None):
        m = self.storage.get("mass", ids)
        p = self.storage.get("pos", ids)
        v = self.storage.get("vel", ids)
        return m, p[:, 0], p[:, 1], p[:, 2], v[:, 0], v[:, 1], v[:, 2]

    def set_state(self, ids, mass, x, y, z, vx, vy, vz):
        self.invalidate_model()
        self._tree = None
        self.storage.set("mass", mass, ids)
        self.storage.set("pos", np.column_stack([x, y, z]), ids)
        self.storage.set("vel", np.column_stack([vx, vy, vz]), ids)
        return 0

    def set_mass(self, ids, mass):
        self.storage.set("mass", mass, ids)
        self._tree = None
        return 0

    def get_mass(self, ids=None):
        return self.storage.get("mass", ids)

    def get_position(self, ids=None):
        return self.storage.get("pos", ids)

    def get_velocity(self, ids=None):
        return self.storage.get("vel", ids)

    def set_position(self, ids, pos):
        self._tree = None
        self.storage.set("pos", pos, ids)
        return 0

    def set_velocity(self, ids, vel):
        self.storage.set("vel", vel, ids)
        return 0

    def add_velocity(self, ids, dv):
        """Increment velocities (bridge p-kicks): one round trip."""
        self.storage.add_to("vel", dv, ids)
        return 0

    def load_field_particles(self, mass, pos):
        """Replace the whole particle content (coupling-model fast path).

        The coupling code (Octgrav/Fi) receives the current star + gas
        configuration before every kick phase; this single call replaces
        the delete-all/re-add dance with one bulk state upload.
        """
        self.storage = InCodeParticleStorage(
            {"mass": 1, "pos": 3, "vel": 3}
        )
        pos = np.asarray(pos, dtype=float)
        self.storage.add(mass=mass, pos=pos, vel=np.zeros_like(pos))
        self._tree = None
        if self.state in ("UNINITIALIZED", "INITIALIZED"):
            self.ensure_state("EDIT")
        return len(self.storage)

    # -- tree -------------------------------------------------------------------

    def _ensure_tree(self):
        if self._tree is None:
            st = self.storage
            self._tree = Octree(
                st.arrays["pos"], st.arrays["mass"],
                leaf_size=int(self.leaf_size),
            )
            n = len(st)
            self.interaction_count += int(
                n * max(1.0, np.log2(max(n, 2)))
            )
        return self._tree

    def commit_particles(self):
        self._ensure_tree()
        return 0

    # -- dynamics ----------------------------------------------------------------

    def evolve_model(self, end_time):
        """Leapfrog KDK until *end_time* with the fixed parameter step."""
        self.ensure_state("RUN")
        st = self.storage
        if len(st) == 0:
            self.model_time = float(end_time)
            return 0
        pos = st.arrays["pos"]
        vel = st.arrays["vel"]
        while self.model_time < end_time - 1e-15:
            dt = min(self.timestep, end_time - self.model_time)
            acc = self._field_acc(pos)
            vel += 0.5 * dt * acc
            pos += dt * vel
            self._tree = None
            acc = self._field_acc(pos)
            vel += 0.5 * dt * acc
            self.model_time += dt
            self.step_count += 1
        return 0

    def _field_acc(self, targets):
        tree = self._ensure_tree()
        n = len(self.storage)
        self.interaction_count += int(
            len(targets) * max(1.0, np.log2(max(n, 2)))
        )
        return tree.accelerations(
            targets=targets, theta=self.theta, eps2=self.eps2
        )

    # -- energies & bridge field surface --------------------------------------------

    def get_kinetic_energy(self):
        st = self.storage
        return float(
            0.5 * (st.arrays["mass"] * (st.arrays["vel"] ** 2).sum(axis=1)
                   ).sum()
        )

    def get_potential_energy(self):
        st = self.storage
        tree = self._ensure_tree()
        phi = tree.potentials(theta=self.theta, eps2=self.eps2)
        return float(0.5 * (st.arrays["mass"] * phi).sum())

    def get_total_energy(self):
        return self.get_kinetic_energy() + self.get_potential_energy()

    def get_gravity_at_point(self, eps2, points):
        tree = self._ensure_tree()
        pts = np.asarray(points, dtype=float)
        n = len(self.storage)
        self.interaction_count += int(
            len(pts) * max(1.0, np.log2(max(n, 2)))
        )
        return tree.accelerations(
            targets=pts, theta=self.theta,
            eps2=max(float(eps2), self.eps2),
        )

    def get_potential_at_point(self, eps2, points):
        tree = self._ensure_tree()
        pts = np.asarray(points, dtype=float)
        n = len(self.storage)
        self.interaction_count += int(
            len(pts) * max(1.0, np.log2(max(n, 2)))
        )
        return tree.potentials(
            targets=pts, theta=self.theta,
            eps2=max(float(eps2), self.eps2),
        )


class OctgravInterface(TreeGravityInterface):
    """Octgrav: "gravitational tree-code on graphics processing units"
    (Gaburov, Bédorf & Portegies Zwart 2010).  GPU device tag; slightly
    wider opening angle, as the original trades accuracy for throughput.
    """

    PARAMETERS = dict(TreeGravityInterface.PARAMETERS)
    PARAMETERS["theta"] = (0.6, "Barnes-Hut opening angle")
    KERNEL_DEVICE = "gpu"
    LITERATURE = "Gaburov, Bedorf & Portegies Zwart (2010)"


class FiInterface(TreeGravityInterface):
    """Fi: TreeSPH code of Pelupessy (2005) used here in gravity mode —
    the CPU fallback for the coupling model ("If no GPU is available,
    the Fi model, written in Fortran, can be used instead").
    """

    PARAMETERS = dict(TreeGravityInterface.PARAMETERS)
    PARAMETERS["theta"] = (0.5, "Barnes-Hut opening angle")
    KERNEL_DEVICE = "cpu"
    LITERATURE = "Pelupessy (2005), PhD thesis, Leiden Observatory"
