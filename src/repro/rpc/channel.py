"""Worker channels: the RPC transports between coupler and model codes.

AMUSE supports several interchangeable channels (paper Sec. 4.1): "The
default channel uses MPI ...  however, a channel based on sockets is also
available.  For this paper, we added an Ibis channel."  The reproduction
keeps the same shape:

* :class:`DirectChannel` — in-process dispatch, the stand-in for the MPI
  channel's local fast path (name "mpi" is accepted as an alias).
* :class:`SocketChannel` — a REAL loopback TCP connection to a worker
  thread running :func:`worker_loop`; supports pipelined asynchronous
  calls.  This is the channel the paper's ">8 Gbit/s" loopback claim is
  measured on.
* the Ibis/Distributed channel lives in :mod:`repro.distributed` (it
  needs the daemon) and registers itself here under "ibis" /
  "distributed" via :func:`register_channel_factory`.

Every channel implements ``call`` (synchronous), ``async_call``
(returns an :class:`AsyncRequest`) and ``stop``.
"""

from __future__ import annotations

import itertools
import socket
import threading
import traceback

from .protocol import RemoteError, ProtocolError, recv_frame, send_frame

__all__ = [
    "AsyncRequest",
    "Channel",
    "DirectChannel",
    "SocketChannel",
    "new_channel",
    "register_channel_factory",
    "worker_loop",
]


class AsyncRequest:
    """Future-like handle for an asynchronous channel call.

    Mirrors AMUSE's async request objects: ``result()`` blocks,
    ``is_result_available()`` polls, ``wait()`` blocks without
    returning.
    """

    def __init__(self):
        self._event = threading.Event()
        self._value = None
        self._error = None

    def _resolve(self, value=None, error=None):
        self._value = value
        self._error = error
        self._event.set()

    def is_result_available(self):
        return self._event.is_set()

    def wait(self, timeout=None):
        if not self._event.wait(timeout):
            raise TimeoutError("async request did not complete in time")

    def result(self, timeout=None):
        self.wait(timeout)
        if self._error is not None:
            raise self._error
        return self._value

    @staticmethod
    def completed(value):
        req = AsyncRequest()
        req._resolve(value)
        return req

    @staticmethod
    def failed(error):
        req = AsyncRequest()
        req._resolve(error=error)
        return req


def wait_all(requests, timeout=None):
    """Block until every request in *requests* has completed."""
    for req in requests:
        req.wait(timeout)
    return [req.result() for req in requests]


class Channel:
    """Abstract worker channel."""

    #: label used by monitoring and the jungle cost model
    kind = "abstract"

    def call(self, method, *args, **kwargs):
        raise NotImplementedError

    def async_call(self, method, *args, **kwargs):
        raise NotImplementedError

    def stop(self):
        raise NotImplementedError

    # context-manager convenience
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False


class DirectChannel(Channel):
    """In-process dispatch to an interface instance (MPI-local stand-in).

    The cheapest channel: no serialisation, no copies.  Used by default
    for tests and by the jungle runner (which charges modeled time
    around the real call).
    """

    kind = "direct"

    def __init__(self, interface_factory):
        self.interface = interface_factory()
        self._stopped = False
        #: bytes counters kept for parity with the socket channel
        self.bytes_sent = 0
        self.bytes_received = 0

    def call(self, method, *args, **kwargs):
        if self._stopped:
            raise ProtocolError("channel is stopped")
        return getattr(self.interface, method)(*args, **kwargs)

    def async_call(self, method, *args, **kwargs):
        try:
            return AsyncRequest.completed(
                self.call(method, *args, **kwargs)
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to caller
            return AsyncRequest.failed(exc)

    def stop(self):
        if not self._stopped and hasattr(self.interface, "stop"):
            self.interface.stop()
        self._stopped = True


def worker_loop(interface, conn):
    """Serve RPC requests for *interface* until "stop" or disconnect.

    This is the AMUSE worker main loop: the remote side of every
    channel.  Runs in a worker thread (SocketChannel) or inside a proxy
    process model (distributed AMUSE).
    """
    try:
        while True:
            try:
                message = recv_frame(conn)
            except ProtocolError:
                break
            kind, call_id, method, args, kwargs = message
            if kind != "call":
                send_frame(
                    conn,
                    ("error", call_id, "ProtocolError",
                     f"unexpected message kind {kind!r}", ""),
                )
                continue
            try:
                value = getattr(interface, method)(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - sent to peer
                send_frame(
                    conn,
                    ("error", call_id, type(exc).__name__, str(exc),
                     traceback.format_exc()),
                )
                if method == "stop":
                    break
                continue
            send_frame(conn, ("result", call_id, value))
            if method == "stop":
                break
    finally:
        try:
            conn.close()
        except OSError:
            pass


class SocketChannel(Channel):
    """Channel over a real loopback TCP socket to a worker thread.

    A listening socket is bound on 127.0.0.1, the worker thread connects
    back, and frames flow through the genuine kernel TCP stack — the
    loopback path whose throughput the paper quotes.  Requests may be
    pipelined: responses are matched to requests by call id in a reader
    thread.
    """

    kind = "sockets"

    def __init__(self, interface_factory, host="127.0.0.1"):
        self._ids = itertools.count(1)
        self._pending = {}
        self._pending_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._stopped = False
        self.bytes_sent = 0
        self.bytes_received = 0

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind((host, 0))
        listener.listen(1)
        self.address = listener.getsockname()

        def _serve():
            worker_side, _ = listener.accept()
            listener.close()
            worker_side.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            interface = interface_factory()
            worker_loop(interface, worker_side)

        self._worker_thread = threading.Thread(target=_serve, daemon=True)
        self._worker_thread.start()

        self._sock = socket.create_connection(self.address)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

        self._reader_thread = threading.Thread(
            target=self._read_responses, daemon=True
        )
        self._reader_thread.start()

    # -- internals ---------------------------------------------------------

    def _read_responses(self):
        try:
            while True:
                message = recv_frame(self._sock)
                kind, call_id, *rest = message
                with self._pending_lock:
                    request = self._pending.pop(call_id, None)
                if request is None:
                    continue
                if kind == "result":
                    request._resolve(rest[0])
                else:
                    exc_class, msg, tb = rest
                    request._resolve(
                        error=RemoteError(exc_class, msg, tb)
                    )
        except (ProtocolError, OSError):
            failure = ProtocolError("worker connection lost")
            with self._pending_lock:
                pending = list(self._pending.values())
                self._pending.clear()
            for request in pending:
                request._resolve(error=failure)

    def _send_call(self, method, args, kwargs):
        call_id = next(self._ids)
        request = AsyncRequest()
        with self._pending_lock:
            self._pending[call_id] = request
        from .protocol import pack_frame
        data = pack_frame(("call", call_id, method, args, kwargs))
        with self._send_lock:
            self._sock.sendall(data)
            self.bytes_sent += len(data)
        return request

    # -- Channel API ----------------------------------------------------------

    def call(self, method, *args, **kwargs):
        if self._stopped:
            raise ProtocolError("channel is stopped")
        return self._send_call(method, args, kwargs).result()

    def async_call(self, method, *args, **kwargs):
        if self._stopped:
            raise ProtocolError("channel is stopped")
        return self._send_call(method, args, kwargs)

    def stop(self):
        if self._stopped:
            return
        try:
            self._send_call("stop", (), {}).result(timeout=10)
        except (ProtocolError, RemoteError, TimeoutError):
            pass
        self._stopped = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._worker_thread.join(timeout=10)


_FACTORIES = {
    "direct": DirectChannel,
    "mpi": DirectChannel,        # MPI channel's local fast path stand-in
    "sockets": SocketChannel,
}


def register_channel_factory(name, factory):
    """Register an extra channel type (used by repro.distributed for
    the "ibis" channel)."""
    _FACTORIES[name] = factory


def new_channel(channel_type, interface_factory, **kwargs):
    """Create a channel of the named type around an interface factory."""
    try:
        factory = _FACTORIES[channel_type]
    except KeyError:
        raise ValueError(
            f"unknown channel type {channel_type!r}; known: "
            f"{sorted(_FACTORIES)}"
        ) from None
    return factory(interface_factory, **kwargs)
