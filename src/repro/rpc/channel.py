"""Worker channels: the RPC transports between coupler and model codes.

AMUSE supports several interchangeable channels (paper Sec. 4.1): "The
default channel uses MPI ...  however, a channel based on sockets is also
available.  For this paper, we added an Ibis channel."  The reproduction
keeps the same shape:

* :class:`DirectChannel` — in-process dispatch, the stand-in for the MPI
  channel's local fast path (name "mpi" is accepted as an alias).
* :class:`SocketChannel` — a REAL loopback TCP connection to a worker
  thread running :func:`worker_loop`; supports pipelined asynchronous
  calls.  This is the channel the paper's ">8 Gbit/s" loopback claim is
  measured on.
* :class:`~repro.rpc.subproc.SubprocessChannel` — a TRUE off-process
  worker: a spawned child process running :func:`worker_loop` over the
  same negotiated wire protocol, registered here under "subprocess".
  This is the channel that lifts the GIL bound on concurrent
  multi-model execution.
* the shm channel (:mod:`repro.rpc.shm`, registered under "shm") —
  same-host workers (thread or subprocess) whose array payloads travel
  through ``multiprocessing.shared_memory`` segments; only a small
  control frame touches the socket.
* the Ibis/Distributed channel lives in :mod:`repro.distributed` (it
  needs the daemon) and registers itself here under "ibis" /
  "distributed" via :func:`register_channel_factory`.

Every channel implements ``call`` (synchronous), ``async_call``
(returns an :class:`AsyncRequest`), ``batch`` (coalesce queued async
calls into one multi-call frame) and ``stop``.

Wire-version negotiation: socket-backed channels open with a v1-encoded
hello frame.  A v2-capable peer acknowledges and both sides switch to
the zero-copy v2 framing (and multi-call frames); a v1 peer answers the
hello with an error frame and the channel transparently stays on v1.
"""

from __future__ import annotations

import collections
import inspect
import itertools
import os
import socket
import threading
import time
import traceback
import warnings

from .protocol import (
    PROTOCOL_VERSION,
    CancelledError,
    ConnectionLostError,
    ProtocolError,
    RemoteError,
    WireState,
    accept_capabilities,
    recv_frame,
    resolve_compress_offer,
    send_cancel_frame,
    send_frame,
    send_frame_v2,
)

__all__ = [
    "AsyncRequest",
    "Channel",
    "DirectChannel",
    "SocketChannel",
    "TRANSPORT_STAT_KEYS",
    "merge_transport_stats",
    "new_channel",
    "register_channel_factory",
    "worker_loop",
]


class AsyncRequest:
    """Future-like handle for an asynchronous channel call.

    Mirrors AMUSE's async request objects: ``result()`` blocks,
    ``is_result_available()`` polls, ``wait()`` blocks without
    returning.  Completion callbacks (``add_done_callback``) fire on
    the resolving thread — usually a channel's reader thread — so they
    must not block; the rich :class:`~repro.rpc.futures.Future` layer
    builds its lazy, caller-thread transforms on top of this hook.
    """

    def __init__(self):
        self._event = threading.Event()
        self._value = None
        self._error = None
        self._callbacks = []
        self._callback_lock = threading.Lock()
        # wired by stream channels: withdraws the in-flight wire call
        self._canceller = None
        #: worker acknowledgement of a sent AMCX frame (set by cancel)
        self.cancel_ack = None

    def _resolve(self, value=None, error=None):
        self._value = value
        self._error = error
        self._event.set()
        with self._callback_lock:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            # a raising callback must not kill the resolving thread
            # (usually a channel reader — its death would strand every
            # later request) nor starve the remaining callbacks
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - user callback, reported
                traceback.print_exc()

    def is_result_available(self):
        return self._event.is_set()

    def done(self):
        return self._event.is_set()

    def add_done_callback(self, fn):
        """Call ``fn(self)`` when resolved (immediately if already done)."""
        with self._callback_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def wait(self, timeout=None):
        if not self._event.wait(timeout):
            raise TimeoutError("async request did not complete in time")

    def cancel(self):
        """Withdraw the in-flight call if its reply has not arrived.

        Returns True when the call was removed from the channel's
        pending table — the request then resolves with
        :class:`~repro.rpc.protocol.CancelledError` and, on a
        connection that negotiated the cancel capability, an AMCX
        frame asks the worker to drop/abandon the call (the ack lands
        on :attr:`cancel_ack`).  Returns False when the reply already
        arrived (join it instead) or the request is not cancellable
        (completed-at-birth requests, calls queued inside a batch
        frame).
        """
        canceller = self._canceller
        if canceller is None or self._event.is_set():
            return False
        return canceller()

    def result(self, timeout=None):
        self.wait(timeout)
        if self._error is not None:
            raise self._error
        return self._value

    @staticmethod
    def completed(value):
        req = AsyncRequest()
        req._resolve(value)
        return req

    @staticmethod
    def failed(error):
        req = AsyncRequest()
        req._resolve(error=error)
        return req


def resolve_multi(requests, results):
    """Resolve batched *requests* from an mresult entry list."""
    for req, res in zip(requests, results, strict=False):
        if res[0] == "ok":
            req._resolve(res[1])
        else:
            req._resolve(error=RemoteError(res[1], res[2], res[3]))


class _BatchedRequest(AsyncRequest):
    """A request queued inside an open ``batch()`` block.

    Waiting on it first flushes the owning channel's queue, so
    ``result()`` called before the block exits sends the frame instead
    of deadlocking on a response that was never requested.
    (``is_result_available()`` stays a pure poll.)
    """

    def __init__(self, channel):
        super().__init__()
        self._channel = channel

    def wait(self, timeout=None):
        if not self._event.is_set() and self._channel._batch_entries:
            self._channel._drain_batch()
        super().wait(timeout)

    def cancel(self):
        """A call still queued in the batch is simply withdrawn before
        the frame is built; once flushed it travels inside one mcall
        frame and can no longer be cancelled individually."""
        entries = self._channel._batch_entries
        for index, (_m, _a, _k, request) in enumerate(entries):
            if request is self:
                del entries[index]
                self._resolve(error=CancelledError(
                    "batched call cancelled before the batch flushed"
                ))
                return True
        return super().cancel()


def fail_all(requests, error):
    """Fail a pending entry — a single request or a batched list."""
    if isinstance(requests, list):
        for req in requests:
            req._resolve(error=error)
    else:
        requests._resolve(error=error)


class _BatchContext:
    """Context manager queueing async calls for one multi-call frame.

    Entered via :meth:`Channel.batch`.  Nesting is allowed: every exit
    flushes *all* queued entries (so results become available in
    program order); the common case is one frame per ``with`` block.
    """

    def __init__(self, channel):
        self._channel = channel
        self._start = 0

    def __enter__(self):
        self._channel._batch_depth += 1
        self._start = len(self._channel._batch_entries)
        return self

    def __exit__(self, exc_type, exc, tb):
        channel = self._channel
        channel._batch_depth -= 1
        if exc_type is None:
            channel._drain_batch()
        else:
            # fail only the entries THIS block queued — an aborted
            # nested batch must not take the outer block's requests
            # down with it — but don't leave any waiter hanging
            aborted = channel._batch_entries[self._start:]
            del channel._batch_entries[self._start:]
            for _method, _args, _kwargs, req in aborted:
                req._resolve(error=ProtocolError(
                    f"batch aborted by {exc_type.__name__}"
                ))
        return False


#: the canonical :attr:`Channel.transport_stats` keys — every channel
#: type (direct/sockets/subprocess/shm/distributed) reports exactly this
#: set, with zeros/None where a transport feature does not apply, so
#: monitoring and the session accounting can aggregate without
#: per-channel special cases
TRANSPORT_STAT_KEYS = (
    "channel",
    "wire_version",
    "codec",
    "shm",
    "cancel",
    "bytes_sent",
    "bytes_received",
    "frames_sent",
    "frames_received",
    "raw_buffer_bytes",
    "wire_buffer_bytes",
    "compressed_bytes",
    "shm_buffer_bytes",
)


def merge_transport_stats(stats_iterable):
    """Sum several channels' :attr:`~Channel.transport_stats` dicts into
    one aggregate (numeric keys add; descriptive keys collect the set of
    distinct values).  The session accounting surface."""
    totals = {key: 0 for key in TRANSPORT_STAT_KEYS
              if key not in ("channel", "wire_version", "codec",
                             "shm", "cancel")}
    channels = []
    codecs = set()
    shm = cancel = False
    count = 0
    for stats in stats_iterable:
        count += 1
        channels.append(stats.get("channel"))
        if stats.get("codec"):
            codecs.add(stats["codec"])
        shm = shm or bool(stats.get("shm"))
        cancel = cancel or bool(stats.get("cancel"))
        for key in totals:
            totals[key] += int(stats.get(key) or 0)
    totals.update(
        channels=channels, codecs=sorted(codecs), shm=shm,
        cancel=cancel, channel_count=count,
    )
    return totals


class Channel:
    """Abstract worker channel."""

    #: label used by monitoring and the jungle cost model
    kind = "abstract"

    #: wire protocol version in use (socket channels negotiate this)
    wire_version = 1

    def __init__(self):
        self._batch_depth = 0
        self._batch_entries = []

    @property
    def transport_stats(self):
        """Uniform transport summary: the same keys on EVERY channel
        type (:data:`TRANSPORT_STAT_KEYS`), zeros where inapplicable.
        Stream channels override the values, never the shape."""
        return {
            "channel": self.kind,
            "wire_version": self.wire_version,
            "codec": None,
            "shm": False,
            "cancel": False,
            "bytes_sent": getattr(self, "bytes_sent", 0),
            "bytes_received": getattr(self, "bytes_received", 0),
            "frames_sent": 0,
            "frames_received": 0,
            "raw_buffer_bytes": 0,
            "wire_buffer_bytes": 0,
            "compressed_bytes": 0,
            "shm_buffer_bytes": 0,
        }

    def call(self, method, *args, **kwargs):
        raise NotImplementedError

    def async_call(self, method, *args, **kwargs):
        raise NotImplementedError

    def stop(self):
        raise NotImplementedError

    # -- request batching --------------------------------------------------

    def batch(self):
        """Coalesce ``async_call``s inside the block into one frame::

            with channel.batch():
                m = channel.async_call("get_mass", ids)
                p = channel.async_call("get_position", ids)
            masses, positions = m.result(), p.result()

        One multi-call frame crosses the wire per batch; the worker
        executes the calls in order and answers with one multi-result
        frame.  A ``call()`` inside the block first drains the queue so
        program order is preserved.
        """
        return _BatchContext(self)

    def _queue_batched(self, method, args, kwargs):
        """If batching is active, queue the call; else return None."""
        if self._batch_depth:
            req = _BatchedRequest(self)
            self._batch_entries.append((method, args, kwargs, req))
            return req
        return None

    def _drain_batch(self):
        entries = self._batch_entries
        if not entries:
            return
        self._batch_entries = []
        try:
            self._send_batch(entries)
        except BaseException as exc:
            # never strand waiters: a failed flush (connection loss
            # between queueing and exit) must fail every queued request
            failure = exc if isinstance(exc, Exception) else \
                ProtocolError(f"batch flush failed: {exc!r}")
            for _method, _args, _kwargs, req in entries:
                if not req.is_result_available():
                    req._resolve(error=failure)
            raise

    def _send_batch(self, entries):
        """Dispatch queued batch entries.  Base implementation executes
        them one by one (channels with a wire override this to send a
        single mcall frame)."""
        for method, args, kwargs, req in entries:
            try:
                req._resolve(self.call(method, *args, **kwargs))
            except Exception as exc:  # noqa: BLE001 - forwarded to waiter
                req._resolve(error=exc)

    # context-manager convenience
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False


class DirectChannel(Channel):
    """In-process dispatch to an interface instance (MPI-local stand-in).

    The cheapest channel: no serialisation, no copies.  Used by default
    for tests and by the jungle runner (which charges modeled time
    around the real call).
    """

    kind = "direct"

    def __init__(self, interface_factory):
        super().__init__()
        self.interface = interface_factory()
        self._stopped = False
        #: bytes counters kept for parity with the socket channel
        self.bytes_sent = 0
        self.bytes_received = 0

    def call(self, method, *args, **kwargs):
        if self._stopped:
            raise ProtocolError("channel is stopped")
        if self._batch_depth:
            self._drain_batch()
        return getattr(self.interface, method)(*args, **kwargs)

    def async_call(self, method, *args, **kwargs):
        queued = self._queue_batched(method, args, kwargs)
        if queued is not None:
            return queued
        try:
            return AsyncRequest.completed(
                self.call(method, *args, **kwargs)
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to caller
            return AsyncRequest.failed(exc)

    def stop(self):
        if not self._stopped and hasattr(self.interface, "stop"):
            self.interface.stop()
        self._stopped = True


#: autobatch: flush once this many calls are queued regardless of age
_AUTOBATCH_MAX_QUEUE = 32
#: autobatch adaptive-window clamp (seconds)
_AUTOBATCH_MIN_WINDOW_S = 100e-6
_AUTOBATCH_MAX_WINDOW_S = 5e-3
#: EWMA gain for the round-trip estimate driving the adaptive window
_AUTOBATCH_RTT_GAIN = 0.2


class _AutoBatchedRequest(AsyncRequest):
    """A request parked in the channel's autobatch queue.

    Like :class:`_BatchedRequest`, waiting on it flushes the queue
    first — a caller joining a coalesced call must never deadlock on a
    frame the flusher has not sent yet."""

    def __init__(self, channel):
        super().__init__()
        self._channel = channel

    def wait(self, timeout=None):
        if not self._event.is_set():
            self._channel._flush_autobatch()
        super().wait(timeout)

    def cancel(self):
        """Still queued: withdrawn locally before any frame is built.
        Already flushed: falls through to the normal wire cancel."""
        channel = self._channel
        with channel._auto_lock:
            entries = channel._auto_entries
            for index, (_m, _a, _k, request) in enumerate(entries):
                if request is self:
                    del entries[index]
                    break
            else:
                request = None
        if request is not None:
            self._resolve(error=CancelledError(
                "autobatched call cancelled before its frame was sent"
            ))
            return True
        return super().cancel()


class StreamChannel(Channel):
    """Shared machinery for channels speaking frames over a stream
    socket: pending-request table matched by call id in a reader
    thread, negotiated wire version, locked frame sends, and mcall
    batch dispatch.  Subclasses provide the socket, the negotiation,
    and the frame shapes (:meth:`_call_message` /
    :meth:`_mcall_message`).
    """

    #: reported when the peer vanishes (subclasses override the wording)
    _lost_message = "connection lost"

    def __init__(self):
        super().__init__()
        self._ids = itertools.count(1)
        self._pending = {}
        self._pending_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._stopped = False
        self._closed = False
        self._stop_timeout = 10.0  # subclasses may override
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self._sock = None          # set by the subclass __init__
        self._wire = WireState()   # upgraded after the hello handshake
        self.wire_caps = {}        # the peer's capability ack
        self._shm_arenas = None    # (tx, rx) pair this channel created
        self._compress_min = None  # local overrides applied post-hello
        self._shm_min = None
        #: set from a relay's "relay_lost" frame: how the relayed peer
        #: died (exit code, stderr tail) — enriches the loss error
        self._peer_death = None
        # -- adaptive micro-batching (Nagle for RPC) --
        self._autobatch = None     # None (off) | "adaptive" | seconds
        self._auto_lock = threading.Lock()
        self._auto_flush_lock = threading.Lock()
        self._auto_entries = []
        self._auto_first_at = 0.0
        self._auto_wake = threading.Event()
        self._auto_thread = None
        self._rtt_ewma = None

    @property
    def wire_version(self):
        return self._wire.version

    @wire_version.setter
    def wire_version(self, version):
        self._wire.version = version

    # -- frame shapes (subclass hooks) -------------------------------------

    def _call_message(self, call_id, method, args, kwargs):
        return ("call", call_id, method, args, kwargs)

    def _mcall_message(self, call_id, calls):
        return ("mcall", call_id, calls)

    # -- plumbing ----------------------------------------------------------

    def _register_pending(self, entry):
        """Allocate a call id and insert *entry* under the lock.

        The stopped flag is re-checked inside the lock: the reader
        thread's loss cleanup also runs under it, so a request can
        never slip into the table after the cleanup drained it (which
        would strand the caller forever).
        """
        call_id = next(self._ids)
        with self._pending_lock:
            if self._stopped:
                raise ProtocolError("channel is stopped")
            self._pending[call_id] = entry
        return call_id

    def _send_frame_locked(self, message):
        with self._send_lock:
            if self.wire_version >= 2:
                self.bytes_sent += send_frame_v2(
                    self._sock, message, self._wire
                )
            else:
                self.bytes_sent += send_frame(self._sock, message)
            self.frames_sent += 1

    def _dispatch_call(self, method, args, kwargs):
        request = AsyncRequest()
        call_id = self._register_pending(request)
        request._canceller = \
            lambda: self._cancel_call(call_id, request)
        self._send_frame_locked(
            self._call_message(call_id, method, args, kwargs)
        )
        return request

    def _cancel_call(self, call_id, request):
        """Client half of cancellation: atomically remove the call from
        the pending table (losing the race against a completing reply
        returns False — the reply wins), resolve the request with
        :class:`CancelledError`, and — when the peer negotiated the
        cancel capability — send the AMCX frame so the worker drops or
        abandons the call instead of computing a reply nobody reads.
        The ack is exposed on ``request.cancel_ack``; a channel that
        died in the meantime degrades to the client-side abandon
        already performed.
        """
        with self._pending_lock:
            if self._pending.get(call_id) is not request:
                return False    # reply arrived first (or already gone)
            del self._pending[call_id]
        request._resolve(error=CancelledError(
            f"call {call_id} on {self._describe()} was cancelled"
        ))
        if self._wire.cancel and not self._stopped:
            ack = AsyncRequest()
            try:
                ack_id = self._register_pending(ack)
                with self._send_lock:
                    self.bytes_sent += send_cancel_frame(
                        self._sock, ack_id, call_id
                    )
                    self.frames_sent += 1
            except (ProtocolError, OSError):
                pass            # peer is gone; local abandon suffices
            else:
                request.cancel_ack = ack
        return True

    def _connection_lost_error(self):
        """Build the error delivered to every stranded request when the
        peer vanishes.  Subclasses enrich it (the subprocess channel
        reaps the child and attaches its exit code and stderr tail);
        a relay's death report (``relay_lost`` frame) is folded in here
        so a pilot SIGKILLed behind the daemon reads like a local
        subprocess crash."""
        death = self._peer_death
        if death:
            message = death.get("message") or self._lost_message
            returncode = death.get("returncode")
            stderr_tail = death.get("stderr_tail") or ""
            if returncode is not None:
                message = f"{message} (exit code {returncode})"
            if stderr_tail:
                message = (
                    f"{message}; worker stderr tail:\n{stderr_tail}"
                )
            return ConnectionLostError(
                message, returncode=returncode, stderr_tail=stderr_tail
            )
        return ConnectionLostError(self._lost_message)

    def _read_responses(self):
        try:
            while True:
                message = recv_frame(self._sock, self._wire)
                kind, call_id, *rest = message
                if kind == "relay_lost":
                    # the relay's obituary for the spliced peer; the
                    # relay closes the connection right after, so the
                    # loss cleanup below picks this up
                    self._peer_death = rest[0] if rest else {}
                    continue
                with self._pending_lock:
                    request = self._pending.pop(call_id, None)
                if request is None:
                    continue
                if kind == "mresult":
                    resolve_multi(request, rest[0])
                elif kind == "result":
                    request._resolve(rest[0])
                else:
                    exc_class, msg, tb = rest
                    fail_all(request, RemoteError(exc_class, msg, tb))
        except (ProtocolError, OSError):
            failure = self._connection_lost_error()
            # the peer is gone: remove the segment names NOW so a
            # crashed peer cannot leak /dev/shm entries (the mappings
            # stay valid for stragglers; stop() unmaps)
            self._release_shm(close=False)
            with self._pending_lock:
                pending = list(self._pending.values())
                self._pending.clear()
                # calls issued after connection loss must raise, not hang
                self._stopped = True
            for request in pending:
                fail_all(request, failure)
            # autobatched calls never sent must fail too, not hang
            with self._auto_lock:
                queued = [req for *_call, req in self._auto_entries]
                self._auto_entries = []
            for request in queued:
                request._resolve(error=failure)
            self._auto_wake.set()   # let the flusher thread exit

    # -- capability negotiation --------------------------------------------

    def _offer_capabilities(self, compress=None, compress_min=None,
                            shm_segment_size=None, shm_min=None,
                            cancellable=True):
        """Build the hello capability dict (and create the shm segment
        pair it names).  Returns None when there is nothing to offer —
        the hello then stays byte-identical to the pre-capability one.

        Cancellation is offered by default: it costs nothing on the
        wire, and a peer that cannot honour it (plain v2, v1, the
        daemon) simply leaves it out of the ack, downgrading
        ``Future.cancel()`` to client-side abandon.
        """
        caps = {}
        if cancellable:
            caps["cancel"] = True
        offer = resolve_compress_offer(compress)
        if offer:
            caps["compress"] = offer
            if compress_min is not None:
                caps["compress_min"] = int(compress_min)
        if shm_segment_size:
            from .shm import ShmArena  # lazy: shm.py imports channel.py

            tx = ShmArena(shm_segment_size)
            try:
                rx = ShmArena(shm_segment_size)
            except BaseException:
                tx.unlink()
                tx.close()
                raise
            self._shm_arenas = (tx, rx)
            shm_caps = {
                "c2w": tx.name, "w2c": rx.name, "pid": os.getpid(),
            }
            if shm_min is not None:
                shm_caps["shm_min"] = int(shm_min)
            caps["shm"] = shm_caps
        return caps or None

    def _apply_negotiated_caps(self):
        """Configure the wire from the peer's capability ack; anything
        the peer did not ack is torn down (shm segments released)."""
        caps = self.wire_caps
        self._wire.cancel = bool(caps.get("cancel"))
        codec_name = caps.get("compress")
        if codec_name:
            from .protocol import CODECS_BY_NAME

            codec = CODECS_BY_NAME.get(codec_name)
            if codec is None:
                raise ProtocolError(
                    f"peer accepted codec {codec_name!r} this side "
                    "cannot load"
                )
            self._wire.codec = codec
            if self._compress_min is not None:
                self._wire.compress_min = int(self._compress_min)
        if self._shm_arenas is not None:
            if caps.get("shm"):
                self._wire.tx_arena, self._wire.rx_arena = \
                    self._shm_arenas
                if self._shm_min is not None:
                    self._wire.shm_min = int(self._shm_min)
            else:
                # peer cannot (or will not) do shm: plain v2 socket
                self._release_shm()

    def _release_shm(self, close=True):
        """Unlink (and optionally unmap) the channel-owned segment
        pair; idempotent, safe on channels that never offered shm."""
        arenas = self._shm_arenas or ()
        for arena in arenas:
            arena.unlink()
            if close:
                arena.close()
        if close:
            self._shm_arenas = None
            self._wire.tx_arena = None
            self._wire.rx_arena = None

    @property
    def transport_stats(self):
        """Negotiated-transport summary (bench/monitoring surface);
        same keys as every other channel type."""
        wire = self._wire
        return {
            "channel": self.kind,
            "wire_version": wire.version,
            "codec": wire.codec.name if wire.codec else None,
            "shm": wire.shm_active,
            "cancel": wire.cancel,
            "bytes_sent": self.bytes_sent,
            "bytes_received": wire.bytes_received,
            "frames_sent": self.frames_sent,
            "frames_received": wire.frames_received,
            "raw_buffer_bytes": wire.raw_buffer_bytes,
            "wire_buffer_bytes": wire.wire_buffer_bytes,
            "compressed_bytes": wire.compressed_bytes,
            "shm_buffer_bytes": wire.shm_buffer_bytes,
        }

    def _negotiate_hello(self, max_version, capabilities=None):
        """Hello handshake against a :func:`worker_loop` peer, run
        before the reader thread starts.

        The hello is a well-formed v1 call frame, so a v1 worker answers
        it with an "unexpected message kind" error — which is exactly
        the downgrade signal.  *capabilities* (codec offer, shm segment
        names) ride the kwargs slot; pre-capability v2 peers ignore
        that slot and ack with a bare version, downgrading every
        capability at once.
        """
        self.wire_caps = {}
        if max_version < 2:
            return 1
        hello_kwargs = {"caps": capabilities} if capabilities else {}
        self.bytes_sent += send_frame(
            self._sock, ("hello", 0, max_version, (), hello_kwargs)
        )
        self.frames_sent += 1
        reply = recv_frame(self._sock, self._wire)
        if reply[0] == "result":
            ack = reply[2]
            if isinstance(ack.get("caps"), dict):
                self.wire_caps = ack["caps"]
            return min(max_version, ack["version"])
        return 1

    def _describe(self):
        return f"{self.kind} channel"

    def _begin_stop(self, warn_on_noack=False):
        """Shared first half of ``stop()``: dispatch the remote stop
        (once) and close the socket (once).

        ``_stopped`` may already be set by the reader's loss cleanup —
        the socket still needs releasing in that case.  Returns False
        when the socket-close path already ran, making REPEATED
        ``stop()`` calls an idempotent no-op; subclasses then release
        their transport (join the worker thread, reap the child).
        """
        if not self._stopped:
            try:
                if self._autobatch is not None:
                    self._flush_autobatch()
                self._dispatch_call("stop", (), {}).result(
                    timeout=self._stop_timeout
                )
            except (ProtocolError, RemoteError, TimeoutError,
                    OSError) as exc:
                # OSError: the peer died and the reader's loss cleanup
                # has not marked _stopped yet — the dispatch hit the
                # dead socket directly; same no-ack outcome
                if warn_on_noack:
                    warnings.warn(
                        f"{self._describe()}: worker did not "
                        "acknowledge stop "
                        f"({type(exc).__name__}: {exc})",
                        RuntimeWarning, stacklevel=3,
                    )
            self._stopped = True
        self._auto_wake.set()   # release the autobatch flusher thread
        if self._closed:
            return False
        self._closed = True
        try:
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass
        return True

    # -- adaptive micro-batching (Nagle for RPC) -----------------------------

    def _enable_autobatch(self, window=True):
        """Turn on Nagle-style coalescing of ``async_call``s.

        Calls are parked briefly instead of hitting the socket one
        frame each; a flusher thread sends the queue as a single mcall
        frame when it fills (:data:`_AUTOBATCH_MAX_QUEUE`), when the
        oldest entry outlives the window, or the moment any caller
        blocks on a result.  ``window=True`` adapts the window to a
        fraction of the measured round-trip time — long-haul (daemon
        WAN) links coalesce aggressively, loopback stays latency-bound
        — while a float pins it.  Requires a v2 peer (mcall frames);
        on a v1 connection this quietly stays off.
        """
        if self.wire_version < 2 or self._autobatch is not None:
            return
        self._autobatch = "adaptive" if window is True else float(window)
        self._auto_thread = threading.Thread(
            target=self._autobatch_flusher,
            name=f"{self.kind}-autobatch", daemon=True,
        )
        self._auto_thread.start()

    def _autobatch_window_s(self):
        window = self._autobatch
        if window != "adaptive":
            return float(window)
        rtt = self._rtt_ewma
        if rtt is None:
            return _AUTOBATCH_MIN_WINDOW_S
        return min(
            max(rtt / 8.0, _AUTOBATCH_MIN_WINDOW_S),
            _AUTOBATCH_MAX_WINDOW_S,
        )

    def _queue_autobatch(self, method, args, kwargs):
        request = _AutoBatchedRequest(self)
        with self._auto_lock:
            if not self._auto_entries:
                self._auto_first_at = time.monotonic()
            self._auto_entries.append((method, args, kwargs, request))
            full = len(self._auto_entries) >= _AUTOBATCH_MAX_QUEUE
        if full:
            self._flush_autobatch()
        else:
            self._auto_wake.set()
        return request

    def _flush_autobatch(self):
        """Send everything parked in the autobatch queue, preserving
        program order.  The flush lock serialises concurrent flushers
        (the window thread racing a blocking ``result()``) so batches
        reach the wire in queue order."""
        with self._auto_flush_lock:
            with self._auto_lock:
                entries, self._auto_entries = self._auto_entries, []
            if not entries:
                return
            sent_at = time.monotonic()
            requests = [req for *_call, req in entries]
            try:
                if len(entries) == 1:
                    method, args, kwargs, request = entries[0]
                    call_id = self._register_pending(request)
                    request._canceller = \
                        lambda: self._cancel_call(call_id, request)
                    self._send_frame_locked(
                        self._call_message(call_id, method, args, kwargs)
                    )
                else:
                    call_id = self._register_pending(requests)
                    self._send_frame_locked(self._mcall_message(
                        call_id,
                        [(m, a, k) for m, a, k, _req in entries],
                    ))
            except BaseException as exc:
                if isinstance(exc, OSError):
                    # the send was deferred, so the caller never sees
                    # the raw socket error — deliver the same loss
                    # error the reader thread gives stranded pendings
                    failure = self._connection_lost_error()
                elif isinstance(exc, Exception):
                    failure = exc
                else:
                    failure = ProtocolError(
                        f"autobatch flush failed: {exc!r}"
                    )
                for request in requests:
                    if not request.is_result_available():
                        request._resolve(error=failure)
                return
            requests[-1].add_done_callback(
                lambda _req: self._note_rtt(sent_at)
            )

    def _note_rtt(self, sent_at):
        rtt = time.monotonic() - sent_at
        previous = self._rtt_ewma
        self._rtt_ewma = rtt if previous is None else (
            (1.0 - _AUTOBATCH_RTT_GAIN) * previous
            + _AUTOBATCH_RTT_GAIN * rtt
        )

    def _autobatch_flusher(self):
        while True:
            self._auto_wake.wait()
            self._auto_wake.clear()
            if self._stopped:
                return
            while True:
                with self._auto_lock:
                    if not self._auto_entries:
                        break
                    deadline = (
                        self._auto_first_at + self._autobatch_window_s()
                    )
                delay = deadline - time.monotonic()
                if delay > 0:
                    time.sleep(min(delay, _AUTOBATCH_MAX_WINDOW_S))
                    if self._stopped:
                        return
                    continue
                self._flush_autobatch()

    def _send_batch(self, entries):
        if self._autobatch is not None:
            # queued micro-batch entries predate this explicit batch:
            # flush them first so calls reach the worker in order
            self._flush_autobatch()
        if self.wire_version < 2:
            # v1 peers predate mcall frames: pipeline individual calls
            requests = [
                self._dispatch_call(method, args, kwargs)
                for method, args, kwargs, _req in entries
            ]
            for (_m, _a, _k, req), sent in zip(entries, requests,
                                               strict=True):
                try:
                    req._resolve(sent.result())
                except Exception as exc:  # noqa: BLE001 - to waiter
                    req._resolve(error=exc)
            return
        requests = [req for _m, _a, _k, req in entries]
        call_id = self._register_pending(requests)
        self._send_frame_locked(
            self._mcall_message(
                call_id, [(m, a, k) for m, a, k, _req in entries]
            )
        )

    # -- Channel API -------------------------------------------------------

    def call(self, method, *args, **kwargs):
        if self._stopped:
            raise ProtocolError("channel is stopped")
        if self._batch_depth:
            self._drain_batch()
        if self._autobatch is not None:
            # a blocking call must not overtake parked async calls
            self._flush_autobatch()
        return self._dispatch_call(method, args, kwargs).result()

    def async_call(self, method, *args, **kwargs):
        if self._stopped:
            raise ProtocolError("channel is stopped")
        queued = self._queue_batched(method, args, kwargs)
        if queued is not None:
            return queued
        if self._autobatch is not None:
            return self._queue_autobatch(method, args, kwargs)
        return self._dispatch_call(method, args, kwargs)


def call_entry(fn):
    """Run the thunk *fn* and shape the outcome as an mresult entry —
    ``("ok", value)`` or ``("error", cls, msg, tb)`` — the wire shape
    consumed by :func:`resolve_multi`.  Shared by :func:`worker_loop`
    and the daemon so the entry format is defined once.
    """
    try:
        return ("ok", fn())
    except BaseException as exc:  # noqa: BLE001 - sent to peer
        return ("error", type(exc).__name__, str(exc),
                traceback.format_exc())


def _run_one(interface, method, args, kwargs):
    """Execute one interface call; returns an mresult entry tuple."""
    return call_entry(lambda: getattr(interface, method)(*args, **kwargs))


def _execute_message(interface, kind, call_id, rest):
    """Execute one call/mcall; returns ``(reply_message, is_stop)``."""
    if kind == "mcall":
        calls = rest[0]
        results = [
            _run_one(interface, method, args, kwargs)
            for method, args, kwargs in calls
        ]
        return (
            ("mresult", call_id, results),
            any(method == "stop" for method, _a, _k in calls),
        )
    method, args, kwargs = rest
    status = _run_one(interface, method, args, kwargs)
    if status[0] == "ok":
        return ("result", call_id, status[1]), method == "stop"
    return ("error", call_id) + status[1:], method == "stop"


#: bounded wait for the runner thread when a cancellable worker winds
#: down — a call wedged past this is left to its daemon thread (the
#: channel side escalates: warn for thread workers, kill for children)
_RUNNER_JOIN_S = 5.0


def _serve_cancellable(interface, conn, wire):
    """Serve the rest of a connection whose peer negotiated "cancel".

    A single-threaded loop busy inside a long ``evolve_model`` could
    never see a cancel frame, so this mode splits the worker in two:
    calls execute in order on a dedicated *runner* thread while THIS
    thread keeps reading frames.  An AMCX frame is therefore
    acknowledged promptly — the target call is dequeued if it has not
    started, or marked abandoned if it is running (its eventual reply
    is discarded; Python cannot interrupt it, which is exactly why the
    RESTART fault policy exists for truly hung workers).  Everything
    else — execution order, batching, the stop contract — matches the
    inline loop.
    """
    send_lock = threading.Lock()

    def reply(message):
        with send_lock:
            if wire.version >= 2:
                send_frame_v2(conn, message, wire)
            else:
                send_frame(conn, message)

    state = threading.Condition()
    queued = collections.deque()    # (kind, call_id, rest) or None
    abandoned = set()               # running ids whose reply is dropped
    # cancels that targeted an id this loop has never seen: either the
    # call already completed, or the AMCX frame overtook its own call
    # frame (cancel() fired between the client's pending-table insert
    # and the call send).  Ids are never reused, so tombstoning both
    # cases is safe — a late call whose id is tombstoned must be
    # dropped, not executed.  Bounded: completed-call entries age out.
    tombstones = collections.OrderedDict()
    running = [None]
    finished = threading.Event()

    def _runner():
        try:
            while True:
                with state:
                    while not queued:
                        state.wait()
                    item = queued.popleft()
                    if item is None:
                        return
                    running[0] = item[1]
                message, is_stop = _execute_message(interface, *item)
                with state:
                    dropped = running[0] in abandoned
                    abandoned.discard(running[0])
                    running[0] = None
                if not dropped:
                    reply(message)
                if is_stop:
                    return
        except OSError:
            pass    # peer vanished mid-reply; nothing left to serve
        finally:
            finished.set()
            try:
                # unblock the frame reader parked in recv_frame
                conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass

    runner = threading.Thread(
        target=_runner, name="worker-runner", daemon=True
    )
    runner.start()
    try:
        while not finished.is_set():
            try:
                message = recv_frame(conn, wire)
            except (ProtocolError, OSError):
                break
            kind, call_id, *rest = message
            if kind == "cancel":
                target = rest[0]
                with state:
                    outcome = "done"
                    for index, item in enumerate(queued):
                        if item is not None and item[1] == target:
                            del queued[index]
                            outcome = "dequeued"
                            break
                    else:
                        if running[0] == target:
                            abandoned.add(target)
                            outcome = "abandoned"
                        else:
                            tombstones[target] = True
                            while len(tombstones) > 64:
                                tombstones.popitem(last=False)
                try:
                    reply(("result", call_id,
                           {"cancelled": target, "state": outcome}))
                except OSError:
                    break
                continue
            if kind in ("call", "mcall"):
                with state:
                    overtaken = tombstones.pop(call_id, None)
                    if overtaken is None:
                        queued.append((kind, call_id, rest))
                        state.notify()
                if overtaken is not None:
                    try:
                        reply(("error", call_id, "CancelledError",
                               f"call {call_id} cancelled before its "
                               "frame arrived", ""))
                    except OSError:
                        break
                continue
            try:
                reply(("error", call_id, "ProtocolError",
                       f"unexpected message kind {kind!r}", ""))
            except OSError:
                break
    finally:
        with state:
            queued.append(None)
            state.notify()
        runner.join(timeout=_RUNNER_JOIN_S)


def worker_loop(interface, conn, max_version=PROTOCOL_VERSION,
                enable_capabilities=True):
    """Serve RPC requests for *interface* until "stop" or disconnect.

    This is the AMUSE worker main loop: the remote side of every
    channel.  Runs in a worker thread (SocketChannel), a spawned child
    process (SubprocessChannel, shm subprocess mode) or inside a proxy
    process model (distributed AMUSE).  Understands plain calls,
    multi-call batches and the version-negotiation hello; replies use
    the negotiated wire version (*max_version* caps it, which lets
    tests exercise a genuine v1 peer).  The hello's capability dict —
    codec offer, shm segment names, cancellation — is honoured when
    *enable_capabilities* is true; disabling it emulates a plain-v2
    peer for downgrade tests.  A peer that negotiated "cancel" is
    served by :func:`_serve_cancellable` from the hello onward (calls
    on a runner thread, frames — including AMCX cancels — read
    concurrently); everyone else keeps this inline loop.
    """
    wire = WireState()

    def reply(message):
        if wire.version >= 2:
            send_frame_v2(conn, message, wire)
        else:
            send_frame(conn, message)

    try:
        while True:
            try:
                message = recv_frame(conn, wire)
            except ProtocolError:
                break
            kind, call_id, *rest = message
            if kind == "hello" and max_version >= 2:
                peer_version = rest[0] if rest else 1
                wire.version = version = min(
                    int(peer_version), max_version
                )
                ack = {"version": version}
                offered = {}
                if (enable_capabilities and len(rest) >= 3
                        and isinstance(rest[2], dict)):
                    offered = rest[2].get("caps") or {}
                if offered:
                    ack["caps"] = accept_capabilities(
                        offered, wire, allow_cancel=True
                    )
                reply(("result", call_id, ack))
                if wire.cancel:
                    # the peer may now send AMCX frames at any moment,
                    # including while a call runs: hand the connection
                    # to the two-thread serving mode for good
                    _serve_cancellable(interface, conn, wire)
                    break
                continue
            # a max_version=1 worker behaves exactly like a pre-v2 one:
            # hello falls through to the unexpected-kind error reply
            if kind == "mcall":
                calls = rest[0]
                results = [
                    _run_one(interface, method, args, kwargs)
                    for method, args, kwargs in calls
                ]
                reply(("mresult", call_id, results))
                if any(method == "stop" for method, _a, _k in calls):
                    break
                continue
            if kind != "call":
                reply(
                    ("error", call_id, "ProtocolError",
                     f"unexpected message kind {kind!r}", ""),
                )
                continue
            method, args, kwargs = rest
            status = _run_one(interface, method, args, kwargs)
            if status[0] == "ok":
                reply(("result", call_id, status[1]))
            else:
                reply(("error", call_id) + status[1:])
            if method == "stop":
                break
    except OSError:
        pass        # peer vanished mid-reply; nothing left to serve
    finally:
        # workers only ever ATTACH shm segments: close the mappings,
        # never unlink — the names belong to the channel side
        for arena in (wire.tx_arena, wire.rx_arena):
            if arena is not None:
                arena.close()
        try:
            conn.close()
        except OSError:
            pass


class SocketChannel(StreamChannel):
    """Channel over a real loopback TCP socket to a worker thread.

    A listening socket is bound on 127.0.0.1, the worker thread connects
    back, and frames flow through the genuine kernel TCP stack — the
    loopback path whose throughput the paper quotes.  Requests may be
    pipelined: responses are matched to requests by call id in a reader
    thread.  On connect the channel negotiates the wire version (v2 =
    zero-copy out-of-band buffers + multi-call batching, transparent
    fallback to v1 peers).
    """

    kind = "sockets"
    _lost_message = "worker connection lost"

    def __init__(self, interface_factory, host="127.0.0.1",
                 max_version=PROTOCOL_VERSION,
                 worker_max_version=PROTOCOL_VERSION,
                 stop_timeout=10.0, compress=None, compress_min=None,
                 shm_segment_size=None, shm_min=None,
                 worker_capabilities=True, cancellable=True,
                 autobatch=None):
        super().__init__()
        self._stop_timeout = float(stop_timeout)
        self._compress_min = compress_min
        self._shm_min = shm_min

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind((host, 0))
        listener.listen(1)
        self.address = listener.getsockname()

        def _serve():
            try:
                worker_side, _ = listener.accept()
            except OSError:
                return      # constructor cleanup closed the listener
            listener.close()
            worker_side.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            interface = interface_factory()
            worker_loop(interface, worker_side,
                        max_version=worker_max_version,
                        enable_capabilities=worker_capabilities)

        self._worker_thread = threading.Thread(
            target=_serve, name="sockets-worker", daemon=True
        )
        self._worker_thread.start()

        # any failure past this point (connect, hello handshake) must
        # not leak the listener socket, the half-started worker thread
        # or the offered shm segments: release all, then re-raise
        try:
            caps = self._offer_capabilities(
                compress=compress, compress_min=compress_min,
                shm_segment_size=shm_segment_size, shm_min=shm_min,
                cancellable=cancellable,
            )
            self._sock = socket.create_connection(self.address)
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self.wire_version = self._negotiate_hello(max_version, caps)
            self._apply_negotiated_caps()
        except BaseException:
            self._release_shm()
            for sock in (self._sock, listener):
                try:
                    if sock is not None:
                        sock.close()
                except OSError:
                    pass
            self._worker_thread.join(timeout=self._stop_timeout)
            raise

        self._reader_thread = threading.Thread(
            target=self._read_responses, name="sockets-reader",
            daemon=True,
        )
        self._reader_thread.start()
        if autobatch:
            self._enable_autobatch(autobatch)

    # -- internals ---------------------------------------------------------

    def _describe(self):
        kind = "shm" if self._wire.shm_active else self.kind
        return f"{kind} channel on {self.address}"

    def stop(self):
        if not self._begin_stop(warn_on_noack=True):
            return
        self._worker_thread.join(timeout=self._stop_timeout)
        if self._worker_thread.is_alive():
            # a wedged worker must not leak silently
            warnings.warn(
                f"{self._describe()}: worker thread still alive "
                f"{self._stop_timeout}s after stop; leaking it",
                RuntimeWarning, stacklevel=2,
            )
        self._release_shm()


_FACTORIES = {
    "direct": DirectChannel,
    "mpi": DirectChannel,        # MPI channel's local fast path stand-in
    "sockets": SocketChannel,
}


def register_channel_factory(name, factory):
    """Register an extra channel type (used by repro.distributed for
    the "ibis" channel)."""
    _FACTORIES[name] = factory


def _validate_channel_kwargs(channel_type, factory, kwargs):
    """Reject kwargs the factory does not accept, naming the channel
    type and the offending keyword — instead of a bare ``TypeError``
    deep inside the constructor (e.g. sockets-only options handed to
    the "mpi"/direct channel)."""
    if not kwargs:
        return
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return                  # not introspectable: let the call speak
    parameters = signature.parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD
           for p in parameters.values()):
        return
    valid = [
        name for name in parameters
        if name != "interface_factory"
    ]
    for keyword in kwargs:
        if keyword not in parameters or keyword == "interface_factory":
            raise ValueError(
                f"channel type {channel_type!r} does not accept option "
                f"{keyword!r}; valid options: {sorted(valid)}"
            )


def new_channel(channel_type, interface_factory, **kwargs):
    """Create a channel of the named type around an interface factory."""
    if channel_type == "subprocess" and channel_type not in _FACTORIES:
        # lazy: the subproc module doubles as the spawned worker's
        # ``-m`` entrypoint, so it must not be imported eagerly
        from . import subproc  # noqa: F401 - registers the factory
    if channel_type == "shm" and channel_type not in _FACTORIES:
        from . import shm  # noqa: F401 - registers the factory
    try:
        factory = _FACTORIES[channel_type]
    except KeyError:
        raise ValueError(
            f"unknown channel type {channel_type!r}; known: "
            f"{sorted(_FACTORIES)}"
        ) from None
    _validate_channel_kwargs(channel_type, factory, kwargs)
    return factory(interface_factory, **kwargs)
