"""TaskGraph — the dependency-aware DAG scheduler with fault policies.

The paper's jungle runs are bounded by the slowest model at each
coupling point (Fig. 7's uneven per-model costs), yet a barrier
scheduler — :class:`~repro.codes.group.EvolveGroup` joining everything
at once — makes EVERY code wait for the slowest one at EVERY phase
boundary.  :class:`TaskGraph` replaces the barrier with per-edge joins:
nodes are ``async_`` launches (or thread offloads), edges are
completion dependencies, and a node launches the moment its own
dependencies finish.  A fast code's kick or stellar-evolution exchange
therefore rides the *slack* of the slowest drift instead of queueing
behind a global join — the overlap structure of extreme-scale ABM
platforms (arXiv:2503.10796) and DES models of distributed
infrastructures (arXiv:1106.6122) applied to the coupled-simulation
step.

Execution model
---------------

``run()`` drives the graph from the calling thread: it launches every
ready node (launch callables issue ``async_`` channel calls and return
immediately), then joins node futures *as their wire responses arrive*
— transforms (unit conversion, mirror refreshes) run in this thread,
preserving the future layer's contract that nothing heavy runs on a
channel reader thread.  Completion of a node immediately launches any
dependent whose remaining dependencies are all done.

Fault policies
--------------

:class:`FaultPolicy` decides what a node failure does to the run:

* ``RAISE`` (default) — dependents of the failed node are skipped, the
  rest of the graph still completes (no stranded in-flight
  transitions), then one
  :class:`~repro.rpc.futures.AggregateRequestError` names every
  failure.
* ``IGNORE`` — the failure is recorded on the node, dependents run
  anyway (they see ``node.result is None``).
* ``RESTART`` — for nodes bound to a code (``code=`` at :meth:`add`
  time): on :class:`~repro.rpc.protocol.ConnectionLostError` (the
  worker died — e.g. a SIGKILLed subprocess child) or
  :class:`~repro.rpc.protocol.CancelledError` (a hung call was
  cancelled on timeout), the worker is respawned through the code's
  original channel factory, cached parameters and mirror state are
  replayed (:meth:`~repro.codes.highlevel.CommunityCode.
  restart_worker`), and the node is relaunched — the graph resumes
  where it stopped.  This is the "transparently find a replacement
  machine" future work of paper Sec. 5, made real by cancellation.

Usage::

    graph = TaskGraph()
    k1 = graph.add("kick1", lambda: fast.kick.async_(dv))
    d1 = graph.add("drift", lambda: fast.evolve_model.async_(t),
                   after=[k1], code=fast)
    graph.add("kick2", lambda: fast.kick.async_(dv2), after=[d1])
    results = graph.run(fault_policy=FaultPolicy.RESTART)
"""

from __future__ import annotations

import enum
import queue
import time

from .futures import AggregateRequestError
from .protocol import CancelledError, ConnectionLostError

__all__ = ["FaultPolicy", "TaskGraph", "TaskNode"]


class FaultPolicy(enum.Enum):
    """What a node failure does to a :meth:`TaskGraph.run`."""

    #: collect failures, skip dependents, raise an aggregate at the end
    RAISE = "raise"
    #: record the failure on the node, let dependents proceed
    IGNORE = "ignore"
    #: respawn the node's code worker (replaying parameters + state)
    #: and relaunch the node on worker death or a cancelled hung call
    RESTART = "restart"


#: exceptions the RESTART policy treats as "the worker is gone/hung" —
#: anything else (a genuine model error) is never retried
_RESTARTABLE = (ConnectionLostError, CancelledError)


class TaskNode:
    """One schedulable unit: a launch callable plus its dependencies.

    ``launch()`` is called (with no arguments) once every dependency is
    done; it may return a future-like object (anything with
    ``add_done_callback``/``result`` — a channel
    :class:`~repro.rpc.channel.AsyncRequest`, a
    :class:`~repro.rpc.futures.Future`, …) which the graph joins when
    its responses arrive, or a plain value, which completes the node
    immediately.  Dependency results are read off the dependency nodes
    themselves (``node.result``), so launch closures stay trivial.
    """

    __slots__ = (
        "name", "launch", "deps", "dependents", "code", "state",
        "future", "result", "error", "restarts", "_remaining",
    )

    def __init__(self, name, launch, deps, code=None):
        self.name = name
        self.launch = launch
        self.deps = list(deps)
        self.dependents = []
        self.code = code
        #: pending -> launched -> done | failed | skipped | cancelled
        self.state = "pending"
        self.future = None
        self.result = None
        self.error = None
        self.restarts = 0
        self._remaining = 0

    def done(self):
        return self.state == "done"

    def cancel(self):
        """Cancel this node.

        A node that has not launched yet simply never will (its
        dependents are then skipped under RAISE, or proceed under
        IGNORE); a launched node's future is cancelled — withdrawing
        the wire call — falling back to abandon when the responses
        already arrived.  Returns True when the node ends cancelled.
        """
        if self.state == "pending":
            self.state = "cancelled"
            self.error = CancelledError(
                f"task {self.name!r} was cancelled before it launched"
            )
            return True
        if self.state == "launched" and self.future is not None:
            future_cancel = getattr(self.future, "cancel", None)
            if future_cancel is not None and future_cancel():
                self.state = "cancelled"
                self.error = CancelledError(
                    f"task {self.name!r} was cancelled in flight"
                )
                return True
        return False

    def __repr__(self):
        return f"<TaskNode {self.name} {self.state}>"


class TaskGraph:
    """A DAG of async launches joined per edge instead of per phase."""

    def __init__(self):
        self.nodes = {}

    def add(self, name, launch, after=(), code=None):
        """Add a node; *after* lists dependencies (nodes or their
        names), *code* optionally binds the node to a community code so
        ``FaultPolicy.RESTART`` can respawn its worker."""
        if name in self.nodes:
            raise ValueError(f"duplicate task name {name!r}")
        if not callable(launch):
            raise TypeError(f"launch for {name!r} is not callable")
        deps = []
        for dep in after:
            if dep is None:
                continue
            node = self.nodes.get(dep) if not isinstance(dep, TaskNode) \
                else dep
            if node is None or node.name not in self.nodes or \
                    self.nodes[node.name] is not node:
                raise ValueError(
                    f"unknown dependency {dep!r} for task {name!r}"
                )
            deps.append(node)
        node = TaskNode(name, launch, deps, code=code)
        for dep in deps:
            dep.dependents.append(node)
        self.nodes[name] = node
        return node

    def __len__(self):
        return len(self.nodes)

    def __getitem__(self, name):
        return self.nodes[name]

    def _check_acyclic(self):
        """Kahn's algorithm; raises ValueError naming a cycle member."""
        remaining = {
            node.name: len(node.deps) for node in self.nodes.values()
        }
        ready = [n for n, count in remaining.items() if count == 0]
        seen = 0
        while ready:
            name = ready.pop()
            seen += 1
            for dependent in self.nodes[name].dependents:
                remaining[dependent.name] -= 1
                if remaining[dependent.name] == 0:
                    ready.append(dependent.name)
        if seen != len(self.nodes):
            stuck = sorted(
                name for name, count in remaining.items() if count
            )
            raise ValueError(
                f"task graph has a dependency cycle through {stuck}"
            )

    # -- execution -----------------------------------------------------------

    def run(self, timeout=None, fault_policy=FaultPolicy.RAISE,
            max_restarts=1, on_restart=None):
        """Execute the graph; returns ``{name: result}`` for the nodes
        that completed.

        *timeout* is a shared deadline: on expiry, in-flight nodes are
        cancelled (wire calls withdrawn, trackers retired — under
        ``RESTART`` a cancelled hung node with a bound code is instead
        respawned and relaunched, once per *max_restarts*, with the
        deadline extended by the original timeout) and a TimeoutError
        names every unfinished node.  *on_restart* is called with the
        node just before its relaunch — the hook for logging or for
        clearing whatever made the worker hang.

        Failures follow *fault_policy* (see the class docstring); under
        ``RAISE``/``RESTART`` the run always joins every launched node
        before raising, so no code is left with a stranded in-flight
        transition.
        """
        self._check_acyclic()
        deadline = None if timeout is None else \
            time.monotonic() + timeout
        events = queue.SimpleQueue()
        unfinished = 0
        failures = []

        for node in self.nodes.values():
            node._remaining = len(node.deps)
            if node.state == "pending":
                unfinished += 1

        def _launch(node):
            node.state = "launched"
            try:
                outcome = node.launch()
            except Exception as exc:  # noqa: BLE001 - policy decides
                node.future = None
                events.put(("failed", node, exc))
                return
            if outcome is not None and \
                    hasattr(outcome, "add_done_callback"):
                node.future = outcome
                # the event names the future it announces, so a stale
                # completion of a cancelled-then-relaunched node can
                # never be mistaken for the relaunch finishing
                outcome.add_done_callback(
                    lambda _request, future=outcome:
                    events.put(("ready", node, future))
                )
            else:
                node.future = None
                node.result = outcome
                events.put(("completed", node, None))

        def _finish(node):
            """Mark done and launch any dependent that became ready."""
            nonlocal unfinished
            node.state = "done"
            unfinished -= 1
            _release_dependents(node)

        def _release_dependents(node):
            for dependent in node.dependents:
                dependent._remaining -= 1
                if dependent._remaining == 0 and \
                        dependent.state == "pending":
                    _launch(dependent)

        def _skip(node, dep):
            """RAISE policy: a failed dependency poisons the subtree."""
            nonlocal unfinished
            if node.state != "pending":
                return
            node.state = "skipped"
            node.error = CancelledError(
                f"task {node.name!r} skipped: dependency "
                f"{dep.name!r} {dep.state}"
            )
            unfinished -= 1
            for dependent in node.dependents:
                _skip(dependent, dep)

        def _try_restart(node):
            """Respawn the node's worker and relaunch it.  A failing
            respawn fails THAT node (dependents skipped) and returns
            False — it never escapes to strand the rest of the run."""
            nonlocal unfinished
            node.restarts += 1
            try:
                node.code.restart_worker()
                if on_restart is not None:
                    on_restart(node)
            except Exception as exc:  # noqa: BLE001 - give up
                node.state = "failed"
                node.error = exc
                unfinished -= 1
                failures.append((
                    f"{node.name} (restart failed)", exc
                ))
                for dependent in node.dependents:
                    _skip(dependent, node)
                return False
            _launch(node)
            return True

        def _fail(node, error):
            nonlocal unfinished
            restartable = (
                fault_policy is FaultPolicy.RESTART
                and isinstance(error, _RESTARTABLE)
                and node.code is not None
                and hasattr(node.code, "restart_worker")
                and node.restarts < max_restarts
            )
            if restartable:
                _try_restart(node)
                return
            node.state = "failed"
            node.error = error
            unfinished -= 1
            if fault_policy is FaultPolicy.IGNORE:
                failures.append((node.name, error))
                _release_dependents(node)
                return
            failures.append((node.name, error))
            for dependent in node.dependents:
                _skip(dependent, node)

        # seed: cancelled-before-run nodes poison dependents like a
        # failure; everything with no (live) dependencies launches
        for node in list(self.nodes.values()):
            if node.state == "cancelled":
                failures.append((node.name, node.error))
                if fault_policy is FaultPolicy.IGNORE:
                    _release_dependents(node)
                else:
                    for dependent in node.dependents:
                        _skip(dependent, node)
        for node in list(self.nodes.values()):
            if node.state == "pending" and node._remaining == 0:
                _launch(node)

        restart_grace_used = False
        while unfinished > 0:
            remaining = None if deadline is None else \
                deadline - time.monotonic()
            try:
                if remaining is not None and remaining <= 0:
                    # past the deadline, but completions already
                    # delivered must still be consumed — work that
                    # finished AT the deadline is not hung
                    kind, node, payload = events.get_nowait()
                else:
                    kind, node, payload = events.get(timeout=remaining)
            except queue.Empty:
                hung = [
                    n for n in self.nodes.values()
                    if n.state == "launched"
                ]
                if (fault_policy is FaultPolicy.RESTART
                        and not restart_grace_used
                        and hung
                        and all(
                            n.code is not None
                            and hasattr(n.code, "restart_worker")
                            and n.restarts < max_restarts
                            for n in hung
                        )):
                    # cancel the hung calls (withdrawing the wire
                    # calls), respawn their workers and try once more
                    # on a fresh deadline; one respawn failing fails
                    # that node only — the rest still restart
                    restart_grace_used = True
                    for node in hung:
                        future_cancel = getattr(
                            node.future, "cancel", None
                        )
                        if future_cancel is not None:
                            future_cancel()
                        _try_restart(node)
                    deadline = time.monotonic() + timeout
                    continue
                pending = sorted(
                    n.name for n in self.nodes.values()
                    if n.state in ("pending", "launched")
                )
                self._cancel_unfinished()
                raise TimeoutError(
                    f"{len(pending)} task(s) unfinished after "
                    f"{timeout}s: {', '.join(pending)}"
                ) from None
            if node.state != "launched":
                continue        # stale event (e.g. a cancelled node)
            if kind == "failed":
                _fail(node, payload)
                continue
            if kind == "ready" and payload is not node.future:
                continue        # completion of a superseded launch
            if kind == "ready":
                # the wire responses arrived; materialize HERE so the
                # transform (unit conversion, mirror refresh) runs in
                # the scheduling thread, never on a channel reader
                try:
                    node.result = node.future.result()
                except Exception as exc:  # noqa: BLE001 - policy decides
                    _fail(node, exc)
                    continue
            elif kind != "completed":
                continue        # unknown event kind: drop, don't wedge
            _finish(node)

        if failures and fault_policy is not FaultPolicy.IGNORE:
            raise AggregateRequestError(
                failures, total=len(self.nodes)
            )
        return {
            name: node.result for name, node in self.nodes.items()
            if node.state == "done"
        }

    def _cancel_unfinished(self):
        """Timeout cleanup: withdraw what can be withdrawn, abandon the
        rest — no node future may be left with a stranded cleanup."""
        for node in self.nodes.values():
            if node.state == "pending":
                node.cancel()
            elif node.state == "launched" and node.future is not None:
                if not node.cancel():
                    abandon = getattr(node.future, "abandon", None)
                    if abandon is not None:
                        abandon()

    # -- introspection -------------------------------------------------------

    def states(self):
        """``{name: state}`` snapshot (monitoring/test surface)."""
        return {name: node.state for name, node in self.nodes.items()}

    def __repr__(self):
        states = self.states()
        summary = ", ".join(
            f"{state}={sum(1 for s in states.values() if s == state)}"
            for state in ("pending", "launched", "done", "failed",
                          "skipped", "cancelled")
            if any(s == state for s in states.values())
        )
        return f"<TaskGraph {len(self.nodes)} nodes ({summary})>"
