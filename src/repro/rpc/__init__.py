"""RPC layer: wire protocol, channels and async requests."""

from .channel import (
    AsyncRequest,
    Channel,
    DirectChannel,
    SocketChannel,
    new_channel,
    register_channel_factory,
    wait_all,
    worker_loop,
)
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    encode_frame_v2,
    pack_frame,
    recv_frame,
    send_frame,
    send_frame_v2,
)

__all__ = [
    "AsyncRequest",
    "Channel",
    "DirectChannel",
    "SocketChannel",
    "new_channel",
    "register_channel_factory",
    "wait_all",
    "worker_loop",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "encode_frame_v2",
    "pack_frame",
    "recv_frame",
    "send_frame",
    "send_frame_v2",
]
