"""RPC layer: wire protocol, channels, async requests and futures."""

from .channel import (
    TRANSPORT_STAT_KEYS,
    AsyncRequest,
    Channel,
    DirectChannel,
    SocketChannel,
    merge_transport_stats,
    new_channel,
    register_channel_factory,
    worker_loop,
)
from .futures import (
    AggregateRequestError,
    Future,
    QuantityFuture,
    as_completed,
    remote_method,
    wait_all,
)
from .protocol import (
    PROTOCOL_VERSION,
    CancelledError,
    ConnectionLostError,
    ProtocolError,
    RemoteError,
    encode_frame_v2,
    pack_frame,
    recv_frame,
    send_frame,
    send_frame_v2,
)
from .taskgraph import FaultPolicy, TaskGraph, TaskNode
__all__ = [
    "AggregateRequestError",
    "AsyncRequest",
    "CancelledError",
    "Channel",
    "ConnectionLostError",
    "DirectChannel",
    "FaultPolicy",
    "Future",
    "QuantityFuture",
    "TaskGraph",
    "TaskNode",
    "ShmArena",
    "ShmChannel",
    "SocketChannel",
    "SubprocessChannel",
    "TRANSPORT_STAT_KEYS",
    "as_completed",
    "merge_transport_stats",
    "new_channel",
    "register_channel_factory",
    "remote_method",
    "wait_all",
    "worker_loop",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "encode_frame_v2",
    "pack_frame",
    "recv_frame",
    "send_frame",
    "send_frame_v2",
]


def __getattr__(name):
    # lazy: repro.rpc.subproc is also the worker bootstrap executed as
    # ``python -m repro.rpc.subproc``; importing it from the package
    # __init__ would make runpy warn in every spawned child
    if name == "SubprocessChannel":
        from .subproc import SubprocessChannel
        return SubprocessChannel
    if name in ("ShmChannel", "ShmArena"):
        from . import shm
        return getattr(shm, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
