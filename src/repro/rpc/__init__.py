"""RPC layer: wire protocol, channels and async requests."""

from .channel import (
    AsyncRequest,
    Channel,
    DirectChannel,
    SocketChannel,
    new_channel,
    register_channel_factory,
    wait_all,
    worker_loop,
)
from .protocol import (
    ProtocolError,
    RemoteError,
    pack_frame,
    recv_frame,
    send_frame,
)

__all__ = [
    "AsyncRequest",
    "Channel",
    "DirectChannel",
    "SocketChannel",
    "new_channel",
    "register_channel_factory",
    "wait_all",
    "worker_loop",
    "ProtocolError",
    "RemoteError",
    "pack_frame",
    "recv_frame",
    "send_frame",
]
