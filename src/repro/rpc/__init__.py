"""RPC layer: wire protocol, channels, async requests and futures."""

from .channel import (
    AsyncRequest,
    Channel,
    DirectChannel,
    SocketChannel,
    new_channel,
    register_channel_factory,
    worker_loop,
)
from .futures import (
    AggregateRequestError,
    Future,
    QuantityFuture,
    as_completed,
    remote_method,
    wait_all,
)
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    encode_frame_v2,
    pack_frame,
    recv_frame,
    send_frame,
    send_frame_v2,
)

__all__ = [
    "AggregateRequestError",
    "AsyncRequest",
    "Channel",
    "DirectChannel",
    "Future",
    "QuantityFuture",
    "SocketChannel",
    "as_completed",
    "new_channel",
    "register_channel_factory",
    "remote_method",
    "wait_all",
    "worker_loop",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "encode_frame_v2",
    "pack_frame",
    "recv_frame",
    "send_frame",
    "send_frame_v2",
]
