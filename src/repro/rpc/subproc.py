"""The subprocess channel — TRUE off-process workers.

AMUSE runs every community code as a separate OS process talking to the
coupler over a socket (paper Sec. 4.1; the MPI and sockets channels
both spawn real worker executables).  The in-process channels of this
reproduction share the coupler's GIL, so concurrent ``evolve_model``
calls only overlap while workers sleep or wait on IO — numpy kernels
serialize.  This module restores the real AMUSE process model:

* :func:`main` — the worker bootstrap entrypoint.  ``python -m
  repro.rpc.subproc --connect host:port --interface mod:Class`` connects
  back to the spawning channel, receives the pickled interface factory
  in a bootstrap frame, instantiates the interface and hands the socket
  to the existing :func:`~repro.rpc.channel.worker_loop` — the same
  loop, the same wire protocol (v1/v2 hello negotiation included), but
  with its own interpreter and its own GIL.
* :class:`SubprocessChannel` — the coupler side: spawns the child,
  bootstraps it, and then behaves exactly like the sockets channel
  (pipelined async calls, ``batch()`` multi-call frames, negotiated v2
  zero-copy framing).

Lifecycle guarantees:

* ``stop()`` asks the worker to stop over the wire, then escalates:
  bounded wait for a clean exit, ``terminate()`` (SIGTERM), bounded
  wait, ``kill()`` (SIGKILL).  It never hangs on a wedged child.
* a child that dies unexpectedly surfaces as
  :class:`~repro.rpc.protocol.ConnectionLostError` carrying the exit
  code and a tail of the child's captured stderr — on every in-flight
  request, and again from ``stop()``.
* children that were never stopped (crashed scripts) are reaped by an
  ``atexit`` hook, so no orphan worker outlives the coupler.
"""

from __future__ import annotations

import atexit
import functools
import importlib
import os
import pickle
import secrets
import socket
import subprocess
import sys
import threading
import traceback
import warnings

from .channel import StreamChannel, register_channel_factory, worker_loop
from .protocol import (
    PROTOCOL_VERSION,
    ConnectionLostError,
    ProtocolError,
    RemoteError,
    recv_frame,
    send_frame,
)

__all__ = ["SubprocessChannel", "main"]

#: how much captured child stderr is kept for crash reports
_STDERR_TAIL_BYTES = 8192


# -- orphan reaping ---------------------------------------------------------

_live_children = set()
_live_children_lock = threading.Lock()


def _track_child(proc):
    with _live_children_lock:
        _live_children.add(proc)


def _untrack_child(proc):
    with _live_children_lock:
        _live_children.discard(proc)


@atexit.register
def _reap_orphans():
    """Terminate-then-kill any worker child still alive at interpreter
    exit — a crashed script must not leave orphan workers burning CPU."""
    with _live_children_lock:
        children = list(_live_children)
        _live_children.clear()
    for proc in children:
        if proc.poll() is None:
            proc.terminate()
    for proc in children:
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


# -- coupler side -----------------------------------------------------------


def _interface_spec(interface_factory):
    """Best-effort "module:Class" label for the spawned command line —
    makes the worker identifiable in ``ps`` output.  The pickled
    factory sent over the socket is authoritative."""
    target = interface_factory
    if isinstance(target, functools.partial):
        target = target.func
    module = getattr(target, "__module__", None)
    qualname = getattr(target, "__qualname__", None)
    if module and qualname and "<" not in qualname:
        return f"{module}:{qualname}"
    return None


def _child_env():
    """Child environment with the ``repro`` package importable."""
    env = os.environ.copy()
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing else \
        src_root + os.pathsep + existing
    return env


class SubprocessChannel(StreamChannel):
    """Channel to a worker running in a spawned child process.

    The listener is bound on loopback, the child is spawned with
    ``--connect host:port``, connects back, receives the pickled
    interface factory, and serves :func:`worker_loop` — real pipelined
    RPC to a worker with its own GIL, so concurrent numpy kernels
    genuinely overlap (see ``benchmarks/bench_async_overlap.py``).
    """

    kind = "subprocess"
    _lost_message = "subprocess worker connection lost"

    def __init__(self, interface_factory=None, host="127.0.0.1",
                 max_version=PROTOCOL_VERSION,
                 worker_max_version=PROTOCOL_VERSION,
                 spawn_timeout=30.0, stop_timeout=10.0,
                 kill_timeout=5.0, compress=None, compress_min=None,
                 shm_segment_size=None, shm_min=None,
                 worker_capabilities=True, cancellable=True,
                 warm=False, preload=None):
        super().__init__()
        warm = warm or interface_factory is None
        if warm and interface_factory is not None:
            raise ValueError(
                "warm=True pre-spawns a factory-less worker; pass the "
                "interface factory to activate() instead"
            )
        self._spawn_timeout = float(spawn_timeout)
        self._stop_timeout = float(stop_timeout)
        self._kill_timeout = float(kill_timeout)
        self._max_version = max_version
        self._compress_min = compress_min
        self._shm_min = shm_min
        self._cancellable = cancellable
        self._escalated = False
        self._activated = False
        self._proc = None
        self._stderr_buf = bytearray()
        self._stderr_lock = threading.Lock()
        self._stderr_thread = None
        self._reader_thread = None

        # same-host child: prefer an abstract-namespace AF_UNIX
        # listener over loopback TCP — faster bulk transfers (and
        # faster still under the daemon's zero-decode splice, which
        # can kernel-splice between Unix sockets), nothing on the
        # filesystem to clean up.  A non-default host means the
        # caller wants a routable listener: keep TCP.
        if host == "127.0.0.1" and hasattr(socket, "AF_UNIX"):
            listener = socket.socket(
                socket.AF_UNIX, socket.SOCK_STREAM
            )
            bind_to = (f"\0repro-worker-{os.getpid()}-"
                       f"{secrets.token_hex(4)}")
        else:
            listener = socket.socket(
                socket.AF_INET, socket.SOCK_STREAM
            )
            bind_to = (host, 0)
        try:
            listener.bind(bind_to)
            listener.listen(1)
            listener.settimeout(self._spawn_timeout)
            if listener.family == socket.AF_INET:
                self.address = listener.getsockname()
                connect_arg = f"{self.address[0]}:{self.address[1]}"
            else:
                self.address = bind_to
                connect_arg = "unix:" + bind_to.replace("\0", "@", 1)

            command = [
                sys.executable, "-m", "repro.rpc.subproc",
                "--connect", connect_arg,
                "--max-version", str(int(worker_max_version)),
            ]
            if not worker_capabilities:
                command += ["--no-capabilities"]
            if preload:
                command += ["--preload", ",".join(preload)]
            spec = None if interface_factory is None else \
                _interface_spec(interface_factory)
            if spec is not None:
                command += ["--interface", spec]
            self._proc = subprocess.Popen(
                command, env=_child_env(), stderr=subprocess.PIPE,
            )
            _track_child(self._proc)
            self._stderr_thread = threading.Thread(
                target=self._drain_stderr, name="subproc-stderr",
                daemon=True,
            )
            self._stderr_thread.start()

            # the child connects back only after its --preload imports
            # completed, so a returned accept IS the warm-ready signal
            self._sock, _ = listener.accept()
            if self._sock.family == socket.AF_INET:
                self._sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
        except BaseException as exc:
            raise self._wrap_spawn_failure(exc, listener) from exc
        finally:
            try:
                listener.close()
            except OSError:
                pass

        if not warm:
            self.activate(
                interface_factory, compress=compress,
                compress_min=compress_min,
                shm_segment_size=shm_segment_size, shm_min=shm_min,
            )

    def activate(self, interface_factory, compress=None,
                 compress_min=None, shm_segment_size=None,
                 shm_min=None):
        """Bootstrap a spawned worker: ship the factory, negotiate the
        wire (compression/shm/cancel), start the reader thread.

        Runs as part of ``__init__`` for a cold spawn; a warm-pool
        channel (``warm=True``) parks after the spawn — interpreter up,
        ``--preload`` imports done, child blocked waiting for the
        factory frame — and is activated here at claim time, skipping
        everything that makes cold spawns slow.
        """
        if self._activated:
            raise ProtocolError("subprocess channel already activated")
        self._compress_min = compress_min
        self._shm_min = shm_min
        try:
            self._sock.settimeout(self._spawn_timeout)
            self._bootstrap(interface_factory)
            caps = self._offer_capabilities(
                compress=compress, compress_min=compress_min,
                shm_segment_size=shm_segment_size, shm_min=shm_min,
                cancellable=self._cancellable,
            )
            self.wire_version = self._negotiate_hello(
                self._max_version, caps
            )
            self._apply_negotiated_caps()
            self._sock.settimeout(None)
        except BaseException as exc:
            raise self._wrap_spawn_failure(exc, None) from exc
        self._activated = True
        self._reader_thread = threading.Thread(
            target=self._read_responses, name="subproc-reader",
            daemon=True,
        )
        self._reader_thread.start()
        return self

    def detach_for_relay(self, interface_factory):
        """Bootstrap the child for a relay, WITHOUT negotiating a wire.

        Ships the pickled factory and waits for the pid ack — the same
        first half as :meth:`activate` — but deliberately performs no
        hello and starts no reader thread: on a daemon-relayed pilot
        the *client* negotiates capabilities end to end through the
        splice, so the daemon leg must stay a dumb byte pipe.  Returns
        the raw socket for the relay pump; the channel itself stays
        un-activated, so ``stop()`` takes the parked-worker path
        (close + escalate) for teardown.
        """
        if self._activated:
            raise ProtocolError(
                "subprocess channel already activated; a relay detach "
                "needs a parked worker"
            )
        try:
            self._sock.settimeout(self._spawn_timeout)
            self._bootstrap(interface_factory)
            self._sock.settimeout(None)
        except BaseException as exc:
            raise self._wrap_spawn_failure(exc, None) from exc
        return self._sock

    def death_info(self):
        """Obituary for a relay-detached worker: pid, exit code (the
        child is reaped when it just died) and the stderr tail — the
        payload of the daemon's ``relay_lost`` frame, mirroring what
        :meth:`_connection_lost_error` reports for local children."""
        returncode = None
        try:
            returncode = self._proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:
            pass
        else:
            _untrack_child(self._proc)
        message = (
            f"relayed pilot (worker pid {self._proc.pid}) "
            "connection lost"
        )
        return {
            "message": message,
            "pid": self._proc.pid,
            "returncode": returncode,
            "stderr_tail": self._stderr_tail().strip(),
        }

    def _wrap_spawn_failure(self, exc, listener):
        """Shared constructor/activate failure path: tear down, enrich
        transport errors with the child's fate, return what to raise."""
        self._abort_spawn(listener)
        if isinstance(exc, (socket.timeout, OSError, ProtocolError)) \
                and not isinstance(exc, ConnectionLostError):
            error = ConnectionLostError(
                "subprocess worker failed to come up: "
                f"{type(exc).__name__}: {exc}"
                f"{self._stderr_suffix()}",
                returncode=self._returncode(),
                stderr_tail=self._stderr_tail(),
            )
            error.__cause__ = exc
            return error
        return exc

    # -- spawn / bootstrap --------------------------------------------------

    def alive(self):
        """True while the worker child has not exited (a parked warm
        worker may die silently; the pool health-checks with this)."""
        return self._proc is not None and self._proc.poll() is None

    @property
    def pid(self):
        """OS process id of the worker child."""
        return self._proc.pid

    def _bootstrap(self, interface_factory):
        """Ship the pickled factory; the child acks once the interface
        is constructed (or reports the constructor's failure)."""
        factory_bytes = pickle.dumps(interface_factory, protocol=5)
        self.bytes_sent += send_frame(
            self._sock, ("factory", 0, factory_bytes)
        )
        reply = recv_frame(self._sock)
        if reply[0] == "error":
            _kind, _call_id, exc_class, msg, tb = reply
            raise RemoteError(exc_class, msg, tb)
        self.worker_pid = reply[2]["pid"]

    def _abort_spawn(self, listener):
        """Constructor failure: close sockets, release any offered shm
        segments and put the child down."""
        self._release_shm()
        for sock in (self._sock, listener):
            try:
                if sock is not None:
                    sock.close()
            except OSError:
                pass
        self._sock = None
        if self._proc is not None:
            self._escalate_shutdown()

    def _drain_stderr(self):
        stream = self._proc.stderr
        while True:
            chunk = stream.read1(4096)
            if not chunk:
                return
            with self._stderr_lock:
                self._stderr_buf += chunk
                del self._stderr_buf[:-_STDERR_TAIL_BYTES]

    def _stderr_tail(self):
        if self._stderr_thread is not None:
            # the pipe closes when the child dies; give the drain
            # thread a moment to pull the last chunk through
            self._stderr_thread.join(timeout=1.0)
        with self._stderr_lock:
            return bytes(self._stderr_buf).decode("utf-8", "replace")

    def _stderr_suffix(self):
        tail = self._stderr_tail().strip()
        return f"; stderr tail:\n{tail}" if tail else ""

    def _returncode(self):
        return None if self._proc is None else self._proc.poll()

    # -- death reporting ----------------------------------------------------

    def _connection_lost_error(self):
        """Enrich the loss error with the child's fate: reap it (it is
        gone or going) and attach exit code plus captured stderr."""
        returncode = None
        try:
            returncode = self._proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:
            pass
        else:
            _untrack_child(self._proc)
        message = (
            f"subprocess worker (pid {self._proc.pid}) connection lost"
        )
        if returncode is not None:
            message += f" (exit code {returncode})"
        tail = self._stderr_tail().strip()
        if tail:
            message += f"; stderr tail:\n{tail}"
        return ConnectionLostError(
            message, returncode=returncode, stderr_tail=tail,
        )

    # -- shutdown -----------------------------------------------------------

    def _escalate_shutdown(self):
        """Bounded wait → terminate → bounded wait → kill → wait.

        Returns the child's exit code.  Sets ``_escalated`` when the
        exit was forced by us (so a -SIGTERM/-SIGKILL return code is
        not misread as a worker crash)."""
        proc = self._proc
        try:
            try:
                return proc.wait(timeout=self._stop_timeout)
            except subprocess.TimeoutExpired:
                pass
            self._escalated = True
            proc.terminate()
            try:
                return proc.wait(timeout=self._kill_timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                return proc.wait()
        finally:
            _untrack_child(proc)

    def _describe(self):
        return f"subprocess channel (worker pid {self._proc.pid})"

    def stop(self):
        """Stop the worker and reap the child.

        Repeated calls are idempotent.  A child that had ALREADY died
        with a nonzero exit code (a crash, not our escalation) raises
        :class:`ConnectionLostError` carrying its stderr tail — after
        the process and sockets are fully released, so the error never
        costs the cleanup.
        """
        if not self._activated:
            # parked warm worker: no reader thread is running, so a
            # wire stop would wait out its timeout unanswered — closing
            # the socket is the discard signal (the child exits cleanly
            # on EOF while awaiting the factory frame)
            self._stopped = True
            if self._closed:
                return
            self._closed = True
            try:
                if self._sock is not None:
                    self._sock.close()
            except OSError:
                pass
            self._escalate_shutdown()
            self._release_shm()
            return
        # an unacknowledged remote stop needs no warning here: the
        # escalation below deals with the child either way
        if not self._begin_stop():
            return
        returncode = self._escalate_shutdown()
        # the child is reaped (cleanly, or via terminate/kill): the
        # segments must never outlive it, whatever path got us here
        self._release_shm()
        if self._escalated:
            warnings.warn(
                f"{self._describe()}: worker did not exit within "
                f"{self._stop_timeout}s; escalated to "
                "terminate/kill",
                RuntimeWarning, stacklevel=2,
            )
        elif returncode:
            raise ConnectionLostError(
                f"subprocess worker (pid {self._proc.pid}) exited "
                f"with code {returncode}{self._stderr_suffix()}",
                returncode=returncode,
                stderr_tail=self._stderr_tail(),
            )


register_channel_factory("subprocess", SubprocessChannel)


# -- worker side ------------------------------------------------------------


def _load_interface(spec):
    """Resolve a "module:Class" spec to the interface class."""
    module_name, _, qualname = spec.partition(":")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def main(argv=None):
    """Worker bootstrap: connect back, build the interface, serve.

    Spawned as ``python -m repro.rpc.subproc --connect host:port
    --interface mod:Class``.  The authoritative interface factory
    arrives pickled in the first frame; ``--interface`` is the fallback
    (and the human-readable label in process listings).
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.rpc.subproc",
        description="repro worker bootstrap (spawned by "
                    "SubprocessChannel)",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT|unix:@NAME",
        help="address of the spawning channel's listener (TCP "
             "host:port, or unix:@name for an abstract AF_UNIX "
             "socket)",
    )
    parser.add_argument(
        "--interface", default=None, metavar="MOD:CLASS",
        help="interface class (fallback when the bootstrap frame "
             "carries no factory)",
    )
    parser.add_argument(
        "--max-version", type=int, default=PROTOCOL_VERSION,
        help="highest wire protocol version to negotiate",
    )
    parser.add_argument(
        "--no-capabilities", action="store_true",
        help="ignore hello capability offers (emulates a plain-v2 "
             "worker for downgrade tests)",
    )
    parser.add_argument(
        "--preload", default=None, metavar="MOD[,MOD...]",
        help="comma-separated modules imported before connecting back "
             "(warm-pool spawns pay import cost up front)",
    )
    args = parser.parse_args(argv)

    # preload BEFORE connecting back: the parent treats its returned
    # accept() as the warm-ready signal, so the imports must be done
    if args.preload:
        for name in args.preload.split(","):
            if not name:
                continue
            try:
                importlib.import_module(name)
            except Exception:  # noqa: BLE001 - warm-up is best-effort
                traceback.print_exc(file=sys.stderr)

    if args.connect.startswith("unix:"):
        name = args.connect[len("unix:"):]
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.connect(name.replace("@", "\0", 1))
    else:
        host, _, port = args.connect.rpartition(":")
        conn = socket.create_connection((host, int(port)))
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    try:
        message = recv_frame(conn)
    except (ProtocolError, OSError):
        # EOF while parked: the spawner discarded this warm worker
        # before ever activating it — a clean, silent exit
        return 0
    kind, call_id, *rest = message
    if kind != "factory":
        send_frame(conn, ("error", call_id, "ProtocolError",
                          f"expected factory frame, got {kind!r}", ""))
        return 1
    try:
        factory_bytes = rest[0]
        if factory_bytes is not None:
            factory = pickle.loads(factory_bytes)
        elif args.interface is not None:
            factory = _load_interface(args.interface)
        else:
            raise ProtocolError(
                "no factory in bootstrap frame and no --interface"
            )
        interface = factory()
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        send_frame(conn, ("error", call_id, type(exc).__name__,
                          str(exc), traceback.format_exc()))
        return 1
    send_frame(conn, ("result", call_id, {"pid": os.getpid()}))

    worker_loop(interface, conn, max_version=args.max_version,
                enable_capabilities=not args.no_capabilities)
    return 0


if __name__ == "__main__":
    sys.exit(main())
