"""The shm channel — same-host workers over shared-memory segments.

The paper's deployment spans both ends of the locality spectrum: several
kernels pinned to one box (the multi-kernel pilots of Sec. 6) and
WAN-connected sites.  The sockets/subprocess channels already move
arrays with one copy per direction, but every byte still traverses the
kernel TCP stack.  On the same host that traversal is pure overhead —
so ``channel_type="shm"`` keeps the socket only as a control plane and
passes v2 out-of-band buffers through ``multiprocessing.shared_memory``
segments instead: zero wire copies for array payloads.

Mechanics (frame layout in :mod:`repro.rpc.protocol`, magic ``AMSH``):

* the channel creates TWO segments up front — one per direction — and
  offers their names in the hello capability dict; the worker (a thread
  or a spawned child process) attaches them by name and acks.  A peer
  that cannot attach (or predates capabilities) simply doesn't ack and
  the connection stays on the plain v2 socket path.
* each segment is managed by a :class:`ShmArena` — a first-fit
  free-list allocator with block coalescing, the classic ring-buffer
  compromise for variable-sized blocks.  Only the sending side
  allocates from its own arena; the receiver reports consumed offsets
  back piggybacked on its next frame, so steady request/response
  traffic recycles the pool with no extra messages.
* an exhausted arena degrades per buffer to the inline v2 socket path —
  backpressure can slow the channel down but never deadlock it.
* the CHANNEL owns both segments: it unlinks them on ``stop()``, on
  connection loss (a peer that died mid-call), and on the subprocess
  terminate/kill escalation paths, so no ``/dev/shm`` entry outlives
  the channel.  Workers only ever attach and close.
* the negotiation is RELAY-TRANSPARENT: a daemon-relayed channel
  (``relay=True`` on :class:`~repro.distributed.channel.
  DistributedChannel`) offers its segment names in the end-to-end
  hello that travels through the daemon's zero-decode splice, and the
  pilot attaches them directly when it shares the host.  ``AMSH``
  descriptors (offset/length into the arenas) are then spliced
  verbatim by :func:`~repro.rpc.protocol.relay_frame` — large arrays
  cross client → daemon → pilot with ZERO wire copies end to end.

Python <= 3.12 registers attached segments with the per-process
``resource_tracker`` as if they were created locally (bpo-38119), which
would make a worker child's exit unlink the parent's live segments and
spam leak warnings; :func:`attach_peer_arenas` therefore unregisters
attached segments immediately.
"""

from __future__ import annotations

import os
import threading

from multiprocessing import shared_memory

from .channel import SocketChannel, register_channel_factory
from .protocol import PROTOCOL_VERSION, SHM_MIN_DEFAULT, ProtocolError

__all__ = [
    "DEFAULT_SEGMENT_SIZE",
    "ShmArena",
    "ShmChannel",
    "attach_peer_arenas",
]

#: per-direction segment size; /dev/shm is virtual memory, pages are
#: only committed on first write, so generous is cheap
DEFAULT_SEGMENT_SIZE = 64 << 20

#: allocation granularity (cache-line aligned blocks)
_ALIGN = 64


def _untrack(segment):
    """Drop *segment* from this process's resource tracker (attach-side
    workaround for the double-registration of bpo-38119)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(segment, "_name", segment.name), "shared_memory"
        )
    except Exception:  # noqa: BLE001 - tracker may be absent/foreign
        pass


class ShmArena:
    """One shared-memory segment with a first-fit free-list allocator.

    Thread-safe.  The creating side owns the segment name (``unlink``
    is a no-op on attached arenas) and is the only side that ever
    allocates from it; an attaching peer only reads.
    """

    def __init__(self, size=DEFAULT_SEGMENT_SIZE, name=None, create=True,
                 untrack=True):
        if create:
            self._segment = shared_memory.SharedMemory(
                create=True, size=int(size)
            )
        else:
            self._segment = shared_memory.SharedMemory(name=name)
            if untrack:
                _untrack(self._segment)
        self.name = self._segment.name
        self.size = self._segment.size
        self.owner = bool(create)
        self._lock = threading.Lock()
        #: sorted list of (offset, size) holes
        self._free = [(0, self.size)]
        self._allocated = {}
        self._closed = False
        self._unlinked = False

    # -- allocation --------------------------------------------------------

    def alloc(self, nbytes):
        """Reserve a block; returns its offset, or None when no hole
        fits (the caller then falls back to the inline socket path)."""
        need = max(_ALIGN, (int(nbytes) + _ALIGN - 1) & ~(_ALIGN - 1))
        with self._lock:
            if self._closed:
                return None
            for i, (offset, size) in enumerate(self._free):
                if size >= need:
                    if size == need:
                        del self._free[i]
                    else:
                        self._free[i] = (offset + need, size - need)
                    self._allocated[offset] = need
                    return offset
        return None

    def free(self, offset):
        """Release a block, coalescing with adjacent holes."""
        with self._lock:
            size = self._allocated.pop(offset, None)
            if size is None:
                return      # double/foreign free: ignore, stay sane
            lo, hi = 0, len(self._free)
            while lo < hi:
                mid = (lo + hi) // 2
                if self._free[mid][0] < offset:
                    lo = mid + 1
                else:
                    hi = mid
            self._free.insert(lo, (offset, size))
            # coalesce with the successor, then the predecessor
            if lo + 1 < len(self._free):
                o, s = self._free[lo]
                o2, s2 = self._free[lo + 1]
                if o + s == o2:
                    self._free[lo: lo + 2] = [(o, s + s2)]
            if lo > 0:
                o, s = self._free[lo - 1]
                o2, s2 = self._free[lo]
                if o + s == o2:
                    self._free[lo - 1: lo + 1] = [(o, s + s2)]

    @property
    def allocated_bytes(self):
        with self._lock:
            return sum(self._allocated.values())

    # -- data movement -----------------------------------------------------

    def write(self, offset, data):
        """Copy *data* into the block at *offset* (the only copy a
        buffer makes on the send side)."""
        self._segment.buf[offset:offset + len(data)] = data

    def read(self, offset, length):
        """Copy the block out into a fresh writable buffer.

        The copy decouples the unpickled arrays' lifetime from the
        block, letting the receiver release the offset immediately —
        and it is the only copy on the receive side (the socket path
        pays the same one in ``recv_into``).
        """
        if offset + length > self.size:
            raise ProtocolError(
                f"shm descriptor out of bounds: {offset}+{length} "
                f"> {self.size}"
            )
        return bytearray(self._segment.buf[offset:offset + length])

    # -- lifecycle ---------------------------------------------------------

    def unlink(self):
        """Remove the segment name (owner only); the mapping stays
        valid until :meth:`close`.  Idempotent."""
        if self.owner and not self._unlinked:
            self._unlinked = True
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass

    def close(self):
        """Unmap the segment.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._segment.close()
        except BufferError:
            # an exported view is still alive somewhere; the segment
            # is already unlinked, so nothing leaks in /dev/shm and
            # the mapping goes with the process
            pass

    def __repr__(self):
        return (
            f"<ShmArena {self.name} {self.size >> 20} MiB "
            f"owner={self.owner}>"
        )


def attach_peer_arenas(wire, shm_offer):
    """Worker half of the shm handshake: attach the channel-created
    segments named in the hello capability dict and hang them on
    *wire*.  The worker WRITES replies into ``w2c`` and READS call
    arguments from ``c2w`` — the mirror image of the channel side.

    The bpo-38119 untrack is skipped for a worker THREAD (same process
    as the creator): the tracker registry is a name set, so the
    attach-side unregister would also drop the creator's crash-cleanup
    safety net.
    """
    untrack = shm_offer.get("pid") != os.getpid()
    tx = ShmArena(name=shm_offer["w2c"], create=False, untrack=untrack)
    try:
        rx = ShmArena(
            name=shm_offer["c2w"], create=False, untrack=untrack
        )
    except Exception:
        tx.close()
        raise
    wire.tx_arena = tx
    wire.rx_arena = rx


def ShmChannel(interface_factory, worker_mode="thread", host="127.0.0.1",
               segment_size=DEFAULT_SEGMENT_SIZE, shm_min=SHM_MIN_DEFAULT,
               max_version=PROTOCOL_VERSION,
               worker_max_version=PROTOCOL_VERSION,
               worker_capabilities=True, stop_timeout=10.0,
               spawn_timeout=30.0, kill_timeout=5.0):
    """Build a same-host shared-memory channel (``channel_type="shm"``).

    ``worker_mode="thread"`` serves the worker from an in-process
    thread (cheapest, GIL-shared); ``"subprocess"`` spawns a real child
    process — the AMUSE process model — that attaches the segments by
    name.  Both run the same negotiated wire: control frames on the
    loopback socket, array payloads through shared memory.
    """
    common = dict(
        host=host, max_version=max_version,
        worker_max_version=worker_max_version,
        stop_timeout=stop_timeout,
        shm_segment_size=segment_size, shm_min=shm_min,
        worker_capabilities=worker_capabilities,
    )
    if worker_mode == "thread":
        return SocketChannel(interface_factory, **common)
    if worker_mode == "subprocess":
        from .subproc import SubprocessChannel  # lazy: -m entrypoint

        return SubprocessChannel(
            interface_factory, spawn_timeout=spawn_timeout,
            kill_timeout=kill_timeout, **common,
        )
    raise ValueError(
        f"unknown shm worker mode {worker_mode!r}; "
        "known: ['subprocess', 'thread']"
    )


register_channel_factory("shm", ShmChannel)
