"""Unit-aware futures and the async method surface of the script API.

The wire layer (:mod:`repro.rpc.channel`) hands out bare
:class:`AsyncRequest` objects: a response slot matched by call id in the
channel's pending table.  This module builds the *script-facing* future
layer on top of them, the contract the paper's concurrency story rests
on ("multiple simulations ... executed concurrently", Sec. 5):

* :class:`Future` — wraps one or more pending requests and applies a
  *transform* lazily, in the joining thread, the first time ``result()``
  is called.  Unit conversion, mirror refreshes and state-machine
  bookkeeping all live in transforms, so nothing heavy ever runs on a
  channel's reader thread.  ``cancel()`` withdraws the in-flight wire
  calls (AMCX frame on capability-negotiated connections, client-side
  abandon otherwise) and retires the cleanup hook immediately — the
  primitive behind :class:`~repro.rpc.taskgraph.FaultPolicy` RESTART
  and timed-out ``wait_all`` recovery.
* :class:`QuantityFuture` — a future whose transform attaches units;
  ``value_in(unit)`` is the blocking convenience accessor.
* :func:`wait_all` — join a set of futures with a shared deadline; when
  calls failed it raises an :class:`AggregateRequestError` naming each
  failed call instead of hiding all but the first.
* :func:`as_completed` — yield futures in completion order.
* :class:`remote_method` — descriptor giving a method written in async
  style (returning a future) a synchronous face: ``code.m(...)`` is
  exactly ``code.m.async_(...).result()``, which makes the old blocking
  API a thin shim over the async one.
"""

from __future__ import annotations

import functools
import queue
import threading
import time

from .channel import AsyncRequest
from .protocol import CancelledError

__all__ = [
    "AggregateRequestError",
    "CancelledError",
    "Future",
    "QuantityFuture",
    "as_completed",
    "remote_method",
    "wait_all",
]


class AggregateRequestError(RuntimeError):
    """Several async calls failed; names every failure, not just one.

    ``failures`` is a list of ``(description, exception)`` pairs in
    request order.
    """

    def __init__(self, failures, total=None):
        self.failures = list(failures)
        self.total = total if total is not None else len(self.failures)
        detail = "; ".join(
            f"{name} ({type(exc).__name__}: {exc})"
            for name, exc in self.failures
        )
        super().__init__(
            f"{len(self.failures)} of {self.total} async call(s) "
            f"failed: {detail}"
        )


def _describe(request, index):
    return getattr(request, "description", None) or f"request #{index}"


class _DaemonPool:
    """Reusable pool of DAEMON worker threads for Future.submit.

    Offloaded calls (EvolveGroup members without an async surface) are
    issued every coupled step, so worker threads are reused instead of
    paying thread churn per call — but unlike
    ``concurrent.futures.ThreadPoolExecutor`` the workers are daemon
    threads with no atexit join: a call left hung after a recovered
    timeout must not wedge interpreter shutdown.

    Each idle worker owns a one-slot handoff queue on an idle stack;
    submit hands the task to an idle worker, spawns a new one below
    the cap, or queues in overflow behind the busy workers.  Idle
    workers retire after ``_IDLE_TTL_S`` without work.
    """

    _IDLE_TTL_S = 30.0

    def __init__(self, max_workers=32):
        self._lock = threading.Lock()
        self._idle = []             # handoff queues of idle workers
        self._overflow = queue.SimpleQueue()
        self._workers = 0
        self._max = max_workers

    def submit(self, fn):
        # overflow is fed UNDER the lock, and workers check it under
        # the same lock before parking idle — so a task can never land
        # in overflow while a worker slips onto the idle stack unseen
        with self._lock:
            if self._idle:
                self._idle.pop().put(fn)
                return
            if self._workers < self._max:
                self._workers += 1
                box = queue.SimpleQueue()
                box.put(fn)
                threading.Thread(
                    target=self._worker, args=(box,),
                    name="repro-future", daemon=True,
                ).start()
                return
            self._overflow.put(fn)

    def _worker(self, box):
        fn = box.get()
        while True:
            try:
                fn()
            except Exception:  # noqa: BLE001 - fn resolves its future
                pass
            # drain overflow before going idle — atomically with the
            # parking decision (see submit)
            with self._lock:
                try:
                    fn = self._overflow.get_nowait()
                except queue.Empty:
                    fn = None
                    self._idle.append(box)
            if fn is not None:
                continue
            try:
                fn = box.get(timeout=self._IDLE_TTL_S)
            except queue.Empty:
                with self._lock:
                    if box in self._idle:
                        self._idle.remove(box)
                        self._workers -= 1
                        return
                # claimed between the timeout and the lock: the task
                # is en route — take it (arrives momentarily)
                fn = box.get()


#: shared offload pool (lazily created)
_submit_pool = None
_submit_pool_lock = threading.Lock()


def _get_submit_pool():
    global _submit_pool
    with _submit_pool_lock:
        if _submit_pool is None:
            _submit_pool = _DaemonPool()
    return _submit_pool


class Future:
    """A joinable handle for one or more in-flight async calls.

    ``done()`` reports whether the underlying wire responses have
    arrived; ``result()`` blocks, then *materializes* the value exactly
    once: the raw wire values are passed through ``transform`` in the
    calling thread (this is where unit conversion and mirror refreshes
    happen — at future-resolution time, never on the reader thread).
    ``cleanup`` runs once at materialization whatever the outcome,
    which the high-level layer uses to retire in-flight state-machine
    transitions.
    """

    def __init__(self, request=None, requests=None, transform=None,
                 cleanup=None, description=None):
        if requests is not None and request is not None:
            raise TypeError("pass either request= or requests=, not both")
        self._multi = requests is not None
        if self._multi:
            self._requests = list(requests)
        else:
            self._requests = [request if request is not None
                              else AsyncRequest()]
        self._transform = transform
        self._cleanup = cleanup
        self.description = description
        self._lock = threading.Lock()
        # materialization state machine: "new" -> "running" -> "done".
        # The lock is held only for state flips, NEVER while a
        # transform runs (transforms do blocking channel I/O; a reader
        # thread must always be able to take the lock and move on)
        self._state = "new"
        self._finished = threading.Event()
        self._value = None
        self._error = None

    # -- state ---------------------------------------------------------------

    def done(self):
        """True once every underlying wire response has arrived."""
        return all(r.is_result_available() for r in self._requests)

    # AsyncRequest-compatible alias (so futures and raw requests mix)
    is_result_available = done

    def add_done_callback(self, fn):
        """Call ``fn(self)`` once all underlying responses are in.

        Runs on the thread that resolves the last response (or
        immediately, if already done).  Callbacks must not block.
        """
        if not self._requests:
            # an empty multi-future is born done; fire immediately so
            # done() and the callback can never disagree
            fn(self)
            return
        counter = {"n": len(self._requests)}
        lock = threading.Lock()

        def _one(_request):
            with lock:
                counter["n"] -= 1
                fire = counter["n"] == 0
            if fire:
                fn(self)

        for request in self._requests:
            request.add_done_callback(_one)

    def wait(self, timeout=None):
        """Block until done; raises TimeoutError on a shared deadline."""
        deadline = None if timeout is None else \
            time.monotonic() + timeout
        for request in self._requests:
            remaining = None if deadline is None else \
                max(0.0, deadline - time.monotonic())
            request.wait(remaining)

    # -- joining -------------------------------------------------------------

    def _materialize(self, timeout=None):
        with self._lock:
            if self._state == "new":
                self._state = "running"
                claimed = True
            else:
                claimed = False
        if not claimed:
            # another thread is (or finished) materializing; wait for
            # it rather than racing the transform — bounded by the
            # caller's timeout, like the wire wait
            if not self._finished.wait(timeout):
                raise TimeoutError(
                    f"{self.description or 'future'} result was not "
                    "materialized in time (another join is still "
                    "running its transform)"
                )
            return
        try:
            values = [r.result() for r in self._requests]
            raw = values if self._multi else values[0]
            self._value = raw if self._transform is None else \
                self._transform(raw)
        except BaseException as exc:  # noqa: BLE001 - re-raised in result()
            self._error = exc
        finally:
            if self._cleanup is not None:
                self._cleanup()
            with self._lock:
                self._state = "done"
            self._finished.set()

    def _join(self, timeout):
        """Wait for the responses, then materialize — both bounded by
        one shared deadline."""
        deadline = None if timeout is None else \
            time.monotonic() + timeout
        self.wait(timeout)
        self._materialize(
            None if deadline is None else
            max(0.0, deadline - time.monotonic())
        )

    def result(self, timeout=None):
        """Join: wait for the responses, materialize, return the value.

        *timeout* bounds both the wire wait and (when another thread is
        already materializing) the wait for that join to finish; it
        cannot interrupt a transform running in THIS thread.
        """
        self._join(timeout)
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout=None):
        """Join and return the error (or None) instead of raising."""
        self._join(timeout)
        return self._error

    def cancel(self):
        """Cancel the future: withdraw its in-flight wire calls and
        retire the cleanup hook NOW.

        Unlike :meth:`abandon` — which waits for the responses to
        arrive before retiring — a successful cancel removes the calls
        from the channel's pending table immediately (and, on a
        connection that negotiated the cancel capability, tells the
        worker to drop or abandon them), so the in-flight transition
        unlocks without waiting for the worker.  Returns True when the
        future is now cancelled: ``result()`` raises
        :class:`CancelledError` and the transform never runs.  Returns
        False when it was too late — every response had already
        arrived, or another thread is already materializing — in which
        case the caller should join (or :meth:`abandon`) instead.
        """
        with self._lock:
            if self._state != "new":
                return False
        cancelled = False
        for request in self._requests:
            if request.is_result_available():
                continue
            request_cancel = getattr(request, "cancel", None)
            if request_cancel is not None and request_cancel():
                cancelled = True
        if not cancelled:
            # nothing was withdrawn: either all responses arrived (the
            # caller should join) or the requests are uncancellable
            # mid-batch entries (abandon covers those)
            return False
        with self._lock:
            if self._state != "new":
                # a racing join claimed materialization; it will see
                # the CancelledError the requests now resolve to
                return True
            self._state = "done"
        self._error = CancelledError(
            f"{self.description or 'future'} was cancelled"
        )
        try:
            if self._cleanup is not None:
                self._cleanup()
        finally:
            # a raising cleanup must not leave the future 'done' but
            # unfinished — that would hang every concurrent joiner
            self._finished.set()
        return True

    def abandon(self):
        """Discard the result: once the responses arrive, retire the
        cleanup hook WITHOUT running the transform.

        Unlike ``result()`` this never performs channel I/O (no mirror
        refresh), so it is safe to trigger from a reader thread — the
        recovery path when a deadline expired and the caller walks
        away.  A later ``result()`` raises; an earlier one wins.
        """
        def _discard(_future):
            with self._lock:
                if self._state != "new":
                    return      # a join got there first (or is running)
                self._state = "done"
            try:
                self._error = CancelledError(
                    f"{self.description or 'future'} was abandoned "
                    "before its result was consumed"
                )
            finally:
                if self._cleanup is not None:
                    self._cleanup()
                self._finished.set()

        self.add_done_callback(_discard)

    # -- constructors --------------------------------------------------------

    @classmethod
    def completed(cls, value, description=None):
        future = cls(description=description)
        future._requests[0]._resolve(value)
        return future

    @classmethod
    def failed(cls, error, description=None):
        future = cls(description=description)
        future._requests[0]._resolve(error=error)
        return future

    @classmethod
    def submit(cls, fn, *args, description=None, cleanup=None,
               **kwargs):
        """Run ``fn(*args, **kwargs)`` on the shared offload pool;
        the future joins it.

        The offload path of :class:`~repro.codes.group.EvolveGroup` for
        members without an async-capable method surface (e.g. CESM
        components): the call still overlaps with other members, and
        pool threads are reused across steps instead of spawning one
        per call.  *cleanup* is retired at join/abandon time like any
        future's cleanup hook.
        """
        future = cls(
            description=description or getattr(fn, "__name__", "call"),
            cleanup=cleanup,
        )
        request = future._requests[0]

        def _run():
            try:
                request._resolve(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - delivered at join
                request._resolve(error=exc)

        _get_submit_pool().submit(_run)
        return future

    def __repr__(self):
        state = "done" if self.done() else "pending"
        name = f" {self.description}" if self.description else ""
        return f"<{type(self).__name__}{name} {state}>"


class QuantityFuture(Future):
    """A future resolving to a unit-carrying Quantity.

    The unit conversion (code units -> script units through the code's
    converter) happens inside the transform, i.e. at future-resolution
    time in the joining thread.
    """

    def value_in(self, unit):
        """Block and return the bare numbers expressed in *unit*."""
        return self.result().value_in(unit)


def _retire_on_timeout(requests):
    """No future may be left with a stranded cleanup hook — or a stale
    pending-table entry — when a wait_all deadline expires.

    Pending calls are CANCELLED first: a successful ``cancel()``
    withdraws the call from the channel's pending table (and tells a
    capability-negotiated worker to drop it), so the pending table and
    the code's :class:`~repro.codes.base.InflightTracker` stay
    consistent immediately instead of whenever the worker happens to
    answer.  Calls that cannot be cancelled (mid-batch entries, thread
    offloads already running) fall back to ``abandon()`` — their
    cleanup retires when the response lands, without running the
    transform.  Already-resolved futures are joined for their side
    effects."""
    for request in requests:
        if request.is_result_available():
            exception = getattr(request, "exception", None)
            if exception is not None:
                exception()     # join the future for its side effects
            continue
        cancel = getattr(request, "cancel", None)
        if cancel is not None and cancel():
            continue            # withdrawn; cleanup already retired
        abandon = getattr(request, "abandon", None)
        if abandon is not None:
            abandon()


def wait_all(requests, timeout=None):
    """Join every request/future; return their results in order.

    *timeout* (seconds) is a shared deadline for the whole set — a
    TimeoutError names the calls still pending when it expires, and
    every future is retired (joined if resolved, cancelled if the wire
    call can be withdrawn, abandoned otherwise) so neither a cleanup
    hook nor a pending-table entry is left stranded.  If any calls
    failed, an
    :class:`AggregateRequestError` naming every failed call is raised
    after all of them have been joined.
    """
    requests = list(requests)
    deadline = None if timeout is None else time.monotonic() + timeout
    for request in requests:
        remaining = None if deadline is None else \
            max(0.0, deadline - time.monotonic())
        try:
            request.wait(remaining)
        except TimeoutError:
            pending = [
                _describe(r, i) for i, r in enumerate(requests)
                if not r.is_result_available()
            ]
            _retire_on_timeout(requests)
            raise TimeoutError(
                f"{len(pending)} of {len(requests)} async call(s) "
                f"still pending after {timeout}s: "
                f"{', '.join(pending)}"
            ) from None
    results = []
    failures = []
    for index, request in enumerate(requests):
        remaining = None if deadline is None else \
            max(0.0, deadline - time.monotonic())
        try:
            # the deadline also bounds materialization (a join racing
            # another thread's in-progress transform); a transform
            # running in THIS thread is cooperative and not
            # interruptible
            results.append(request.result(remaining))
        except TimeoutError as exc:
            # only the SHARED deadline expiring aborts the join loop;
            # a TimeoutError raised by the call itself (e.g. a nested
            # timed wait inside a transform) is an ordinary failure
            # and must not strand the remaining joins
            if deadline is not None and \
                    time.monotonic() >= deadline:
                _retire_on_timeout(requests)
                raise TimeoutError(
                    f"result of {_describe(request, index)} was not "
                    f"materialized within {timeout}s"
                ) from None
            failures.append((_describe(request, index), exc))
        except Exception as exc:  # noqa: BLE001 - aggregated below
            failures.append((_describe(request, index), exc))
    if failures:
        raise AggregateRequestError(failures, total=len(requests))
    return results


def as_completed(requests, timeout=None):
    """Yield requests/futures in the order they complete.

    *timeout* bounds the wait for EACH next completion; on expiry a
    TimeoutError naming the still-pending calls is raised.
    """
    requests = list(requests)
    done_queue = queue.SimpleQueue()
    for request in requests:
        request.add_done_callback(done_queue.put)
    for _ in range(len(requests)):
        try:
            yield done_queue.get(timeout=timeout)
        except queue.Empty:
            pending = [
                _describe(r, i) for i, r in enumerate(requests)
                if not r.is_result_available()
            ]
            raise TimeoutError(
                f"{len(pending)} async call(s) still pending: "
                f"{', '.join(pending)}"
            ) from None


class BoundAsyncMethod:
    """A bound method exposing both calling conventions.

    ``m(...)`` is the blocking shim — literally ``m.async_(...).result()``
    — while ``m.async_(...)`` returns the :class:`Future` produced by
    the underlying implementation.
    """

    __slots__ = ("__func__", "__self__")

    def __init__(self, func, instance):
        object.__setattr__(self, "__func__", func)
        object.__setattr__(self, "__self__", instance)

    def async_(self, *args, **kwargs):
        return self.__func__(self.__self__, *args, **kwargs)

    def __call__(self, *args, **kwargs):
        return self.async_(*args, **kwargs).result()

    @property
    def __doc__(self):
        return self.__func__.__doc__

    @property
    def __name__(self):
        return self.__func__.__name__

    def __repr__(self):
        return (
            f"<async-capable method {self.__func__.__name__} of "
            f"{self.__self__!r}>"
        )


class remote_method:  # noqa: N801 - decorator, lowercase by convention
    """Decorator: write the async implementation, get both call forms.

    The decorated function must return a :class:`Future` (usually
    wrapping channel ``async_call``s).  Attribute access on an instance
    yields a :class:`BoundAsyncMethod`, so every remote operation
    ``code.m(...)`` automatically gains the ``code.m.async_(...)``
    form, and the synchronous call is guaranteed to be the shim
    ``async_(...).result()`` — one implementation, two conventions.
    """

    def __init__(self, async_impl):
        self.async_impl = async_impl
        functools.update_wrapper(self, async_impl)

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return BoundAsyncMethod(self.async_impl, instance)

    def __call__(self, instance, *args, **kwargs):
        # direct class-level invocation (rare): behave like the shim
        return self.async_impl(instance, *args, **kwargs).result()
