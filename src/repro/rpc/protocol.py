"""Wire protocol for AMUSE worker channels (v1 + zero-copy v2).

AMUSE communicates with workers "using a channel, in an RPC-like method"
(paper Sec. 4.1).  The loopback link between coupler and daemon is the
path the paper quotes ">8 Gbit/s even on a modest laptop" for
(``benchmarks/bench_loopback.py`` reproduces the measurement), so the
framing is built to move large float64 arrays with as few copies as the
socket API allows.

Two frame layouts share one receive path (the magic distinguishes them
per frame):

**v1** — ``b"AMSE"`` + 4-byte payload length + one contiguous pickle-5
payload.  Simple, but the payload is materialised twice on send (pickle
buffer + header concatenation) and twice on receive (chunk join +
unpickle copy).

**v2** — ``b"AMS2"`` + 4-byte descriptor-block length, then one
descriptor block holding the buffer table and the pickle-5 *metadata*
(the message with large buffers extracted out-of-band via
``buffer_callback``), then the raw buffers back to back::

    <4s magic "AMS2"> <u32 block_len>
    block: <u32 nbuffers> <u64 buffer_len x nbuffers> <metadata bytes>
    <buffer bytes ...>

Grouping the buffer table with the metadata keeps a small frame at two
reads — the same syscall count as v1 — while large frames add exactly
one ``recv_into`` per out-of-band buffer.

On send the parts are handed to ``socket.sendmsg`` as a scatter-gather
iovec — header, metadata and every array buffer go to the kernel without
being concatenated.  On receive each buffer is read with ``recv_into``
into one pre-allocated ``bytearray`` and the arrays are reconstructed
*in place* over those bytearrays (``pickle.loads(..., buffers=...)``),
so a NumPy array crosses the wire with exactly one copy per direction.

Peers negotiate the version at the channel layer (see
``repro.rpc.channel``): a v2-capable client opens with a v1-encoded
``("hello", 0, max_version, (), {})`` frame; a v2 peer acknowledges and
both sides switch, a v1 peer answers with an error frame and the client
transparently stays on v1 framing.

Message shapes::

    ("call",    call_id, method_name, args_tuple, kwargs_dict)
    ("mcall",   call_id, [(method, args, kwargs), ...])   # pipelined batch
    ("result",  call_id, value)
    ("mresult", call_id, [("ok", value) | ("error", cls, msg, tb), ...])
    ("error",   call_id, exception_class_name, message, traceback_text)
"""

from __future__ import annotations

import functools
import pickle
import struct

__all__ = [
    "MAGIC",
    "MAGIC2",
    "HEADER",
    "PROTOCOL_VERSION",
    "pack_frame",
    "encode_frame_v2",
    "send_frame",
    "send_frame_v2",
    "recv_frame",
    "encode_payload",
    "decode_payload",
    "RemoteError",
    "ProtocolError",
    "ConnectionLostError",
]

MAGIC = b"AMSE"                       # v1 frames
MAGIC2 = b"AMS2"                      # v2 frames (out-of-band buffers)
HEADER = struct.Struct("<4sI")        # magic + payload/block length
BLOCK_COUNT = struct.Struct("<I")     # buffer count (start of v2 block)
BUFFER_LEN = struct.Struct("<Q")      # per-buffer length (v2 table)
MAX_FRAME = 1 << 31
MAX_BUFFERS = 1 << 16
PROTOCOL_VERSION = 2

#: iovec batch size for sendmsg (Linux IOV_MAX is 1024)
_IOV_LIMIT = 1024

#: below this, a bufferless frame is concatenated and sent with one
#: sendall — cheaper than iovec bookkeeping for latency-bound calls
_SMALL_FRAME = 1 << 16


class ProtocolError(RuntimeError):
    """Raised on malformed frames or broken connections."""


class ConnectionLostError(ProtocolError):
    """The peer vanished while calls were (or could be) in flight.

    Raised by stream channels when the connection drops, and by the
    subprocess channel when the worker child dies — then carrying the
    child's exit code and a tail of its captured stderr so the crash
    is diagnosable from the script side.
    """

    def __init__(self, message, returncode=None, stderr_tail=""):
        super().__init__(message)
        self.returncode = returncode
        self.stderr_tail = stderr_tail


class RemoteError(RuntimeError):
    """An exception that occurred inside a worker, re-raised locally."""

    def __init__(self, exc_class, message, remote_traceback=""):
        super().__init__(f"{exc_class}: {message}")
        self.exc_class = exc_class
        self.remote_message = message
        self.remote_traceback = remote_traceback


# -- out-of-band payload helpers (also used by repro.mpi.comm) -------------


def encode_payload(obj):
    """Pickle *obj*, extracting large buffers out-of-band.

    Returns ``(meta, buffers)`` where *meta* is the pickle-5 metadata and
    *buffers* is a list of contiguous memoryviews over the original
    arrays — no data copies are made.
    """
    pickle_buffers = []
    meta = pickle.dumps(obj, protocol=5,
                        buffer_callback=pickle_buffers.append)
    return meta, [pb.raw() for pb in pickle_buffers]


def decode_payload(meta, buffers=()):
    """Inverse of :func:`encode_payload`; arrays are reconstructed over
    the provided buffers without copying."""
    return pickle.loads(meta, buffers=buffers)


# -- v1 framing -------------------------------------------------------------


def pack_frame(message):
    """Serialise *message* into v1 header + payload bytes."""
    payload = pickle.dumps(message, protocol=5)
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(payload)} bytes")
    return HEADER.pack(MAGIC, len(payload)) + payload


def send_frame(sock, message):
    """Send one v1 frame; returns the byte count."""
    data = pack_frame(message)
    sock.sendall(data)
    return len(data)


# -- v2 framing -------------------------------------------------------------


@functools.lru_cache(maxsize=64)
def _head_struct(nbuf):
    return struct.Struct(f"<4sII{nbuf}Q")


def encode_frame_v2(message):
    """Serialise *message* into a list of v2 frame parts (no copies).

    The parts are ready for scatter-gather send: header + buffer table,
    metadata, then one raw memoryview per out-of-band buffer.
    """
    meta, buffers = encode_payload(message)
    return _build_parts_v2(meta, buffers)


def _build_parts_v2(meta, buffers):
    nbuf = len(buffers)
    if nbuf > MAX_BUFFERS:
        raise ProtocolError(f"too many buffers: {nbuf}")
    block_len = BLOCK_COUNT.size + BUFFER_LEN.size * nbuf + len(meta)
    total = block_len + sum(len(b) for b in buffers)
    if total > MAX_FRAME or block_len > MAX_FRAME:
        raise ProtocolError(f"frame too large: {total} bytes")
    head = _head_struct(nbuf).pack(
        MAGIC2, block_len, nbuf, *(len(b) for b in buffers)
    )
    return [head, meta, *buffers]


def _sendmsg_all(sock, parts):
    """Send every part via scatter-gather; returns total bytes sent."""
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is None:
        # fallback for socket-likes without sendmsg (tests, non-POSIX)
        data = b"".join(bytes(p) for p in parts)
        sock.sendall(data)
        return len(data)
    total = sum(len(p) for p in parts)
    while parts:
        sent = sendmsg(parts[:_IOV_LIMIT])
        # advance past whatever the kernel accepted
        i = 0
        while i < len(parts) and sent >= len(parts[i]):
            sent -= len(parts[i])
            i += 1
        parts = parts[i:]
        if sent:
            parts[0] = memoryview(parts[0])[sent:]
    return total


def send_frame_v2(sock, message):
    """Send one frame on a v2 connection; returns the byte count.

    A message with no out-of-band buffers pickles to a single
    self-contained payload, so it is emitted in v1 framing (cheapest
    codec path; the receiver detects the version per frame) — small
    latency-bound calls cost the same as on a v1 connection.  Messages
    carrying buffers use the v2 layout with scatter-gather send.
    """
    meta, buffers = encode_payload(message)
    if not buffers:
        if len(meta) > MAX_FRAME:
            raise ProtocolError(f"frame too large: {len(meta)} bytes")
        head = HEADER.pack(MAGIC, len(meta))
        if len(meta) <= _SMALL_FRAME:
            data = head + meta
            sock.sendall(data)
            return len(data)
        return _sendmsg_all(sock, [head, meta])
    return _sendmsg_all(sock, _build_parts_v2(meta, buffers))


# -- receive (auto-detects v1/v2 per frame) ---------------------------------


def _recv_exact(sock, n):
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if len(chunks) != 1 else chunks[0]


def _recv_exact_into(sock, buf):
    """Fill the writable buffer *buf* completely via ``recv_into``."""
    view = memoryview(buf)
    offset = 0
    recv_into = getattr(sock, "recv_into", None)
    if recv_into is None:
        view[:] = _recv_exact(sock, len(view))
        return
    while offset < len(view):
        n = recv_into(view[offset:])
        if not n:
            raise ProtocolError("connection closed mid-frame")
        offset += n


def recv_frame(sock):
    """Receive one frame (either version); raises ProtocolError on
    EOF/corruption/oversize."""
    header = _recv_exact(sock, HEADER.size)
    magic = header[:4]
    if magic == MAGIC:
        (length,) = struct.unpack("<I", header[4:])
        if length > MAX_FRAME:
            raise ProtocolError(f"frame too large: {length} bytes")
        payload = bytearray(length)
        _recv_exact_into(sock, payload)
        return pickle.loads(payload)
    if magic == MAGIC2:
        (block_len,) = struct.unpack("<I", header[4:])
        if block_len > MAX_FRAME:
            raise ProtocolError(f"frame too large: {block_len} bytes")
        block = bytearray(block_len)
        _recv_exact_into(sock, block)
        (nbuffers,) = BLOCK_COUNT.unpack_from(block)
        table_end = BLOCK_COUNT.size + BUFFER_LEN.size * nbuffers
        if nbuffers > MAX_BUFFERS or table_end > block_len:
            raise ProtocolError(f"bad buffer table ({nbuffers} buffers)")
        lengths = struct.unpack_from(f"<{nbuffers}Q", block,
                                     BLOCK_COUNT.size)
        total = block_len + sum(lengths)
        if total > MAX_FRAME:
            raise ProtocolError(f"frame too large: {total} bytes")
        buffers = []
        for length in lengths:
            buf = bytearray(length)
            _recv_exact_into(sock, buf)
            buffers.append(buf)
        meta = memoryview(block)[table_end:]
        return pickle.loads(meta, buffers=buffers)
    raise ProtocolError(f"bad frame magic {magic!r}")
