"""Wire protocol for AMUSE worker channels (v1 + zero-copy v2).

AMUSE communicates with workers "using a channel, in an RPC-like method"
(paper Sec. 4.1).  The loopback link between coupler and daemon is the
path the paper quotes ">8 Gbit/s even on a modest laptop" for
(``benchmarks/bench_loopback.py`` reproduces the measurement), so the
framing is built to move large float64 arrays with as few copies as the
socket API allows.

Two frame layouts share one receive path (the magic distinguishes them
per frame):

**v1** — ``b"AMSE"`` + 4-byte payload length + one contiguous pickle-5
payload.  Simple, but the payload is materialised twice on send (pickle
buffer + header concatenation) and twice on receive (chunk join +
unpickle copy).

**v2** — ``b"AMS2"`` + 4-byte descriptor-block length, then one
descriptor block holding the buffer table and the pickle-5 *metadata*
(the message with large buffers extracted out-of-band via
``buffer_callback``), then the raw buffers back to back::

    <4s magic "AMS2"> <u32 block_len>
    block: <u32 nbuffers> <u64 buffer_len x nbuffers> <metadata bytes>
    <buffer bytes ...>

Grouping the buffer table with the metadata keeps a small frame at two
reads — the same syscall count as v1 — while large frames add exactly
one ``recv_into`` per out-of-band buffer.

Two more layouts extend v2 for connections that negotiated the matching
capability in the hello handshake (see *Capability negotiation* below);
both are detected per frame by magic, so capable peers may mix them
freely with v1/v2 frames on one connection:

**v2c** — ``b"AMSC"`` — per-buffer compression.  The buffer table gains
an encoded length next to the raw length and the block names the codec;
each buffer above the negotiated size threshold is compressed
individually and stored raw when compression does not shrink it
(``enc_len == raw_len`` marks a raw buffer, so incompressible data
costs one compression attempt and nothing on the wire)::

    <4s magic "AMSC"> <u32 block_len>
    block: <u32 nbuffers> <u8 codec_id>
           <(u64 enc_len, u64 raw_len) x nbuffers> <metadata bytes>
    <encoded buffer bytes ...>

**shm** — ``b"AMSH"`` — same-host shared-memory transport.  Buffer
*bytes* leave the socket entirely: the sender copies each large buffer
into a block of its :class:`~repro.rpc.shm.ShmArena` segment and the
frame carries only ``(offset, length)`` descriptors; the receiver reads
the block straight out of the mapped segment.  Small buffers stay
inline (``kind 0``) so arena exhaustion degrades to the v2 wire path
instead of failing.  Block release is piggybacked: every frame also
carries the offsets its sender has consumed from the *peer's* arena
since its last frame, so the request/response traffic itself recycles
the pool with zero extra round trips::

    <4s magic "AMSH"> <u32 block_len>
    block: <u32 nbuffers> <u32 nfreed>
           <(u8 kind, u64 a, u64 b) x nbuffers>   # kind 1: a=offset b=len (shm)
           <u64 freed_offset x nfreed>            # kind 0: a=len, inline
           <metadata bytes>
    <inline buffer bytes ...>

**cancel** — ``b"AMCX"`` — in-flight call cancellation, the control
frame behind ``Future.cancel()`` and the RESTART fault policy.  A tiny
fixed-size frame naming the call to withdraw plus its own ack id::

    <4s magic "AMCX"> <u32 block_len=16>
    block: <u64 ack_id> <u64 target_call_id>

The worker acknowledges with a normal ``("result", ack_id, {...})``
frame reporting what happened to the target: ``"dequeued"`` (the call
had not started and never will run), ``"abandoned"`` (it is running;
its eventual result will be discarded instead of sent) or ``"done"``
(too late — the reply was already sent).  Because a single-threaded
worker busy in a long call could never see the frame, a worker that
negotiated this capability serves calls on a dedicated runner thread
while its main thread keeps reading frames (see
:func:`repro.rpc.channel.worker_loop`).

**Capability negotiation** rides the existing hello frame: the client's
``("hello", 0, max_version, (), {"caps": {...}})`` may offer a codec
preference list (``"compress"``), shared-memory segment names
(``"shm"``) and/or in-flight cancellation (``"cancel"``); the peer's
ack dict answers with the first offered codec it can load, ``"shm":
True`` once it attached the named segments, and ``"cancel": True``
when it will honour AMCX frames (only :func:`worker_loop` peers do —
the daemon never acks it, so distributed channels degrade to
client-side abandon).
Peers that predate capabilities ignore the kwargs slot and answer with
a bare version — the client then runs plain v2 — and v1 peers still
answer the hello with an error frame, downgrading all the way.  A
:class:`WireState` holds the negotiated outcome per connection.

On send the parts are handed to ``socket.sendmsg`` as a scatter-gather
iovec — header, metadata and every array buffer go to the kernel without
being concatenated.  On receive each buffer is read with ``recv_into``
into one pre-allocated ``bytearray`` and the arrays are reconstructed
*in place* over those bytearrays (``pickle.loads(..., buffers=...)``),
so a NumPy array crosses the wire with exactly one copy per direction.

Peers negotiate the version at the channel layer (see
``repro.rpc.channel``): a v2-capable client opens with a v1-encoded
``("hello", 0, max_version, (), {})`` frame; a v2 peer acknowledges and
both sides switch, a v1 peer answers with an error frame and the client
transparently stays on v1 framing.

Message shapes::

    ("call",    call_id, method_name, args_tuple, kwargs_dict)
    ("mcall",   call_id, [(method, args, kwargs), ...])   # pipelined batch
    ("result",  call_id, value)
    ("mresult", call_id, [("ok", value) | ("error", cls, msg, tb), ...])
    ("error",   call_id, exception_class_name, message, traceback_text)
"""

from __future__ import annotations

import errno
import functools
import os
import pickle
import secrets
import struct
import threading
import zlib

__all__ = [
    "MAGIC",
    "MAGIC2",
    "MAGIC_COMPRESS",
    "MAGIC_SHM",
    "MAGIC_CANCEL",
    "HEADER",
    "PROTOCOL_VERSION",
    "COMPRESS_MIN_DEFAULT",
    "SHM_MIN_DEFAULT",
    "Codec",
    "WireState",
    "available_codecs",
    "negotiate_codec",
    "resolve_compress_offer",
    "accept_capabilities",
    "new_session_id",
    "pack_frame",
    "encode_frame_v2",
    "send_frame",
    "send_frame_v2",
    "send_cancel_frame",
    "recv_frame",
    "relay_frame",
    "RelayScratch",
    "encode_payload",
    "decode_payload",
    "RemoteError",
    "ProtocolError",
    "ConnectionLostError",
    "CancelledError",
]

MAGIC = b"AMSE"                       # v1 frames
MAGIC2 = b"AMS2"                      # v2 frames (out-of-band buffers)
MAGIC_COMPRESS = b"AMSC"              # v2 + per-buffer compression
MAGIC_SHM = b"AMSH"                   # v2 + shared-memory buffer blocks
MAGIC_CANCEL = b"AMCX"                # in-flight call cancellation
HEADER = struct.Struct("<4sI")        # magic + payload/block length
CANCEL_BODY = struct.Struct("<QQ")    # ack id + target call id (AMCX)
BLOCK_COUNT = struct.Struct("<I")     # buffer count (start of v2 block)
BUFFER_LEN = struct.Struct("<Q")      # per-buffer length (v2 table)
COMPRESS_HEAD = struct.Struct("<IB")  # buffer count + codec id (AMSC)
COMPRESS_ENTRY = struct.Struct("<QQ")  # encoded + raw length (AMSC table)
SHM_HEAD = struct.Struct("<II")       # buffer count + freed count (AMSH)
SHM_ENTRY = struct.Struct("<BQQ")     # kind + two u64 fields (AMSH table)
MAX_FRAME = 1 << 31
MAX_BUFFERS = 1 << 16
PROTOCOL_VERSION = 2

#: buffers below this many bytes are never compressed (the attempt
#: costs more than the socket write it would save)
COMPRESS_MIN_DEFAULT = 1 << 14

#: buffers below this many bytes stay inline on the socket even on an
#: shm connection (descriptor bookkeeping beats memcpy only for bulk)
SHM_MIN_DEFAULT = 1 << 16

#: iovec batch size for sendmsg (Linux IOV_MAX is 1024)
_IOV_LIMIT = 1024

#: below this, a bufferless frame is concatenated and sent with one
#: sendall — cheaper than iovec bookkeeping for latency-bound calls
_SMALL_FRAME = 1 << 16


class ProtocolError(RuntimeError):
    """Raised on malformed frames or broken connections."""


class ConnectionLostError(ProtocolError):
    """The peer vanished while calls were (or could be) in flight.

    Raised by stream channels when the connection drops, and by the
    subprocess channel when the worker child dies — then carrying the
    child's exit code and a tail of its captured stderr so the crash
    is diagnosable from the script side.
    """

    def __init__(self, message, returncode=None, stderr_tail=""):
        super().__init__(message)
        self.returncode = returncode
        self.stderr_tail = stderr_tail


class CancelledError(RuntimeError):
    """An in-flight call or future was cancelled before it completed.

    Deliberately an ``Exception`` (unlike
    :class:`concurrent.futures.CancelledError`, which is a
    ``BaseException``): cancellation is an expected recovery outcome
    that aggregate joins and cleanup paths must be able to absorb.
    """


class RemoteError(RuntimeError):
    """An exception that occurred inside a worker, re-raised locally."""

    def __init__(self, exc_class, message, remote_traceback=""):
        super().__init__(f"{exc_class}: {message}")
        self.exc_class = exc_class
        self.remote_message = message
        self.remote_traceback = remote_traceback


# -- per-buffer compression codecs ------------------------------------------


class Codec:
    """One negotiable per-buffer compression codec.

    ``compress`` maps a readable buffer to bytes; ``decompress`` maps
    the encoded bytes plus the known raw length back to a *writable*
    buffer (arrays are reconstructed in place over it, and the v2
    contract is that received arrays are writable).
    """

    __slots__ = ("codec_id", "name", "compress", "decompress")

    def __init__(self, codec_id, name, compress, decompress):
        self.codec_id = codec_id
        self.name = name
        self.compress = compress
        self.decompress = decompress

    def __repr__(self):
        return f"<Codec {self.name} (id {self.codec_id})>"


def _build_codecs():
    """Probe for codec libraries; unimportable ones simply don't exist.

    zstd and lz4 are the WAN-grade codecs the roadmap names; zlib is
    the stdlib floor so a compression-negotiated link works on any
    interpreter (it is offered last — a peer with a real codec never
    picks it).  Compressor objects are created per call: the zstd/lz4
    module-level objects are not documented thread-safe, and a reader
    thread may decompress while a sender compresses.
    """
    codecs = {}
    codecs["zlib"] = Codec(
        1, "zlib",
        lambda data: zlib.compress(data, 1),
        lambda data, raw_len: bytearray(zlib.decompress(data)),
    )
    try:
        import lz4.frame as _lz4
    except ImportError:
        pass
    else:
        codecs["lz4"] = Codec(
            2, "lz4",
            lambda data: _lz4.compress(bytes(data)),
            lambda data, raw_len: bytearray(_lz4.decompress(bytes(data))),
        )
    try:
        import zstandard as _zstd
    except ImportError:
        pass
    else:
        codecs["zstd"] = Codec(
            3, "zstd",
            lambda data: _zstd.ZstdCompressor(level=1).compress(
                bytes(data)
            ),
            lambda data, raw_len: bytearray(
                _zstd.ZstdDecompressor().decompress(
                    bytes(data), max_output_size=raw_len
                )
            ),
        )
    return codecs


#: codec preference order when offering/accepting (fastest real codec
#: first, stdlib floor last)
CODEC_PREFERENCE = ("zstd", "lz4", "zlib")
CODECS_BY_NAME = _build_codecs()
CODECS_BY_ID = {c.codec_id: c for c in CODECS_BY_NAME.values()}


def available_codecs():
    """Importable codec names, most preferred first."""
    return [n for n in CODEC_PREFERENCE if n in CODECS_BY_NAME]


def negotiate_codec(offered):
    """Pick the first codec from the peer's preference list that this
    side can load; None when there is no common codec."""
    for name in offered:
        if name in CODECS_BY_NAME:
            return name
    return None


def resolve_compress_offer(compress):
    """Normalise a channel's ``compress=`` option into an offer list.

    ``None``/``False`` — offer nothing; ``True`` — every importable
    codec in preference order; a name — just that codec (must be
    importable); a list — the importable subset, the caller's order.
    """
    if compress is None or compress is False:
        return []
    if compress is True:
        return available_codecs()
    if isinstance(compress, str):
        if compress not in CODECS_BY_NAME:
            raise ValueError(
                f"compression codec {compress!r} is not available; "
                f"importable codecs: {available_codecs()}"
            )
        return [compress]
    return [name for name in compress if name in CODECS_BY_NAME]


# -- negotiated per-connection wire state ------------------------------------


class WireState:
    """The outcome of one connection's hello negotiation.

    Holds the wire version, the agreed codec (if any) with its size
    threshold, and — for shm connections — the two arena ends: this
    side allocates outgoing buffers from ``tx_arena`` and reads the
    peer's buffers out of ``rx_arena``.  The pending-free list collects
    the rx offsets this side has consumed; the send path drains it into
    the next outgoing frame so the peer can recycle its blocks.
    """

    def __init__(self, version=1, codec=None,
                 compress_min=COMPRESS_MIN_DEFAULT,
                 tx_arena=None, rx_arena=None, shm_min=SHM_MIN_DEFAULT):
        self.version = version
        self.codec = codec
        self.compress_min = compress_min
        self.tx_arena = tx_arena
        self.rx_arena = rx_arena
        self.shm_min = shm_min
        #: peer honours AMCX cancel frames (hello "cancel" capability)
        self.cancel = False
        self._free_lock = threading.Lock()
        self._pending_free = []
        #: transport statistics (raw payload vs wire bytes; shm bytes
        #: never touch the socket at all)
        self.raw_buffer_bytes = 0
        self.wire_buffer_bytes = 0
        self.shm_buffer_bytes = 0
        #: post-compression bytes actually written for AMSC frames
        self.compressed_bytes = 0
        #: receive-side totals (kept here because only the receive path
        #: sees the frame sizes; :func:`recv_frame` updates them when
        #: handed a wire state)
        self.bytes_received = 0
        self.frames_received = 0

    def add_freed(self, offsets):
        """Record consumed peer-arena offsets for the next send."""
        if offsets:
            with self._free_lock:
                self._pending_free.extend(offsets)

    def take_freed(self):
        with self._free_lock:
            freed, self._pending_free = self._pending_free, []
        return freed

    def has_pending_free(self):
        return bool(self._pending_free)

    @property
    def shm_active(self):
        return self.tx_arena is not None


def accept_capabilities(offered, wire, allow_cancel=False):
    """Server half of the hello capability negotiation.

    Mutates *wire* with whatever this side can honour and returns the
    ack dict.  Anything unrecognised — or an shm offer whose segments
    this process cannot attach (wrong host, dead creator) — is silently
    dropped, which IS the downgrade: the client reads the ack and keeps
    the plain v2 path for everything missing from it.

    *allow_cancel* is passed True only by servers that actually honour
    AMCX frames (:func:`~repro.rpc.channel.worker_loop`); the daemon
    keeps the default so distributed clients fall back to client-side
    abandon instead of sending cancel frames into a loop that would
    reject them.
    """
    accepted = {}
    if allow_cancel and offered.get("cancel"):
        wire.cancel = True
        accepted["cancel"] = True
    codec_name = negotiate_codec(offered.get("compress") or ())
    if codec_name:
        wire.codec = CODECS_BY_NAME[codec_name]
        if "compress_min" in offered:
            wire.compress_min = int(offered["compress_min"])
        accepted["compress"] = codec_name
    shm_offer = offered.get("shm")
    if shm_offer:
        try:
            from .shm import attach_peer_arenas  # lazy: avoids a cycle
            attach_peer_arenas(wire, shm_offer)
        except Exception:  # noqa: BLE001 - any failure means "no shm"
            pass
        else:
            if "shm_min" in shm_offer:
                wire.shm_min = int(shm_offer["shm_min"])
            accepted["shm"] = True
    return accepted


def new_session_id():
    """Mint an unguessable wire identifier.

    Used by the multi-session daemon for session ids and join tokens:
    a tenant can only address pilots inside a session whose token it
    was handed at hello time, so ids must not be enumerable.
    """
    return secrets.token_hex(8)


# -- out-of-band payload helpers (also used by repro.mpi.comm) -------------


def encode_payload(obj):
    """Pickle *obj*, extracting large buffers out-of-band.

    Returns ``(meta, buffers)`` where *meta* is the pickle-5 metadata and
    *buffers* is a list of contiguous memoryviews over the original
    arrays — no data copies are made.
    """
    pickle_buffers = []
    meta = pickle.dumps(obj, protocol=5,
                        buffer_callback=pickle_buffers.append)
    return meta, [pb.raw() for pb in pickle_buffers]


def decode_payload(meta, buffers=()):
    """Inverse of :func:`encode_payload`; arrays are reconstructed over
    the provided buffers without copying."""
    return pickle.loads(meta, buffers=buffers)


# -- v1 framing -------------------------------------------------------------


def pack_frame(message):
    """Serialise *message* into v1 header + payload bytes."""
    payload = pickle.dumps(message, protocol=5)
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(payload)} bytes")
    return HEADER.pack(MAGIC, len(payload)) + payload


def send_frame(sock, message):
    """Send one v1 frame; returns the byte count."""
    data = pack_frame(message)
    sock.sendall(data)
    return len(data)


def send_cancel_frame(sock, ack_id, target_call_id):
    """Send one AMCX cancel frame; returns the byte count.

    Only valid on a connection whose peer acked the "cancel"
    capability — any other peer would reject the magic.
    """
    data = (
        HEADER.pack(MAGIC_CANCEL, CANCEL_BODY.size)
        + CANCEL_BODY.pack(ack_id, target_call_id)
    )
    sock.sendall(data)
    return len(data)


# -- v2 framing -------------------------------------------------------------


@functools.lru_cache(maxsize=64)
def _head_struct(nbuf):
    return struct.Struct(f"<4sII{nbuf}Q")


def encode_frame_v2(message):
    """Serialise *message* into a list of v2 frame parts (no copies).

    The parts are ready for scatter-gather send: header + buffer table,
    metadata, then one raw memoryview per out-of-band buffer.
    """
    meta, buffers = encode_payload(message)
    return _build_parts_v2(meta, buffers)


def _build_parts_v2(meta, buffers):
    nbuf = len(buffers)
    if nbuf > MAX_BUFFERS:
        raise ProtocolError(f"too many buffers: {nbuf}")
    block_len = BLOCK_COUNT.size + BUFFER_LEN.size * nbuf + len(meta)
    total = block_len + sum(len(b) for b in buffers)
    if total > MAX_FRAME or block_len > MAX_FRAME:
        raise ProtocolError(f"frame too large: {total} bytes")
    head = _head_struct(nbuf).pack(
        MAGIC2, block_len, nbuf, *(len(b) for b in buffers)
    )
    return [head, meta, *buffers]


def _sendmsg_all(sock, parts):
    """Send every part via scatter-gather; returns total bytes sent."""
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is None:
        # fallback for socket-likes without sendmsg (tests, non-POSIX)
        data = b"".join(bytes(p) for p in parts)
        sock.sendall(data)
        return len(data)
    total = sum(len(p) for p in parts)
    while parts:
        sent = sendmsg(parts[:_IOV_LIMIT])
        # advance past whatever the kernel accepted
        i = 0
        while i < len(parts) and sent >= len(parts[i]):
            sent -= len(parts[i])
            i += 1
        parts = parts[i:]
        if sent:
            parts[0] = memoryview(parts[0])[sent:]
    return total


def send_frame_v2(sock, message, wire=None):
    """Send one frame on a v2 connection; returns the byte count.

    A message with no out-of-band buffers pickles to a single
    self-contained payload, so it is emitted in v1 framing (cheapest
    codec path; the receiver detects the version per frame) — small
    latency-bound calls cost the same as on a v1 connection.  Messages
    carrying buffers use the v2 layout with scatter-gather send.

    A negotiated :class:`WireState` upgrades the buffer path: on an shm
    connection large buffers travel through the arena (and any frame
    with pending block releases uses shm framing so the peer's pool
    recycles); on a compressed connection buffers above the threshold
    are compressed per-buffer.  Both degrade to the plain v2 layout
    frame by frame — arena full, nothing compressible — without the
    peer needing to know.
    """
    meta, buffers = encode_payload(message)
    if wire is not None:
        wire.raw_buffer_bytes += sum(len(b) for b in buffers)
        if wire.shm_active and (
            wire.has_pending_free()
            or any(len(b) >= wire.shm_min for b in buffers)
        ):
            return _send_frame_shm(sock, wire, meta, buffers)
        if wire.codec is not None and any(
            len(b) >= wire.compress_min for b in buffers
        ):
            sent = _send_frame_compressed(sock, wire, meta, buffers)
            if sent is not None:
                return sent
        wire.wire_buffer_bytes += sum(len(b) for b in buffers)
    if not buffers:
        if len(meta) > MAX_FRAME:
            raise ProtocolError(f"frame too large: {len(meta)} bytes")
        head = HEADER.pack(MAGIC, len(meta))
        if len(meta) <= _SMALL_FRAME:
            data = head + meta
            sock.sendall(data)
            return len(data)
        return _sendmsg_all(sock, [head, meta])
    return _sendmsg_all(sock, _build_parts_v2(meta, buffers))


def _send_frame_compressed(sock, wire, meta, buffers):
    """Emit an AMSC frame; returns None when nothing shrank (the
    caller then falls back to the cheaper plain-v2 table)."""
    codec = wire.codec
    table = []
    parts = []
    shrank = False
    for buf in buffers:
        raw_len = len(buf)
        if raw_len >= wire.compress_min:
            encoded = codec.compress(buf)
            if len(encoded) < raw_len:
                table.append(COMPRESS_ENTRY.pack(len(encoded), raw_len))
                parts.append(encoded)
                shrank = True
                continue
        table.append(COMPRESS_ENTRY.pack(raw_len, raw_len))
        parts.append(buf)
    if not shrank:
        return None
    nbuf = len(buffers)
    if nbuf > MAX_BUFFERS:
        raise ProtocolError(f"too many buffers: {nbuf}")
    block_len = COMPRESS_HEAD.size + COMPRESS_ENTRY.size * nbuf + len(meta)
    payload = sum(len(p) for p in parts)
    if block_len > MAX_FRAME or block_len + payload > MAX_FRAME:
        raise ProtocolError(
            f"frame too large: {block_len + payload} bytes"
        )
    wire.wire_buffer_bytes += payload
    wire.compressed_bytes += payload
    head = HEADER.pack(MAGIC_COMPRESS, block_len)
    codec_head = COMPRESS_HEAD.pack(nbuf, codec.codec_id)
    return _sendmsg_all(sock, [head, codec_head, *table, meta, *parts])


def _send_frame_shm(sock, wire, meta, buffers):
    """Emit an AMSH frame: large buffers through the arena, small (or
    overflow) buffers inline, consumed peer offsets piggybacked.

    A frame rejected as oversize must not poison the still-healthy
    connection: the blocks allocated for it are returned to the arena
    and the drained freed-offset list is re-queued for the next frame.
    """
    arena = wire.tx_arena
    nbuf = len(buffers)
    if nbuf > MAX_BUFFERS:
        raise ProtocolError(f"too many buffers: {nbuf}")
    freed = wire.take_freed()
    allocated = []
    try:
        entries = []
        inline = []
        for buf in buffers:
            length = len(buf)
            offset = arena.alloc(length) if length >= wire.shm_min \
                else None
            if offset is None:
                entries.append(SHM_ENTRY.pack(0, length, 0))
                inline.append(buf)
            else:
                arena.write(offset, buf)
                allocated.append(offset)
                entries.append(SHM_ENTRY.pack(1, offset, length))
        head_fixed = SHM_HEAD.pack(nbuf, len(freed))
        freed_bytes = struct.pack(f"<{len(freed)}Q", *freed)
        block_len = (
            SHM_HEAD.size + SHM_ENTRY.size * nbuf + len(freed_bytes)
            + len(meta)
        )
        payload = sum(len(b) for b in inline)
        if block_len > MAX_FRAME or block_len + payload > MAX_FRAME:
            raise ProtocolError(
                f"frame too large: {block_len + payload} bytes"
            )
    except BaseException:
        for offset in allocated:
            arena.free(offset)
        wire.add_freed(freed)
        raise
    wire.wire_buffer_bytes += payload
    wire.shm_buffer_bytes += sum(len(b) for b in buffers) - payload
    head = HEADER.pack(MAGIC_SHM, block_len)
    return _sendmsg_all(
        sock, [head, head_fixed, *entries, freed_bytes, meta, *inline]
    )


# -- receive (auto-detects v1/v2 per frame) ---------------------------------


def _recv_exact(sock, n):
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if len(chunks) != 1 else chunks[0]


def _recv_exact_into(sock, buf):
    """Fill the writable buffer *buf* completely via ``recv_into``."""
    view = memoryview(buf)
    offset = 0
    recv_into = getattr(sock, "recv_into", None)
    if recv_into is None:
        view[:] = _recv_exact(sock, len(view))
        return
    while offset < len(view):
        n = recv_into(view[offset:])
        if not n:
            raise ProtocolError("connection closed mid-frame")
        offset += n


def recv_frame(sock, wire=None):
    """Receive one frame (any layout, detected by magic); raises
    ProtocolError on EOF/corruption/oversize.

    Compressed (AMSC) frames are self-describing — the codec id is in
    the block — so *wire* is only needed for shm (AMSH) frames, whose
    descriptors reference the peer's arena attached on *wire* — and for
    the receive-side byte/frame accounting it accumulates.
    """
    header = _recv_exact(sock, HEADER.size)
    magic = header[:4]
    if magic == MAGIC:
        (length,) = struct.unpack("<I", header[4:])
        if length > MAX_FRAME:
            raise ProtocolError(f"frame too large: {length} bytes")
        payload = bytearray(length)
        _recv_exact_into(sock, payload)
        _count_received(wire, HEADER.size + length)
        return pickle.loads(payload)
    if magic == MAGIC2:
        (block_len,) = struct.unpack("<I", header[4:])
        if block_len > MAX_FRAME:
            raise ProtocolError(f"frame too large: {block_len} bytes")
        block = bytearray(block_len)
        _recv_exact_into(sock, block)
        (nbuffers,) = BLOCK_COUNT.unpack_from(block)
        table_end = BLOCK_COUNT.size + BUFFER_LEN.size * nbuffers
        if nbuffers > MAX_BUFFERS or table_end > block_len:
            raise ProtocolError(f"bad buffer table ({nbuffers} buffers)")
        lengths = struct.unpack_from(f"<{nbuffers}Q", block,
                                     BLOCK_COUNT.size)
        total = block_len + sum(lengths)
        if total > MAX_FRAME:
            raise ProtocolError(f"frame too large: {total} bytes")
        buffers = []
        for length in lengths:
            buf = bytearray(length)
            _recv_exact_into(sock, buf)
            buffers.append(buf)
        _count_received(wire, HEADER.size + total)
        meta = memoryview(block)[table_end:]
        return pickle.loads(meta, buffers=buffers)
    if magic == MAGIC_COMPRESS:
        return _recv_frame_compressed(sock, header, wire)
    if magic == MAGIC_SHM:
        return _recv_frame_shm(sock, header, wire)
    if magic == MAGIC_CANCEL:
        (block_len,) = struct.unpack("<I", header[4:])
        if block_len != CANCEL_BODY.size:
            raise ProtocolError(
                f"bad cancel frame length {block_len}"
            )
        ack_id, target = CANCEL_BODY.unpack(
            _recv_exact(sock, CANCEL_BODY.size)
        )
        _count_received(wire, HEADER.size + CANCEL_BODY.size)
        return ("cancel", ack_id, target)
    raise ProtocolError(f"bad frame magic {magic!r}")


def _count_received(wire, nbytes):
    """Accumulate receive-side accounting on *wire* (no-op without one)."""
    if wire is not None:
        wire.bytes_received += nbytes
        wire.frames_received += 1


def _recv_block(sock, header):
    (block_len,) = struct.unpack("<I", header[4:])
    if block_len > MAX_FRAME:
        raise ProtocolError(f"frame too large: {block_len} bytes")
    block = bytearray(block_len)
    _recv_exact_into(sock, block)
    return block


def _recv_frame_compressed(sock, header, wire=None):
    block = _recv_block(sock, header)
    nbuffers, codec_id = COMPRESS_HEAD.unpack_from(block)
    table_end = COMPRESS_HEAD.size + COMPRESS_ENTRY.size * nbuffers
    if nbuffers > MAX_BUFFERS or table_end > len(block):
        raise ProtocolError(f"bad buffer table ({nbuffers} buffers)")
    codec = CODECS_BY_ID.get(codec_id)
    if codec is None:
        raise ProtocolError(
            f"frame compressed with unknown codec id {codec_id} "
            "(negotiation should have prevented this)"
        )
    entries = [
        COMPRESS_ENTRY.unpack_from(block, COMPRESS_HEAD.size + i *
                                   COMPRESS_ENTRY.size)
        for i in range(nbuffers)
    ]
    total = len(block) + sum(enc for enc, _raw in entries)
    if total > MAX_FRAME:
        raise ProtocolError(f"frame too large: {total} bytes")
    buffers = []
    for enc_len, raw_len in entries:
        buf = bytearray(enc_len)
        _recv_exact_into(sock, buf)
        if enc_len != raw_len:
            buf = codec.decompress(buf, raw_len)
            if len(buf) != raw_len:
                raise ProtocolError(
                    f"decompressed to {len(buf)} bytes, "
                    f"expected {raw_len}"
                )
        buffers.append(buf)
    _count_received(wire, HEADER.size + total)
    meta = memoryview(block)[table_end:]
    return pickle.loads(meta, buffers=buffers)


def _recv_frame_shm(sock, header, wire):
    block = _recv_block(sock, header)
    nbuffers, nfreed = SHM_HEAD.unpack_from(block)
    table_end = (
        SHM_HEAD.size + SHM_ENTRY.size * nbuffers + BUFFER_LEN.size *
        nfreed
    )
    if nbuffers > MAX_BUFFERS or table_end > len(block):
        raise ProtocolError(f"bad buffer table ({nbuffers} buffers)")
    entries = [
        SHM_ENTRY.unpack_from(block, SHM_HEAD.size + i * SHM_ENTRY.size)
        for i in range(nbuffers)
    ]
    freed = struct.unpack_from(
        f"<{nfreed}Q", block, SHM_HEAD.size + SHM_ENTRY.size * nbuffers
    )
    total_inline = sum(a for kind, a, _b in entries if kind == 0)
    if len(block) + total_inline > MAX_FRAME:
        raise ProtocolError(
            f"frame too large: {len(block) + total_inline} bytes"
        )
    if wire is None or (
        any(kind == 1 for kind, _a, _b in entries)
        and wire.rx_arena is None
    ):
        raise ProtocolError(
            "received an shm frame on a connection without negotiated "
            "shared memory"
        )
    if freed and wire.tx_arena is not None:
        for offset in freed:
            wire.tx_arena.free(offset)
    buffers = []
    consumed = []
    for kind, a, b in entries:
        if kind == 0:
            buf = bytearray(a)
            _recv_exact_into(sock, buf)
        elif kind == 1:
            buf = wire.rx_arena.read(a, b)
            consumed.append(a)
        else:
            raise ProtocolError(f"bad shm buffer kind {kind}")
        buffers.append(buf)
    wire.add_freed(consumed)
    _count_received(wire, HEADER.size + len(block) + total_inline)
    meta = memoryview(block)[table_end:]
    return pickle.loads(meta, buffers=buffers)


# -- zero-decode relay (frame splicing) --------------------------------------

#: cut-through chunk size for relayed buffer bytes: big enough that the
#: per-chunk syscall pair is amortised, small enough that forwarding
#: starts while the sender is still writing the frame
RELAY_CHUNK = 1 << 20


def _relay_recv_header(src):
    """Read one frame header, or return None on EOF *between* frames.

    EOF mid-header is a protocol violation like any other truncation;
    EOF at a frame boundary is how a relayed connection ends cleanly.
    """
    buf = bytearray(HEADER.size)
    view = memoryview(buf)
    got = 0
    while got < HEADER.size:
        n = src.recv_into(view[got:])
        if not n:
            if got == 0:
                return None
            raise ProtocolError("connection closed mid-frame")
        got += n
    return buf


def _relay_trailing_len(magic, block):
    """Byte count that follows the descriptor block of a spliced frame.

    Parses ONLY the buffer table — never the pickled metadata — which
    is the whole point of the relay: the daemon learns how many raw
    buffer bytes to pump and nothing about their content.
    """
    block_len = len(block)
    if magic == MAGIC2:
        (nbuffers,) = BLOCK_COUNT.unpack_from(block)
        table_end = BLOCK_COUNT.size + BUFFER_LEN.size * nbuffers
        if nbuffers > MAX_BUFFERS or table_end > block_len:
            raise ProtocolError(
                f"bad buffer table ({nbuffers} buffers)"
            )
        lengths = struct.unpack_from(
            f"<{nbuffers}Q", block, BLOCK_COUNT.size
        )
        return sum(lengths)
    if magic == MAGIC_COMPRESS:
        nbuffers, _codec_id = COMPRESS_HEAD.unpack_from(block)
        table_end = COMPRESS_HEAD.size + COMPRESS_ENTRY.size * nbuffers
        if nbuffers > MAX_BUFFERS or table_end > block_len:
            raise ProtocolError(
                f"bad buffer table ({nbuffers} buffers)"
            )
        return sum(
            COMPRESS_ENTRY.unpack_from(
                block, COMPRESS_HEAD.size + i * COMPRESS_ENTRY.size
            )[0]
            for i in range(nbuffers)
        )
    # MAGIC_SHM: only kind-0 (inline) entries carry bytes on the wire;
    # kind-1 descriptors reference arena blocks the endpoints mapped
    # between themselves — the relay forwards those untouched, which is
    # what makes same-host shm zero-wire-copy end to end.
    nbuffers, nfreed = SHM_HEAD.unpack_from(block)
    table_end = (
        SHM_HEAD.size + SHM_ENTRY.size * nbuffers
        + BUFFER_LEN.size * nfreed
    )
    if nbuffers > MAX_BUFFERS or table_end > block_len:
        raise ProtocolError(f"bad buffer table ({nbuffers} buffers)")
    total = 0
    for i in range(nbuffers):
        kind, a, _b = SHM_ENTRY.unpack_from(
            block, SHM_HEAD.size + i * SHM_ENTRY.size
        )
        if kind == 0:
            total += a
        elif kind != 1:
            raise ProtocolError(f"bad shm buffer kind {kind}")
    return total


class RelayScratch:
    """Reusable pump state for :func:`relay_frame`.

    Owns the userspace chunk buffer and, on Linux, a lazily-created
    kernel pipe through which buffer bytes are moved socket-to-socket
    with ``os.splice`` — the payload never enters userspace at all,
    which is what keeps relayed throughput within the 10% acceptance
    bound of a direct socket.  One instance per pump thread; call
    :meth:`close` when the pump ends (the pipe holds kernel pages).
    """

    __slots__ = ("buf", "_pipe", "_no_splice")

    def __init__(self):
        self.buf = bytearray(RELAY_CHUNK)
        self._pipe = None
        self._no_splice = not hasattr(os, "splice")

    def pipe(self):
        if self._pipe is None:
            read_fd, write_fd = os.pipe()
            try:
                import fcntl

                # a 1 MiB pipe moves RELAY_CHUNK per splice pair; the
                # 64 KiB default would cost 16x the syscalls
                fcntl.fcntl(
                    write_fd, fcntl.F_SETPIPE_SZ, RELAY_CHUNK
                )
            except (ImportError, AttributeError, OSError):
                pass        # default capacity still works, just slower
            self._pipe = (read_fd, write_fd)
        return self._pipe

    def close(self):
        if self._pipe is not None:
            for fd in self._pipe:
                try:
                    os.close(fd)
                except OSError:
                    pass
            self._pipe = None


def _splice_kernel(src, dst, nbytes, scratch):
    """Zero-copy pump: socket → kernel pipe → socket via os.splice.

    Returns False (without consuming anything) when the kernel refuses
    the very first splice — the caller then falls back to the
    userspace loop for good.  Any failure after bytes moved is a real
    connection error; the pipe may hold undelivered bytes, so it is
    dropped rather than reused.
    """
    pipe_read, pipe_write = scratch.pipe()
    src_fd, dst_fd = src.fileno(), dst.fileno()
    remaining = nbytes
    try:
        while remaining:
            try:
                moved = os.splice(
                    src_fd, pipe_write, min(remaining, RELAY_CHUNK)
                )
            except OSError as exc:
                if remaining == nbytes and exc.errno in (
                    errno.EINVAL, errno.ENOSYS, errno.EOPNOTSUPP,
                ):
                    scratch._no_splice = True
                    return False
                raise
            if not moved:
                raise ProtocolError("connection closed mid-frame")
            while moved:
                n = os.splice(pipe_read, dst_fd, moved)
                moved -= n
                remaining -= n
    except BaseException:
        scratch.close()     # never reuse a pipe with stranded bytes
        raise
    return True


def _splice_exact(src, dst, nbytes, scratch):
    """Pump *nbytes* from src to dst, cut-through: each chunk is
    forwarded as soon as it arrives, so the two hops of a relayed
    transfer pipeline instead of store-and-forwarding.  With a
    :class:`RelayScratch` the bytes move through a kernel pipe
    (``os.splice``, zero userspace copies); a plain ``bytearray``
    scratch — or a kernel that refuses to splice sockets — takes the
    portable recv_into/sendall loop."""
    if isinstance(scratch, RelayScratch):
        if not scratch._no_splice and \
                _splice_kernel(src, dst, nbytes, scratch):
            return
        view = memoryview(scratch.buf)
    else:
        view = memoryview(scratch)
    remaining = nbytes
    while remaining:
        n = src.recv_into(view[: min(remaining, len(view))])
        if not n:
            raise ProtocolError("connection closed mid-frame")
        dst.sendall(view[:n])
        remaining -= n


def relay_frame(src, dst, scratch=None):
    """Splice one frame from *src* to *dst* without decoding it.

    The relay half of the daemon data plane: reads the 8-byte header,
    parses just enough of the descriptor block to learn the trailing
    buffer byte count (never the pickled metadata), validates the same
    size/table bounds :func:`recv_frame` enforces, and forwards
    header + block verbatim followed by the raw buffer bytes in
    cut-through chunks.

    Returns the total byte count spliced, or ``None`` on a clean EOF
    at a frame boundary.  Raises :class:`ProtocolError` on truncation,
    oversize or a malformed table — the caller tears down only the
    offending connection.

    *scratch* is a reusable ``bytearray`` or :class:`RelayScratch` for
    the buffer pump; one per pump thread avoids re-allocating
    :data:`RELAY_CHUNK` per frame, and a :class:`RelayScratch` adds
    the kernel ``splice(2)`` fast path (no userspace copies at all).
    """
    header = _relay_recv_header(src)
    if header is None:
        return None
    magic = bytes(header[:4])
    (block_len,) = struct.unpack("<I", header[4:])
    if magic == MAGIC_CANCEL:
        if block_len != CANCEL_BODY.size:
            raise ProtocolError(f"bad cancel frame length {block_len}")
        body = bytearray(CANCEL_BODY.size)
        _recv_exact_into(src, body)
        dst.sendall(bytes(header) + bytes(body))
        return HEADER.size + CANCEL_BODY.size
    if block_len > MAX_FRAME:
        raise ProtocolError(f"frame too large: {block_len} bytes")
    if magic == MAGIC:
        # v1: the length IS the payload length; stream it straight through
        dst.sendall(header)
        if scratch is None:
            scratch = bytearray(RELAY_CHUNK)
        _splice_exact(src, dst, block_len, scratch)
        return HEADER.size + block_len
    if magic not in (MAGIC2, MAGIC_COMPRESS, MAGIC_SHM):
        raise ProtocolError(f"bad frame magic {magic!r}")
    block = bytearray(block_len)
    _recv_exact_into(src, block)
    trailing = _relay_trailing_len(magic, block)
    if block_len + trailing > MAX_FRAME:
        raise ProtocolError(
            f"frame too large: {block_len + trailing} bytes"
        )
    dst.sendall(bytes(header) + bytes(block))
    if trailing:
        if scratch is None:
            scratch = bytearray(RELAY_CHUNK)
        _splice_exact(src, dst, trailing, scratch)
    return HEADER.size + block_len + trailing
