"""Wire protocol for AMUSE worker channels.

AMUSE communicates with workers "using a channel, in an RPC-like method"
(paper Sec. 4.1).  Frames are length-prefixed: an 8-byte little-endian
header (4-byte magic ``b"AMSE"`` + 4-byte payload length) followed by a
pickle-5 payload.  Pickle 5 keeps large float64 arrays as single raw
buffers, which is what lets the loopback link reach multi-Gbit/s rates
(the paper quotes ">8 Gbit/s even on a modest laptop" for the
coupler↔daemon loopback socket; ``benchmarks/bench_loopback.py``
reproduces the measurement).

Message shapes::

    ("call",   call_id, method_name, args_tuple, kwargs_dict)
    ("result", call_id, value)
    ("error",  call_id, exception_class_name, message, traceback_text)
"""

from __future__ import annotations

import pickle
import struct

__all__ = [
    "MAGIC",
    "HEADER",
    "pack_frame",
    "send_frame",
    "recv_frame",
    "RemoteError",
    "ProtocolError",
]

MAGIC = b"AMSE"
HEADER = struct.Struct("<4sI")
MAX_FRAME = 1 << 31


class ProtocolError(RuntimeError):
    """Raised on malformed frames or broken connections."""


class RemoteError(RuntimeError):
    """An exception that occurred inside a worker, re-raised locally."""

    def __init__(self, exc_class, message, remote_traceback=""):
        super().__init__(f"{exc_class}: {message}")
        self.exc_class = exc_class
        self.remote_message = message
        self.remote_traceback = remote_traceback


def pack_frame(message):
    """Serialise *message* into header + payload bytes."""
    payload = pickle.dumps(message, protocol=5)
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(payload)} bytes")
    return HEADER.pack(MAGIC, len(payload)) + payload


def send_frame(sock, message):
    """Send one frame over a socket-like object (sendall interface)."""
    sock.sendall(pack_frame(message))


def _recv_exact(sock, n):
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if len(chunks) != 1 else chunks[0]

def recv_frame(sock):
    """Receive one frame; raises ProtocolError on EOF/corruption."""
    header = _recv_exact(sock, HEADER.size)
    magic, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    payload = _recv_exact(sock, length)
    return pickle.loads(payload)
