"""``python -m repro.ensemble`` — run or replay a campaign spec.

Loads a :class:`~repro.ensemble.spec.CampaignSpec` JSON file (either
the explicit ``members`` list or the compact ``workload``/``seeds``/
``parameters`` sweep form), runs it and prints the streaming aggregate
table.  With ``--resume`` members already in the result cache are
served as cache hits instead of re-running — replaying a finished
campaign is then near-instant.

Without ``--daemon`` an in-process :class:`IbisDaemon` is started for
the duration of the run and ``--sessions`` tenant sessions are opened
against it; point ``--daemon host:port`` at a shared service to ride
an existing deployment instead.

Exit status: 0 when every member completed (ran or cached), 1 when
any member failed, 2 on a bad spec.
"""

from __future__ import annotations

import argparse
import json
import sys

from .cache import ResultCache
from .runner import CampaignRunner
from .spec import CampaignSpec


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.ensemble",
        description="Run an ensemble campaign over daemon sessions.",
    )
    parser.add_argument(
        "--spec", required=True,
        help="campaign spec JSON (members list or sweep form)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="serve members already in the cache as hits "
             "(default: re-run everything, refreshing the cache)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="result cache directory (no caching when omitted)",
    )
    parser.add_argument(
        "--cache-max-entries", type=int, default=None,
        help="LRU bound on the cache store",
    )
    parser.add_argument(
        "--daemon", default=None, metavar="HOST:PORT",
        help="attach to a running daemon instead of starting one",
    )
    parser.add_argument(
        "--sessions", type=int, default=2,
        help="tenant sessions to fan members across (default: 2)",
    )
    parser.add_argument(
        "--local", action="store_true",
        help="no daemon at all: members place direct local channels",
    )
    parser.add_argument(
        "--worker-mode", default=None,
        choices=("thread", "subprocess", "shm"),
        help="daemon pilot mode for member codes",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=4,
        help="member concurrency window (default: 4)",
    )
    parser.add_argument(
        "--max-restarts", type=int, default=1,
        help="fresh-pilot retries per crashed member (default: 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="campaign-level deadline in seconds",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of the table",
    )
    return parser.parse_args(argv)


def _report_json(report):
    return json.dumps({
        "campaign": report.spec.name,
        "members": len(report.results),
        "completed": report.completed,
        "cached": report.cached,
        "failed": report.failed,
        "wall_s": round(report.wall_s, 6),
        "cache": report.cache_stats,
        "aggregate": report.aggregate.summary(),
        "results": [r.to_dict() for r in report.results],
    }, indent=2, sort_keys=True)


def main(argv=None):
    args = _parse_args(argv)
    try:
        spec = CampaignSpec.load(args.spec)
    except (OSError, ValueError, KeyError) as exc:
        print(f"bad spec {args.spec!r}: {exc}", file=sys.stderr)
        return 2

    cache = None
    if args.cache:
        cache = ResultCache(
            args.cache, max_entries=args.cache_max_entries
        )

    daemon = None
    sessions = []
    try:
        if not args.local:
            from ..distributed import IbisDaemon, connect

            if args.daemon:
                target = args.daemon
            else:
                daemon = IbisDaemon()
                daemon.start()
                target = daemon
            sessions = [
                connect(target, name=f"{spec.name}-{i}")
                for i in range(max(1, args.sessions))
            ]
        runner = CampaignRunner(
            spec,
            sessions=sessions or None,
            cache=cache,
            worker_mode=args.worker_mode,
            max_inflight=args.max_inflight,
            max_restarts=args.max_restarts,
            resume=args.resume,
        )
        report = runner.run(timeout=args.timeout)
    finally:
        for session in sessions:
            try:
                session.close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        if daemon is not None:
            daemon.shutdown()

    if args.json:
        print(_report_json(report))
    else:
        print(report.summary_line())
        print(report.table())
        for failure in report.failures():
            print(
                f"FAILED {failure.member.label()}: {failure.error}",
                file=sys.stderr,
            )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
