"""Workload registry: run-spec factories for the example simulations.

A workload is a callable ``fn(member, ctx) -> {metric: float}`` looked
up by the :class:`~repro.ensemble.runner.CampaignRunner` through
:data:`WORKLOADS`.  The :class:`MemberContext` is how a workload
places its model codes: through the campaign's daemon
:class:`~repro.distributed.Session` when one is assigned (pilots ride
admission control and per-session accounting) or over direct local
channels when the campaign runs sessionless — the physics code never
knows the difference, which is exactly the paper's one-line-change
claim lifted to whole campaigns.

Built-ins turn the repo's example simulations into campaign members:

``sleep``     known-cost no-op pilots (scheduling/caching benches)
``drift``     seeded synthetic conservation errors (reference sweep)
``plummer``   real PhiGRAPE N-body energy drift
``embedded``  the four-code embedded-cluster simulation (Sec. 6)
``cesm``      the coupled climate demo
``crash``     a member whose worker SIGKILLs itself mid-evolve —
              the crash-isolation probe (must fail without taking
              the campaign down)

Register more with :func:`register_workload`.
"""

from __future__ import annotations

import functools
import os
import signal
import time

__all__ = [
    "WORKLOADS",
    "MemberContext",
    "get_workload",
    "register_workload",
]

#: name -> ``fn(member, ctx) -> {metric: float}``
WORKLOADS = {}

#: daemon pilot mode -> sessionless channel factory name
_LOCAL_CHANNEL = {
    "thread": "sockets",
    "subprocess": "subprocess",
    "shm": "shm",
    None: "sockets",
}


def register_workload(name):
    """Decorator: publish a workload factory under *name*."""

    def deco(fn):
        WORKLOADS[str(name)] = fn
        return fn

    return deco


def get_workload(name):
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: {sorted(WORKLOADS)}"
        ) from None


class MemberContext:
    """Per-member placement handle given to every workload call.

    ``code()`` places a :class:`~repro.codes.highlevel.CommunityCode`,
    ``interface()`` a bare interface factory (returning the channel).
    Both go through the member's assigned session when the campaign
    has one; everything placed is stopped by ``close()`` whatever the
    member's outcome, so a failed member never leaks pilots.
    """

    def __init__(self, session=None, worker_mode=None):
        self.session = session
        self.worker_mode = worker_mode
        self._placed = []

    def _local_type(self, mode):
        try:
            return _LOCAL_CHANNEL[mode]
        except KeyError:
            return mode

    def code(self, cls, *args, worker_mode=None, **kwargs):
        mode = worker_mode or self.worker_mode
        if self.session is not None:
            placed = self.session.code(
                cls, *args, channel_type=mode, **kwargs
            )
        else:
            placed = cls(
                *args, channel_type=self._local_type(mode), **kwargs
            )
        self._placed.append(placed)
        return placed

    def interface(self, factory, *args, worker_mode=None, **kwargs):
        mode = worker_mode or self.worker_mode
        if args or kwargs:
            factory = functools.partial(factory, *args, **kwargs)
        if self.session is not None:
            channel = self.session.code(factory, channel_type=mode)
        else:
            from ..rpc.channel import new_channel

            channel = new_channel(self._local_type(mode), factory)
        self._placed.append(channel)
        return channel

    def close(self):
        placed, self._placed = self._placed, []
        for item in reversed(placed):
            stop = getattr(item, "stop", None)
            if stop is None:
                continue
            try:
                stop()
            except Exception:  # noqa: BLE001 - member teardown best-effort
                pass


# -- built-in workloads ------------------------------------------------------


@register_workload("sleep")
def _run_sleep(member, ctx):
    """Known-cost pilot: ``cost_s`` per step, ``n_steps`` steps."""
    from ..codes.testing import SleepCode
    from ..units import nbody_system

    params = member.parameters
    cost_s = float(params.get("cost_s", 0.05))
    n_steps = int(params.get("n_steps", 1))
    code = ctx.code(SleepCode, cost_s=cost_s)
    for step in range(n_steps):
        code.evolve_model((step + 1) * 0.1 | nbody_system.time)
    return {"steps": float(n_steps), "energy_drift": 0.0, "mass_loss": 0.0}


@register_workload("drift")
def _run_drift(member, ctx):
    """Seeded synthetic conservation errors (DriftingCode)."""
    from ..codes.testing import DriftingCode
    from ..units import nbody_system

    params = member.parameters
    code = ctx.code(
        DriftingCode,
        seed=member.seed,
        drift_scale=float(params.get("drift_scale", 1e-6)),
        loss_scale=float(params.get("loss_scale", 1e-4)),
        cost_s=float(params.get("cost_s", 0.0)),
    )
    n_steps = int(params.get("n_steps", 4))
    for step in range(n_steps):
        code.evolve_model((step + 1) * 0.1 | nbody_system.time)
    return code.metrics()


@register_workload("plummer")
def _run_plummer(member, ctx):
    """Real N-body run: PhiGRAPE on a Plummer model, measured drift."""
    from ..codes import PhiGRAPE
    from ..ic import new_plummer_model
    from ..units import nbody_system, units

    params = member.parameters
    n_stars = int(params.get("n_stars", 32))
    converter = nbody_system.nbody_to_si(
        float(params.get("mass_msun", 1000.0)) | units.MSun,
        float(params.get("radius_pc", 1.0)) | units.parsec,
    )
    stars = new_plummer_model(
        n_stars, convert_nbody=converter, rng=member.seed
    )
    gravity = ctx.code(
        PhiGRAPE, converter,
        kernel=params.get("kernel", "cpu"),
        eta=float(params.get("eta", 0.05)),
    )
    gravity.add_particles(stars)
    e0 = gravity.total_energy.value_in(units.J)
    gravity.evolve_model(
        float(params.get("t_end_myr", 0.2)) | units.Myr
    )
    e1 = gravity.total_energy.value_in(units.J)
    return {
        "energy_drift": abs((e1 - e0) / e0),
        "mass_loss": 0.0,
        "n_stars": float(n_stars),
    }


@register_workload("embedded")
def _run_embedded(member, ctx):
    """The Sec. 6 embedded-cluster simulation as a campaign member."""
    from ..coupling.embedded import EmbeddedClusterSimulation

    params = member.parameters

    def factory(cls, converter, channel_type, **code_params):
        if converter is None:
            return ctx.code(cls, **code_params)
        return ctx.code(cls, converter, **code_params)

    sim = EmbeddedClusterSimulation(
        n_stars=int(params.get("n_stars", 8)),
        n_gas=int(params.get("n_gas", 32)),
        se_interval=int(params.get("se_interval", 2)),
        rng=member.seed,
        code_factory=factory,
    )
    sim.run(int(params.get("n_iterations", 1)))
    return sim.metrics()


@register_workload("cesm")
def _run_cesm(member, ctx):
    """The coupled climate demo (in-process numpy components)."""
    from ..cesm.coupler import EarthSystemModel

    params = member.parameters
    model = EarthSystemModel(
        land_fraction=float(params.get("land_fraction", 0.3)),
    )
    diag = model.run(
        float(params.get("days", 30.0)),
        dt_days=float(params.get("dt_days", 5.0)),
    )
    return {
        key: float(value)
        for key, value in diag.items()
        if isinstance(value, (int, float))
    }


class VictimInterface:
    """Off-process worker that can report its own pid.

    Defined module-level so a subprocess worker child can unpickle the
    factory by reference.  Deliberately NOT a CodeInterface subclass
    feature set: the crash workload only needs pid + a slow evolve.
    """

    def __init__(self, cost_s=0.5):
        self.cost_s = float(cost_s)

    def pid(self):
        return os.getpid()

    def evolve_model(self, end_time):
        time.sleep(self.cost_s)
        return float(end_time)

    def stop(self):
        return 0


@register_workload("crash")
def _run_crash(member, ctx):
    """Crash-isolation probe: SIGKILL the member's own worker mid-call.

    Always placed in ``subprocess`` mode (a thread pilot's pid is the
    daemon — or this very process).  Every attempt dies the same way,
    so under restarts the member still fails deterministically: the
    campaign must record exactly this member as failed and finish the
    rest.
    """
    channel = ctx.interface(
        VictimInterface,
        cost_s=float(member.parameters.get("cost_s", 0.5)),
        worker_mode="subprocess",
    )
    pid = channel.call("pid")
    request = channel.async_call("evolve_model", 1.0)
    time.sleep(0.05)   # let the call genuinely reach the worker
    os.kill(pid, signal.SIGKILL)
    request.result()   # raises ConnectionLostError: worker died mid-call
    return {}          # unreachable
