"""Campaign execution: fan members across daemon sessions.

The :class:`CampaignRunner` turns a declarative
:class:`~repro.ensemble.spec.CampaignSpec` into a
:class:`~repro.rpc.taskgraph.TaskGraph` run: one node per member,
launched as a :meth:`~repro.rpc.futures.Future.submit` thread so the
member's pilot placement, evolve calls and teardown all overlap across
the graph's in-flight window.  Concurrency is bounded with
sliding-window dependencies (node *i* waits on node *i - max_inflight*),
so the runner never floods the daemon: admission control sees at most
``max_inflight`` members' calls at once and stays in charge of
fairness across tenants.

Fault semantics (the crash-isolation contract):

* the graph runs under :class:`~repro.rpc.FaultPolicy.IGNORE`, so one
  member's failure *never* skips or cancels other members;
* within a member, :class:`~repro.rpc.FaultPolicy.RESTART` (the
  default) retries worker-death/cancellation errors on a **fresh
  pilot** up to ``max_restarts`` times — a SIGKILLed worker costs at
  most its own member;
* a genuine model error (anything non-restartable) fails the member
  immediately; the rest of the campaign completes.

Results stream: each finished member is written to the
:class:`~repro.ensemble.cache.ResultCache`, folded into the
:class:`~repro.ensemble.aggregate.StreamingAggregate`, reported to the
``on_member_done(member, result)`` hooks and billed to its session's
campaign accounting — nothing waits for the campaign to end.
"""

from __future__ import annotations

import threading
import time
import traceback

from ..rpc import FaultPolicy, Future, TaskGraph
from ..rpc.protocol import (
    CancelledError,
    ConnectionLostError,
    RemoteError,
)
from .aggregate import StreamingAggregate
from .spec import CampaignSpec
from .workloads import MemberContext, get_workload

__all__ = ["CampaignReport", "CampaignRunner", "MemberResult"]

#: worker-is-gone errors; anything else is a genuine model failure
_RESTARTABLE = (ConnectionLostError, CancelledError)


def _is_restartable(exc):
    """True when *exc* means "the member's worker is gone/hung".

    Direct channels raise :class:`ConnectionLostError` locally; behind
    a daemon the pilot's death arrives as a :class:`RemoteError` whose
    remote class names the same worker-loss error — both are the
    crash-isolation case, never a genuine model exception.
    """
    if isinstance(exc, _RESTARTABLE):
        return True
    return isinstance(exc, RemoteError) and exc.exc_class in (
        "ConnectionLostError", "CancelledError"
    )


class MemberResult:
    """Outcome of one campaign member.

    ``status`` is ``"ok"`` (ran and succeeded), ``"cached"`` (served
    from the result cache without running) or ``"failed"``.  ``wall_s``
    is the member's own wall clock — for cached members, the wall
    clock of the run that produced the entry.
    """

    __slots__ = (
        "member", "status", "metrics", "error", "wall_s", "restarts",
    )

    def __init__(self, member, status, metrics=None, error=None,
                 wall_s=0.0, restarts=0):
        self.member = member
        self.status = status
        self.metrics = dict(metrics or {})
        self.error = error
        self.wall_s = float(wall_s)
        self.restarts = int(restarts)

    @property
    def ok(self):
        return self.status in ("ok", "cached")

    def to_dict(self):
        return {
            "member": self.member.to_dict(),
            "status": self.status,
            "metrics": dict(self.metrics),
            "error": self.error,
            "wall_s": self.wall_s,
            "restarts": self.restarts,
        }

    def __repr__(self):
        return (
            f"<MemberResult {self.member.label()} {self.status} "
            f"({self.wall_s:.3f}s)>"
        )


class CampaignReport:
    """Everything a finished campaign hands back."""

    def __init__(self, spec, results, aggregate, wall_s,
                 cache_stats=None):
        self.spec = spec
        self.results = list(results)
        self.aggregate = aggregate
        self.wall_s = float(wall_s)
        self.cache_stats = cache_stats

    def _count(self, status):
        return sum(1 for r in self.results if r.status == status)

    @property
    def completed(self):
        return self._count("ok")

    @property
    def cached(self):
        return self._count("cached")

    @property
    def failed(self):
        return self._count("failed")

    @property
    def ok(self):
        return self.failed == 0

    def failures(self):
        return [r for r in self.results if r.status == "failed"]

    def summary_line(self):
        parts = [
            f"campaign {self.spec.name!r}:",
            f"{len(self.results)} members",
            f"({self.completed} ran, {self.cached} cached, "
            f"{self.failed} failed)",
            f"in {self.wall_s:.2f}s",
        ]
        if self.cache_stats is not None:
            parts.append(
                f"[cache: {self.cache_stats['hits']} hits / "
                f"{self.cache_stats['misses']} misses / "
                f"{self.cache_stats['evictions']} evicted / "
                f"{self.cache_stats['corrupt']} corrupt]"
            )
        return " ".join(parts)

    def table(self):
        return self.aggregate.table()

    def __repr__(self):
        return f"<CampaignReport {self.summary_line()}>"


class CampaignRunner:
    """Run a campaign's members across one or more daemon sessions.

    *sessions* is a :class:`~repro.distributed.Session`, a list of
    them (members are assigned round-robin), or None — then members
    place direct local channels instead of daemon pilots.  *cache* is
    a :class:`~repro.ensemble.cache.ResultCache` or None; with
    ``resume=True`` (the default) cached members are served without
    running, with ``resume=False`` every member runs and refreshes its
    entry.  ``on_member_done(member, result)`` hooks fire for every
    member — ran, cached or failed — as soon as its outcome is known.
    """

    def __init__(self, spec, sessions=None, cache=None,
                 worker_mode=None, max_inflight=4,
                 fault_policy=FaultPolicy.RESTART, max_restarts=1,
                 resume=True, on_member_done=None, aggregate=None,
                 percentiles=None):
        if not isinstance(spec, CampaignSpec):
            spec = CampaignSpec.from_dict(spec)
        self.spec = spec
        if sessions is None:
            sessions = [None]
        elif not isinstance(sessions, (list, tuple)):
            sessions = [sessions]
        self.sessions = list(sessions) or [None]
        self.cache = cache
        self.worker_mode = worker_mode
        self.max_inflight = max(1, int(max_inflight))
        self.fault_policy = fault_policy
        self.max_restarts = int(max_restarts)
        self.resume = bool(resume)
        self._hooks = []
        if on_member_done is not None:
            self._hooks.append(on_member_done)
        self.aggregate = aggregate or StreamingAggregate(
            percentiles=percentiles or (10.0, 50.0, 90.0)
        )
        self._lock = threading.Lock()
        self._results = {}

    def on_member_done(self, hook):
        """Register another post-analysis hook (decorator-friendly)."""
        self._hooks.append(hook)
        return hook

    # -- per-member plumbing -------------------------------------------------

    def _session_for(self, index):
        return self.sessions[index % len(self.sessions)]

    def _bill(self, session, status, wall_s, restarts):
        note = getattr(session, "note_campaign_member", None)
        if note is not None:
            note(self.spec.name, status, wall_s, restarts=restarts)

    def _record(self, index, result):
        with self._lock:
            self._results[index] = result
            if result.ok:
                metrics = dict(result.metrics)
                metrics["wall_s"] = result.wall_s
                self.aggregate.add(metrics)
        self._bill(
            self._session_for(index), result.status, result.wall_s,
            result.restarts,
        )
        for hook in list(self._hooks):
            try:
                hook(result.member, result)
            except Exception:  # noqa: BLE001 - user hook, reported
                traceback.print_exc()

    def _run_member(self, index, member):
        """Execute one member; called on a Future.submit thread."""
        session = self._session_for(index)
        restarts = 0
        started = time.perf_counter()
        while True:
            ctx = MemberContext(session, self.worker_mode)
            try:
                fn = get_workload(member.workload)
                metrics = fn(member, ctx)
            except Exception as exc:
                ctx.close()
                if (_is_restartable(exc)
                        and self.fault_policy is FaultPolicy.RESTART
                        and restarts < self.max_restarts):
                    # fresh pilot, same member — the crash never
                    # leaves this node
                    restarts += 1
                    continue
                self._fail(index, member, exc, started, restarts)
                raise
            else:
                ctx.close()
                wall_s = time.perf_counter() - started
                result = MemberResult(
                    member, "ok", metrics=metrics, wall_s=wall_s,
                    restarts=restarts,
                )
                if self.cache is not None:
                    self.cache.put(member, {
                        "metrics": dict(result.metrics),
                        "wall_s": result.wall_s,
                    })
                self._record(index, result)
                return result

    def _fail(self, index, member, exc, started, restarts):
        self._record(index, MemberResult(
            member, "failed",
            error=f"{type(exc).__name__}: {exc}",
            wall_s=time.perf_counter() - started,
            restarts=restarts,
        ))

    # -- the campaign --------------------------------------------------------

    def run(self, timeout=None):
        """Run every member; returns a :class:`CampaignReport`.

        Never raises for member failures — inspect
        ``report.failures()``; the graph itself can still raise on a
        campaign-level timeout.
        """
        t0 = time.perf_counter()
        self._results.clear()
        graph = TaskGraph()
        window = []      # scheduled node handles, in submission order
        for index, member in enumerate(self.spec.members):
            if self.resume and self.cache is not None:
                stored = self.cache.get(member)
                if stored is not None:
                    self._record(index, MemberResult(
                        member, "cached",
                        metrics=stored.get("metrics", {}),
                        wall_s=stored.get("wall_s", 0.0),
                    ))
                    continue
            after = []
            if len(window) >= self.max_inflight:
                # sliding window: at most max_inflight members in
                # flight, without ever introducing a global barrier
                after = [window[len(window) - self.max_inflight]]
            node = graph.add(
                f"member-{index}-{member.label()}",
                (lambda i=index, m=member:
                 Future.submit(self._run_member, i, m)),
                after=after,
            )
            window.append(node)
        if len(graph):
            # IGNORE at the graph level: member isolation (including
            # RESTART retries) already happened inside _run_member, so
            # a failed node must release — never cancel — the rest
            graph.run(timeout=timeout, fault_policy=FaultPolicy.IGNORE)
        results = [
            self._results[i] for i in range(len(self.spec.members))
        ]
        return CampaignReport(
            self.spec, results, self.aggregate,
            time.perf_counter() - t0,
            None if self.cache is None else self.cache.stats(),
        )
