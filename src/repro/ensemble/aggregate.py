"""Streaming statistical aggregation over campaign results.

A campaign with hundreds of members must not hold every run's state in
memory; :class:`StreamingAggregate` folds each member's scalar metrics
(energy drift, mass loss, wall time, ...) into O(1)-per-metric state:

* Welford mean/variance plus exact min/max — one pass, numerically
  stable;
* percentile bands (p10/p50/p90 by default): **exact** while at most
  ``retain_limit`` samples have arrived (the retained window is handed
  to ``numpy.percentile`` — the path the acceptance criterion pins to
  a NumPy reference within rtol 1e-9), then the window seeds P-square
  (P²) online estimators (Jain & Chlamtac 1985) and is dropped, so
  memory stays bounded however long the campaign runs.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["MetricSummary", "StreamingAggregate"]

#: default percentile bands reported per metric
PERCENTILES = (10.0, 50.0, 90.0)


class _P2Quantile:
    """P² online quantile estimator for one probability *p*.

    Keeps five markers whose heights converge to the (p/2, p, (1+p)/2)
    neighborhood of the distribution; each ``add`` is O(1).  Exact for
    the first five samples, approximate after — the aggregate only
    consults it past ``retain_limit``, where exactness is already
    surrendered by design.
    """

    def __init__(self, p):
        self.p = float(p)
        self._heights = []          # marker heights (q_i)
        self._positions = [1, 2, 3, 4, 5]
        self._desired = [
            1.0, 1.0 + 2.0 * self.p, 1.0 + 4.0 * self.p,
            3.0 + 2.0 * self.p, 5.0,
        ]
        self._increments = [
            0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0,
        ]
        self.count = 0

    def add(self, x):
        x = float(x)
        self.count += 1
        if len(self._heights) < 5:
            self._heights.append(x)
            self._heights.sort()
            return
        q, n = self._heights, self._positions
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]
        # adjust the three interior markers toward desired positions
        for i in (1, 2, 3):
            d = self._desired[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or \
                    (d <= -1 and n[i - 1] - n[i] < -1):
                d = 1 if d >= 1 else -1
                candidate = self._parabolic(i, d)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, d)
                n[i] += d

    def _parabolic(self, i, d):
        q, n = self._heights, self._positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i, d):
        q, n = self._heights, self._positions
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    def value(self):
        if not self._heights:
            return math.nan
        if len(self._heights) < 5:
            # small-sample fallback: exact linear interpolation
            return float(np.percentile(self._heights, self.p * 100.0))
        return float(self._heights[2])


class MetricSummary:
    """Online summary of one scalar metric."""

    def __init__(self, name, percentiles=PERCENTILES, retain_limit=256):
        self.name = name
        self.percentiles = tuple(float(p) for p in percentiles)
        self.retain_limit = int(retain_limit)
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._retained = []
        self._p2 = None

    @property
    def exact(self):
        """True while percentiles come from the retained window."""
        return self._p2 is None

    def add(self, value):
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if self._p2 is not None:
            for est in self._p2:
                est.add(value)
            return
        self._retained.append(value)
        if len(self._retained) > self.retain_limit:
            # hand over: seed the P2 estimators by replaying the
            # window, then drop it — memory stays O(1) from here on
            self._p2 = [
                _P2Quantile(p / 100.0) for p in self.percentiles
            ]
            for x in self._retained:
                for est in self._p2:
                    est.add(x)
            self._retained = []

    @property
    def mean(self):
        return self._mean if self.count else math.nan

    @property
    def std(self):
        if self.count < 2:
            return 0.0 if self.count else math.nan
        return math.sqrt(self._m2 / (self.count - 1))

    def percentile_values(self):
        """``{p: value}`` for the configured bands."""
        if not self.count:
            return {p: math.nan for p in self.percentiles}
        if self._p2 is None:
            window = np.asarray(self._retained)
            return {
                p: float(np.percentile(window, p))
                for p in self.percentiles
            }
        return {
            p: est.value()
            for p, est in zip(self.percentiles, self._p2, strict=True)
        }

    def as_dict(self):
        out = {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "exact": self.exact,
        }
        for p, value in self.percentile_values().items():
            out[f"p{p:g}"] = value
        return out


class StreamingAggregate:
    """Online per-metric statistics over a stream of result dicts.

    ``add({"energy_drift": 3e-7, "wall_s": 1.2})`` folds one member's
    metrics in; metrics appear lazily, so heterogeneous workloads can
    share one campaign (each metric's count tracks how many members
    reported it).  Non-finite and non-numeric values are skipped —
    a diverging member must not poison the campaign statistics.
    """

    def __init__(self, percentiles=PERCENTILES, retain_limit=256):
        self.percentiles = tuple(float(p) for p in percentiles)
        self.retain_limit = int(retain_limit)
        self.metrics = {}
        self.samples = 0

    def _metric(self, name):
        summary = self.metrics.get(name)
        if summary is None:
            summary = self.metrics[name] = MetricSummary(
                name, self.percentiles, self.retain_limit
            )
        return summary

    def add(self, metrics):
        """Fold one member's ``{metric: value}`` dict in."""
        self.samples += 1
        for name, value in metrics.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            if not math.isfinite(value):
                continue
            self._metric(name).add(value)

    def summary(self):
        """``{metric: {count, mean, std, min, max, pXX...}}``."""
        return {
            name: self.metrics[name].as_dict()
            for name in sorted(self.metrics)
        }

    def table(self):
        """Fixed-width aggregate table (the CLI's output)."""
        if not self.metrics:
            return "(no metrics)"
        bands = [f"p{p:g}" for p in self.percentiles]
        header = (
            f"{'metric':<22} {'count':>5} {'mean':>12} {'std':>12} "
            + " ".join(f"{b:>12}" for b in bands)
            + f" {'min':>12} {'max':>12}"
        )
        lines = [header, "-" * len(header)]
        for name in sorted(self.metrics):
            row = self.metrics[name].as_dict()
            cells = [
                f"{name:<22}", f"{row['count']:>5d}",
                f"{row['mean']:>12.5g}", f"{row['std']:>12.5g}",
            ]
            cells += [f"{row[b]:>12.5g}" for b in bands]
            cells += [f"{row['min']:>12.5g}", f"{row['max']:>12.5g}"]
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<StreamingAggregate {self.samples} samples, "
            f"{len(self.metrics)} metrics>"
        )
