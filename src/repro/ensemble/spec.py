"""Declarative campaign specs: hashable members, sweep expansion.

A :class:`Member` is ONE run of a campaign: a registered workload name,
an initial-condition seed, and a parameter dict.  Its identity is the
canonical JSON of those three fields — :meth:`Member.key` hashes that
text, so the same spec produces the same key in any process, on any
host, regardless of dict insertion order.  That key is the
content-address the :class:`~repro.ensemble.cache.ResultCache` stores
results under.

A :class:`CampaignSpec` is an ordered list of members plus a campaign
name.  :meth:`CampaignSpec.sweep` expands the cartesian product of
seeds x parameter axes — the paper's "many models on many resources"
turned into a declarative workload generator.
"""

from __future__ import annotations

import hashlib
import itertools
import json

__all__ = ["CampaignSpec", "Member", "canonical_json", "spec_key"]

_SCALARS = (str, int, float, bool, type(None))


def _check_canonical(value, path="spec"):
    """Reject values whose JSON form is ambiguous or unstable.

    Only JSON scalars, lists and string-keyed dicts are allowed; NaN
    and infinities are refused (their JSON encodings are non-standard
    and would silently split the cache key space across encoders).
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return
    if isinstance(value, int):
        return
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"{path}: non-finite float {value!r}")
        return
    if isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _check_canonical(item, f"{path}[{i}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValueError(
                    f"{path}: non-string key {key!r} (keys must be str "
                    "for a canonical spec)"
                )
            _check_canonical(item, f"{path}.{key}")
        return
    raise ValueError(
        f"{path}: {type(value).__name__} is not JSON-canonical "
        "(use str/int/float/bool/None/list/dict)"
    )


def canonical_json(value):
    """Deterministic JSON text for *value*: sorted keys, no whitespace,
    no NaN.  Equal specs — whatever their dict insertion order —
    produce byte-identical text."""
    _check_canonical(value)
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def spec_key(value):
    """sha256 hex digest of :func:`canonical_json` — the cache key."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


class Member:
    """One deterministic run spec inside a campaign.

    ``workload`` names an entry in the
    :data:`~repro.ensemble.workloads.WORKLOADS` registry, ``seed`` is
    the IC seed, ``parameters`` the workload's knobs.  Members are
    value objects: equality and hashing follow the canonical spec, not
    object identity.
    """

    __slots__ = ("workload", "seed", "parameters")

    def __init__(self, workload, seed=0, parameters=None):
        self.workload = str(workload)
        self.seed = int(seed)
        self.parameters = dict(parameters or {})
        _check_canonical(self.parameters, f"member[{self.workload}]")

    def to_dict(self):
        return {
            "workload": self.workload,
            "seed": self.seed,
            "parameters": dict(self.parameters),
        }

    @classmethod
    def from_dict(cls, data):
        unknown = set(data) - {"workload", "seed", "parameters"}
        if unknown:
            raise ValueError(f"unknown member fields {sorted(unknown)}")
        return cls(
            data["workload"], data.get("seed", 0),
            data.get("parameters"),
        )

    def key(self):
        """Content address: stable across processes, hosts and dict
        insertion orders (pinned by ``tests/test_ensemble.py``)."""
        return spec_key(self.to_dict())

    def label(self):
        """Short human-readable id for tables and progress lines."""
        return f"{self.workload}#{self.seed}:{self.key()[:8]}"

    def __eq__(self, other):
        if not isinstance(other, Member):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return (
            f"Member({self.workload!r}, seed={self.seed}, "
            f"parameters={self.parameters!r})"
        )


class CampaignSpec:
    """Named, ordered collection of :class:`Member` runs."""

    def __init__(self, name, members=()):
        self.name = str(name)
        self.members = [
            m if isinstance(m, Member) else Member.from_dict(m)
            for m in members
        ]

    @classmethod
    def sweep(cls, name, workload, seeds=(0,), parameters=None,
              base=None):
        """Cartesian sweep: seeds x every combination of the value
        lists in *parameters*, on top of the fixed *base* dict.

        >>> spec = CampaignSpec.sweep(
        ...     "demo", "drift", seeds=[1, 2],
        ...     parameters={"eta": [0.05, 0.1]},
        ... )
        >>> len(spec)
        4
        """
        axes = dict(parameters or {})
        names = sorted(axes)
        combos = list(itertools.product(
            *(list(axes[name]) for name in names)
        )) or [()]
        members = []
        for seed in seeds:
            for combo in combos:
                params = dict(base or {})
                params.update(zip(names, combo, strict=True))
                members.append(Member(workload, seed, params))
        return cls(name, members)

    def __len__(self):
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def key(self):
        """Content address of the whole campaign."""
        return spec_key(self.to_dict())

    def to_dict(self):
        return {
            "name": self.name,
            "members": [m.to_dict() for m in self.members],
        }

    @classmethod
    def from_dict(cls, data):
        """Accept both the explicit member-list form and the compact
        sweep form (``workload``/``seeds``/``parameters`` at the top
        level) — the two shapes ``--spec file.json`` understands."""
        if "members" in data:
            return cls(data.get("name", "campaign"), data["members"])
        if "workload" in data:
            return cls.sweep(
                data.get("name", "campaign"), data["workload"],
                seeds=data.get("seeds", (0,)),
                parameters=data.get("parameters"),
                base=data.get("base"),
            )
        raise ValueError(
            "campaign spec needs either 'members' or a "
            "'workload' sweep block"
        )

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def save(self, path):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=2) + "\n")

    @classmethod
    def load(cls, path):
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def __repr__(self):
        return f"<CampaignSpec {self.name!r}: {len(self.members)} members>"
