"""Content-addressed result cache for campaign members.

Resubmitting an identical member must be a cache hit, not a re-run:
the store is keyed on :meth:`Member.key` (sha256 of the canonical run
spec), so "identical" means *byte-identical spec*, never "same file
name" or "same object".  Entries are gzip'd JSON documents — the
JungleWalker ``jwlib/cache.py`` layout (gzip'd keyed store), but keyed
on the full run spec instead of per-model — laid out two-level
(``root/ab/abcd....json.gz``) so huge campaigns don't melt a single
directory.

Robustness contract (exercised by ``tests/test_ensemble.py``):

* a corrupted / truncated / mislabeled entry is treated as a miss,
  counted in ``stats()['corrupt']`` and unlinked — it never crashes
  the campaign;
* writes are atomic (tmp file + ``os.replace``), so a SIGKILLed
  campaign can never leave a half-written entry that later reads as
  valid;
* ``max_entries`` bounds the store with LRU eviction (mtime order,
  refreshed on hit).
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import threading

from .spec import canonical_json

__all__ = ["ResultCache"]

#: stored document schema version; bumped on incompatible layout change
_ENTRY_SCHEMA = 1


class ResultCache:
    """Gzip'd keyed store of member results under *root*.

    ``get``/``put`` take the :class:`~repro.ensemble.spec.Member` (or
    anything with a ``key()``/``to_dict()`` pair) so the stored
    document carries the full spec alongside the result — an entry is
    self-describing and can be audited with ``zcat``.
    """

    def __init__(self, root, max_entries=None):
        self.root = str(root)
        self.max_entries = None if max_entries is None else int(max_entries)
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()
        self._stats = {
            "hits": 0, "misses": 0, "puts": 0,
            "evictions": 0, "corrupt": 0,
        }

    # -- layout --------------------------------------------------------------

    def _path(self, key):
        return os.path.join(self.root, key[:2], f"{key}.json.gz")

    def _entries(self):
        """Every entry path in the store (unordered)."""
        paths = []
        for sub in os.listdir(self.root):
            subdir = os.path.join(self.root, sub)
            if len(sub) == 2 and os.path.isdir(subdir):
                paths.extend(
                    os.path.join(subdir, name)
                    for name in os.listdir(subdir)
                    if name.endswith(".json.gz")
                )
        return paths

    def __len__(self):
        return len(self._entries())

    # -- accounting ----------------------------------------------------------

    def stats(self):
        """hit/miss/put/eviction/corrupt counters plus current size."""
        with self._lock:
            out = dict(self._stats)
        out["entries"] = len(self)
        return out

    def _count(self, name, n=1):
        with self._lock:
            self._stats[name] += n

    # -- store surface -------------------------------------------------------

    def contains(self, member):
        """True when *member* has a readable entry (no counters moved,
        no mtime refresh) — the planning probe ``--resume`` uses."""
        return self._read(member, probe=True) is not None

    def get(self, member):
        """The stored result for *member*, or None (miss).

        A hit refreshes the entry's mtime so LRU eviction tracks use,
        not insertion.  A corrupted entry is unlinked and reported as a
        miss.
        """
        entry = self._read(member)
        if entry is None:
            self._count("misses")
            return None
        self._count("hits")
        path = self._path(member.key())
        try:
            os.utime(path, None)
        except OSError:
            pass
        return entry["result"]

    def _read(self, member, probe=False):
        key = member.key()
        path = self._path(key)
        try:
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                entry = json.load(fh)
            # collision / tamper guard: the document must agree that it
            # IS this spec — a renamed or mis-hashed file never serves
            # another member's result
            if entry.get("schema") != _ENTRY_SCHEMA:
                raise ValueError("unknown entry schema")
            if entry.get("key") != key:
                raise ValueError("entry key does not match its path")
            stored = canonical_json(entry.get("spec"))
            if stored != canonical_json(member.to_dict()):
                raise ValueError("entry spec does not match the member")
            if "result" not in entry:
                raise ValueError("entry has no result")
            return entry
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 - any damage means "miss"
            if not probe:
                self._count("corrupt")
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return None

    def put(self, member, result):
        """Store *result* under the member's content address.

        Atomic (tmp + rename): readers either see the old entry, the
        new one, or nothing — never a torn write.  Returns the key.
        """
        key = member.key()
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        document = {
            "schema": _ENTRY_SCHEMA,
            "key": key,
            "spec": member.to_dict(),
            "result": result,
        }
        text = json.dumps(document, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as raw:
                # fixed mtime=0 inside the gzip header keeps the bytes
                # deterministic for identical documents
                with gzip.GzipFile(
                    fileobj=raw, mode="wb", mtime=0
                ) as gz:
                    gz.write(text.encode("utf-8"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._count("puts")
        self._evict()
        return key

    def _evict(self):
        if self.max_entries is None:
            return
        paths = self._entries()
        excess = len(paths) - self.max_entries
        if excess <= 0:
            return
        def _mtime(path):
            try:
                return os.path.getmtime(path)
            except OSError:
                return 0.0
        for path in sorted(paths, key=_mtime)[:excess]:
            try:
                os.unlink(path)
            except OSError:
                continue
            self._count("evictions")

    def clear(self):
        """Drop every entry (counters are kept — they are campaign
        telemetry, not store state)."""
        for path in self._entries():
            try:
                os.unlink(path)
            except OSError:
                pass

    def __repr__(self):
        return (
            f"<ResultCache {self.root!r}: {len(self)} entries, "
            f"max={self.max_entries}>"
        )
