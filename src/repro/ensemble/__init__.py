"""Ensemble campaigns: parameter sweeps over daemon sessions.

One run at a time is a demo; a product runs **campaigns**.  This
package turns the repo's example simulations into a workload
generator: hundreds of parameterized runs (IC seed x model mix x
coupling parameters) fanned out across the multi-tenant daemon's
pilots, with content-addressed result caching, crash isolation and
streaming statistics — ROADMAP item 4, the scenario-diversity half of
the paper's jungle-computing pitch.

The moving parts
----------------

:class:`Member` / :class:`CampaignSpec` (``spec.py``)
    A member is one deterministic, hashable run spec: a registered
    workload name, an IC seed and a parameter dict.  Its identity is
    the sha256 of the canonical JSON — stable across processes, hosts
    and dict insertion orders.  ``CampaignSpec.sweep`` expands seed x
    parameter cartesian products; specs round-trip through JSON files
    for the CLI.

:class:`ResultCache` (``cache.py``)
    Content-addressed gzip'd store keyed on the member hash:
    resubmitting an identical member is a cache hit (>= 10x faster
    than a cold run, gated by ``benchmarks/bench_ensemble.py``), a
    corrupted entry is a counted miss — never a crash — and
    ``max_entries`` bounds the store with LRU eviction.

:class:`CampaignRunner` (``runner.py``)
    Fans members across one or more ``connect() -> Session`` handles
    (round-robin), scheduling through :class:`~repro.rpc.TaskGraph` +
    :class:`~repro.rpc.Future` with a sliding ``max_inflight`` window,
    so admission control keeps ruling fairness.  Members are
    crash-isolated: a SIGKILLed worker is retried on a fresh pilot
    (``FaultPolicy.RESTART`` semantics) and, if it keeps dying, fails
    only its own member.  ``on_member_done(member, result)`` hooks
    stream post-analysis; member outcomes are billed to each session's
    ``status()["campaigns"]`` accounting.

:class:`StreamingAggregate` (``aggregate.py``)
    Online mean/std/min/max and percentile bands (p10/p50/p90) of
    energy drift, mass loss and wall time — exact (NumPy-matched)
    while a bounded window is retained, P-square estimators beyond it,
    never holding full per-run state.

``workloads.py``
    The registry mapping workload names to run-spec factories over
    the existing example codes (``sleep``, ``drift``, ``plummer``,
    ``embedded``, ``cesm``, plus the ``crash`` isolation probe);
    extend it with :func:`register_workload`.

Command line
------------

``python -m repro.ensemble --spec campaign.json --resume`` replays a
campaign, skipping cache hits, and prints the aggregate table; see
``--help`` and the campaign section of ``examples/quickstart.py``.
"""

from .aggregate import MetricSummary, StreamingAggregate
from .cache import ResultCache
from .runner import CampaignReport, CampaignRunner, MemberResult
from .spec import CampaignSpec, Member, canonical_json, spec_key
from .workloads import (
    WORKLOADS,
    MemberContext,
    get_workload,
    register_workload,
)

__all__ = [
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "Member",
    "MemberContext",
    "MemberResult",
    "MetricSummary",
    "ResultCache",
    "StreamingAggregate",
    "WORKLOADS",
    "canonical_json",
    "get_workload",
    "register_workload",
    "spec_key",
]
