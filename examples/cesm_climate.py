#!/usr/bin/env python3
"""CESM-lite: the paper's second 3MK simulation (Sec. 4.2, Fig. 4).

Couples active atmosphere / ocean / land / sea-ice components through
the parallel flux coupler, runs a 20-year spin-up, demonstrates a data
model replacing an active one, and compares CESM's node layouts
(partitioned vs shared) — the configuration search the paper says
"may take a user quite a bit of experimenting".

Run:  python examples/cesm_climate.py
"""

import time

from repro.cesm import (
    EarthSystemModel,
    Layout,
    ParallelDriver,
    data_twin,
)


def main():
    # -- coupled spin-up -----------------------------------------------------
    esm = EarthSystemModel()
    print("year  T_air[K]  SST[K]  ice")
    for year in range(0, 20, 4):
        esm.run(days=4 * 365, dt_days=5.0)
        d = esm.diagnostics()
        print(
            f"{year + 4:4d}  {d['global_mean_t_air_k']:8.2f}  "
            f"{d['global_mean_sst_k']:6.2f}  {d['ice_fraction']:.3f}"
        )

    # -- ice-albedo feedback --------------------------------------------------
    cold = EarthSystemModel()
    cold.atm.solar_constant = 1250.0
    cold.run(days=20 * 365, dt_days=5.0)
    print(
        "\ndim sun (1250 W/m2): "
        f"T = {cold.diagnostics()['global_mean_t_air_k']:.1f} K, "
        f"ice = {cold.diagnostics()['ice_fraction']:.2f} "
        "(ice-albedo feedback)"
    )

    # -- data model variant -----------------------------------------------------
    datm = data_twin(esm.atm)
    datm.step(5.0)
    print(
        f"\ndata-atmosphere replays climatology: exports "
        f"{sorted(datm.export_fields())}"
    )

    # -- node layouts (paper: partitioned vs shared) -------------------------------
    print("\nlayout comparison (100 model days, work_scale=4):")
    for label, layout in (
        ("partitioned (4 ranks)", Layout.partitioned()),
        ("shared (4 ranks)", Layout.shared(4)),
        ("shared (1 rank)", Layout.shared(1)),
    ):
        model = EarthSystemModel()
        driver = ParallelDriver(model, layout, work_scale=4)
        t0 = time.perf_counter()
        driver.run(days=100, dt_days=5.0)
        elapsed = time.perf_counter() - t0
        print(f"  {label:<22} {elapsed * 1e3:7.1f} ms")


if __name__ == "__main__":
    main()
