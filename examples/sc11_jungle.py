#!/usr/bin/env python3
"""The SC11 worst-case demonstration (paper Sec. 6.1, Figs. 8-11).

Rebuilds the transatlantic jungle of Fig. 9 — the AMUSE coupler on a
laptop in Seattle, the four models on four Dutch sites — deploys every
worker through IbisDeploy/PyGAT, runs modeled iterations through the
calibrated cost model, and prints the IbisDeploy GUI panes (resource
map, job table, SmartSockets overlay, traffic view, load bars) the
paper shows as Figs. 10 and 11.

Run:  python examples/sc11_jungle.py
"""

from repro.distributed import DistributedAmuse, JungleRunner, ResourceSpec
from repro.jungle import make_sc11_jungle
from repro.viz import render_snapshot


def main():
    jungle = make_sc11_jungle()
    laptop = jungle.host("laptop")
    damuse = DistributedAmuse(jungle, laptop)

    # step 2 of the paper's recipe: one config entry per resource
    damuse.add_resource(
        ResourceSpec("LGM", "LGM (LU)", "ssh", 1, needs_gpu=True)
    )
    damuse.add_resource(ResourceSpec("VU", "DAS-4 (VU)", "sge", 8))
    damuse.add_resource(ResourceSpec("UvA", "DAS-4 (UvA)", "sge", 1))
    damuse.add_resource(
        ResourceSpec("TUD", "DAS-4 (TUD)", "sge", 2, needs_gpu=True)
    )

    # step 4: one pilot per model, exactly the Fig. 9 placement
    damuse.new_pilot("gravity", "LGM")             # PhiGRAPE, Tesla
    damuse.new_pilot("hydro", "VU", node_count=8)  # Gadget, 8 nodes
    damuse.new_pilot("se", "UvA")                  # SSE, 1 node
    damuse.new_pilot("coupling", "TUD", node_count=2)  # Octgrav, GPUs

    ok = damuse.wait_for_pilots()
    print(f"all models deployed: {ok} "
          f"(DES t = {jungle.env.now:.1f} s)\n")

    runner = JungleRunner(None, damuse)
    summary = runner.run(5)
    print(
        f"modeled {summary['iterations']} iterations, "
        f"{summary['modeled_s_per_iteration']:.1f} s/iteration "
        "(transatlantic worst case)\n"
    )

    print(render_snapshot(damuse.monitor().snapshot()))
    damuse.stop()


if __name__ == "__main__":
    main()
