#!/usr/bin/env python3
"""Multi-kernel: same model, different kernels, identical physics.

Paper Sec. 4: "multiple implementations of a model may exist that
generate the same result, but are suitable for different resources
(e.g. GPUs vs CPUs) ...  Which kernel is used (the CPU or the GPU
version) has no influence in the result of the simulation, but may have
a dramatic effect on performance."

This example verifies both halves of that claim in one run:

1. PhiGRAPE(cpu) and PhiGRAPE(gpu) produce bit-identical trajectories;
   Octgrav (GPU tree) and Fi (CPU tree) agree to tree-code tolerance;
2. the calibrated cost model charges very different times for them on
   the paper's hardware.

Run:  python examples/multi_kernel.py
"""

import numpy as np

from repro.codes import Fi, Octgrav, PhiGRAPE
from repro.ic import new_plummer_model
from repro.jungle import (
    CostModel,
    IterationWorkload,
    Placement,
    make_desktop_jungle,
)
from repro.units import nbody_system, units


def main():
    converter = nbody_system.nbody_to_si(
        500.0 | units.MSun, 1.0 | units.parsec
    )
    stars = new_plummer_model(64, convert_nbody=converter, rng=7)

    # -- result equivalence -------------------------------------------------
    results = {}
    for kernel in ("cpu", "gpu"):
        gravity = PhiGRAPE(converter, kernel=kernel, eta=0.05)
        gravity.add_particles(stars)
        gravity.evolve_model(0.5 | units.Myr)
        results[kernel] = gravity.particles.position.value_in(
            units.parsec
        )
        gravity.stop()
    identical = np.array_equal(results["cpu"], results["gpu"])
    print(f"PhiGRAPE cpu vs gpu kernels bit-identical: {identical}")

    fields = {}
    for name, cls in (("octgrav", Octgrav), ("fi", Fi)):
        code = cls(converter)
        code.add_particles(stars)
        acc = code.get_gravity_at_point(
            0.01 | units.parsec, stars.position
        )
        fields[name] = acc.value_in(units.m / units.s ** 2)
        code.stop()
    rel = np.linalg.norm(
        fields["octgrav"] - fields["fi"], axis=1
    ) / np.linalg.norm(fields["fi"], axis=1)
    print(
        "Octgrav vs Fi field agreement: median rel. diff = "
        f"{np.median(rel):.2e} (tree opening angles differ)"
    )

    # -- performance difference (modeled on the paper's desktop) -------------
    workload = IterationWorkload(n_stars=1000, n_gas=10000)
    for with_gpu, label in ((False, "Fi + PhiGRAPE(cpu)"),
                            (True, "Octgrav + PhiGRAPE(gpu)")):
        jungle = make_desktop_jungle(with_gpu=with_gpu)
        desktop = jungle.host("desktop")
        placement = Placement(coupler_host=desktop)
        for role in ("coupling", "gravity", "hydro", "se"):
            placement.assign(role, desktop, channel="direct")
        t = CostModel(jungle).iteration_time(workload, placement)
        print(f"desktop with {label:<26}: "
              f"{t['total_s']:7.1f} s/iteration (modeled)")


if __name__ == "__main__":
    main()
