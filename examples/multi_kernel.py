#!/usr/bin/env python3
"""Multi-kernel, multi-model: identical physics, concurrent models.

Paper Sec. 4: "multiple implementations of a model may exist that
generate the same result, but are suitable for different resources
(e.g. GPUs vs CPUs)" — and Sec. 5: the jungle win comes from "multiple
simulations ... executed concurrently".

This example demonstrates both, on the async-first API:

1. PhiGRAPE(cpu) and PhiGRAPE(gpu) produce bit-identical trajectories;
2. every remote call has an ``.async_`` form returning a unit-aware
   future — ``evolve_model.async_(t)`` advances the worker in the
   background and converts units / refreshes the mirror at join time;
3. ``EvolveGroup`` overlaps ``evolve_model`` across codes (gravity +
   stellar evolution + hydro advance concurrently, joined at the
   coupling point), and the calibrated cost model shows what that
   overlap is worth on the paper's hardware.

Run:  python examples/multi_kernel.py
"""

import time

import numpy as np

from repro.codes import SSE, EvolveGroup, Gadget, PhiGRAPE
from repro.ic import new_plummer_gas_model, new_plummer_model
from repro.jungle import (
    CostModel,
    IterationWorkload,
    Placement,
    make_desktop_jungle,
)
from repro.units import nbody_system, units


def kernel_equivalence(converter, stars):
    """Same model, different kernels, identical physics."""
    results = {}
    for kernel in ("cpu", "gpu"):
        gravity = PhiGRAPE(converter, kernel=kernel, eta=0.05)
        gravity.add_particles(stars)
        gravity.evolve_model(0.5 | units.Myr)
        results[kernel] = gravity.particles.position.value_in(
            units.parsec
        )
        gravity.stop()
    identical = np.array_equal(results["cpu"], results["gpu"])
    print(f"PhiGRAPE cpu vs gpu kernels bit-identical: {identical}")


def async_futures(converter, stars):
    """The async form: futures with units, joined when needed."""
    gravity = PhiGRAPE(
        converter, channel_type="sockets", eta=0.05
    )
    gravity.add_particles(stars)

    # the worker advances in the background; the script keeps going
    future = gravity.evolve_model.async_(0.2 | units.Myr)
    print(f"evolve launched: {future!r}")

    # energies are unit-aware futures too — pipelined on the channel
    # behind the in-flight evolve, joined here in script units
    ke = gravity.get_kinetic_energy.async_()
    print(
        "kinetic energy (after evolve): "
        f"{ke.value_in(units.J):.4e} J"
    )
    future.result()    # join: mirror refreshed, units converted
    print(
        "model time at join: "
        f"{gravity.model_time.value_in(units.Myr):.2f} Myr"
    )
    gravity.stop()


def concurrent_models(converter, stars):
    """EvolveGroup: gravity + SSE + hydro advance simultaneously.

    Every worker uses ``channel_type="subprocess"`` — its own OS
    process, its own GIL — so the overlap covers real compute (numpy
    kernels), not just sleep/IO as with in-process worker threads.
    """
    gas = new_plummer_gas_model(256, convert_nbody=converter, rng=8)
    gravity = PhiGRAPE(
        converter, channel_type="subprocess", eta=0.05
    )
    se = SSE(channel_type="subprocess")
    hydro = Gadget(
        converter, channel_type="subprocess", n_neighbours=12
    )
    gravity.add_particles(stars)
    se.add_particles(stars)
    hydro.add_particles(gas)

    # serialized: one model at a time (the pre-async coupler)
    t0 = time.perf_counter()
    for code in (gravity, se, hydro):
        code.evolve_model(0.1 | units.Myr)
    serial_s = time.perf_counter() - t0

    # overlapped: all three advance concurrently, joined at the
    # coupling point (each worker runs in its own process)
    group = EvolveGroup([gravity, se, hydro])
    t0 = time.perf_counter()
    group.evolve(0.2 | units.Myr)
    overlap_s = time.perf_counter() - t0

    print(
        f"three models, serialized: {serial_s * 1e3:7.1f} ms; "
        f"overlapped via EvolveGroup: {overlap_s * 1e3:7.1f} ms\n"
        "  (subprocess workers own their GIL, so compute-heavy models "
        "overlap for real;\n   the GIL-bound threads-vs-subprocess "
        "comparison lives in benchmarks/bench_async_overlap.py)"
    )
    group.stop()


def modeled_performance():
    """What kernels and overlap are worth on the paper's hardware."""
    workload = IterationWorkload(n_stars=1000, n_gas=10000)
    for with_gpu, label in ((False, "Fi + PhiGRAPE(cpu)"),
                            (True, "Octgrav + PhiGRAPE(gpu)")):
        jungle = make_desktop_jungle(with_gpu=with_gpu)
        desktop = jungle.host("desktop")
        placement = Placement(coupler_host=desktop)
        for role in ("coupling", "gravity", "hydro", "se"):
            placement.assign(role, desktop, channel="direct")
        model = CostModel(jungle)
        for overlap in (False, True):
            t = model.iteration_time(
                workload, placement, overlap_drift=overlap
            )
            tag = "async overlap" if overlap else "serialized   "
            print(
                f"desktop with {label:<26} [{tag}]: "
                f"{t['total_s']:7.1f} s/iteration (modeled)"
            )


def main():
    converter = nbody_system.nbody_to_si(
        500.0 | units.MSun, 1.0 | units.parsec
    )
    stars = new_plummer_model(64, convert_nbody=converter, rng=7)

    kernel_equivalence(converter, stars)
    async_futures(converter, stars)
    concurrent_models(converter, stars)
    modeled_performance()


if __name__ == "__main__":
    main()
