#!/usr/bin/env python3
"""The embedded star cluster simulation — the paper's workload (Fig. 6).

Couples the four models of the paper through the BRIDGE scheme of
Fig. 7:

* PhiGRAPE  — gravity between the stars;
* SSE       — stellar evolution (mass loss, supernovae);
* Gadget    — SPH gas dynamics;
* Fi        — the coupling model computing star<->gas gravity "p-kicks"
              (swap in Octgrav with coupling_code="octgrav" for the GPU
              variant — identical physics, the multi-kernel idea).

Over ~10 Myr the massive stars evolve, shed winds and explode; the
feedback energy expels the natal gas and the cluster expands — the four
panels of paper Fig. 6 as a stage table + radial profiles.

Run:  python examples/embedded_cluster.py
"""

import numpy as np

from repro.coupling import EmbeddedClusterSimulation
from repro.units import units
from repro.viz import StageTracker, radial_profile, render_profile_ascii


def main():
    sim = EmbeddedClusterSimulation(
        n_stars=24,
        n_gas=256,
        rng=4,
        mass_min=5.0,              # guarantee supernova progenitors
        mass_max=30.0,
        star_mass_fraction=0.3,    # SFE ~ 30%: most mass is gas
        coupling_code="fi",        # CPU coupling model
        bridge_timestep_myr=0.25,
        se_interval=1,
        sn_efficiency=2e-4,
        wind_speed_kms=30.0,
    )
    tracker = StageTracker()
    tracker.record(sim.diagnostics())

    print("iter  t[Myr]  bound-gas  stage       SNe  r_half(stars)[pc]")
    for iteration in range(40):
        sim.evolve_one_iteration()
        diag = sim.diagnostics()
        tracker.record(diag)
        if (iteration + 1) % 5 == 0:
            print(
                f"{iteration + 1:4d}  {diag['time_myr']:6.2f}  "
                f"{diag['bound_gas_fraction']:9.2f}  "
                f"{diag['stage']:<10}  {diag['n_supernovae']:3d}  "
                f"{diag['star_half_mass_radius_pc']:8.2f}"
            )
            if (iteration + 1) in (5, 40):
                gas = sim.hydro.particles
                edges, rho = radial_profile(
                    gas.position.value_in(units.parsec),
                    gas.mass.value_in(units.MSun),
                    center=np.zeros(3), n_bins=8, r_max=4.0,
                )
                print(render_profile_ascii(
                    edges, rho, label=f"@ {diag['time_myr']:.1f} Myr"
                ))

    print("\nFig. 6 stage table (first occurrence of each stage):")
    for row in tracker.stage_table():
        print(
            f"  {row['stage']:<10} t={row['time_myr']:6.2f} Myr  "
            f"bound={row['bound_gas_fraction']:.2f}  "
            f"gas r_h={row['gas_half_mass_radius_pc']:.2f} pc  "
            f"stars r_h={row['star_half_mass_radius_pc']:.2f} pc"
        )
    print("stages seen (in order):", " -> ".join(tracker.stages_seen))
    print("cluster expanded after gas removal:",
          tracker.cluster_expanded())
    sim.stop()


if __name__ == "__main__":
    main()
