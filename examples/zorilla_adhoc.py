#!/usr/bin/env python3
"""Zorilla: turn loose machines into a cluster, then deploy on it.

Paper Sec. 3: "Zorilla is ideal in cases where no middleware is
available, and can turn any collection of machines into a cluster-like
system in minutes."

This example builds a handful of stand-alone machines with *no* batch
middleware, joins them into a Zorilla overlay (gossip membership),
flood-schedules a worker job over the overlay, and finally submits a
job through PyGAT's zorilla adaptor against the virtual cluster.

Run:  python examples/zorilla_adhoc.py
"""

from repro.ibis.gat import GAT, JobDescription
from repro.ibis.zorilla import ZorillaOverlay
from repro.jungle import FirewallPolicy, Host, Jungle, Site


def main():
    jungle = Jungle()
    # five stand-alone machines in three places, no middleware at all
    for i, (site_name, lat, lon) in enumerate(
        [("office-A", 52.3, 4.8), ("office-A", 52.3, 4.8),
         ("office-B", 51.9, 4.4), ("office-B", 51.9, 4.4),
         ("home", 52.0, 5.1)]
    ):
        if site_name not in jungle.sites:
            jungle.new_site(site_name, "standalone",
                            location=(lat, lon))
        site = jungle.sites[site_name]
        host = Host(f"pc-{i}", cores=4, policy=FirewallPolicy.OPEN)
        site.add_host(host, frontend=(len(site.hosts) == 0))
    jungle.connect("office-A", "office-B", 0.002, 1.0)
    jungle.connect("office-B", "home", 0.008, 0.1)

    # join everything into a Zorilla overlay and let gossip converge
    overlay = ZorillaOverlay(jungle, rng=3)
    for host in list(jungle.all_hosts()):
        overlay.add_node(host)
    overlay.run_gossip()
    jungle.env.run()
    print(f"gossip converged: {overlay.converged()} "
          f"({len(overlay.nodes)} nodes, "
          f"{overlay.total_slots()} slots)")

    # flood-schedule 3 nodes straight through the overlay
    claimed = overlay.flood_schedule(jungle.host("pc-0"), 3)
    print("flood-scheduled on:",
          [node.host.name for node in claimed])
    overlay.release(claimed)

    # ... or use it like any middleware through PyGAT
    cluster = overlay.as_site("adhoc-cluster")
    gat = GAT(jungle, jungle.host("pc-0"))
    job = gat.submit_job(
        JobDescription("worker", node_count=2, duration_s=30.0),
        cluster,
    )
    jungle.env.run()
    print(f"PyGAT job on the ad-hoc cluster: {job.state} "
          f"(adaptor: {job.adaptor_name})")


if __name__ == "__main__":
    main()
