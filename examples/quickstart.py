#!/usr/bin/env python3
"""Quickstart: evolve a small star cluster with one model code.

Demonstrates the core AMUSE workflow the paper builds on: units and the
N-body converter, a Plummer initial model, a gravity worker behind a
channel (here the real-TCP sockets channel), and copying state back to
the script through an attribute channel.

Channel selection matrix — every code takes ``channel_type=...``; the
physics never changes, only where the worker runs and how bytes move:

=============  =============================  =========================
channel_type   worker runs                    pick it when
=============  =============================  =========================
"mpi"/direct   in-process, no serialisation   tests, modeled-time runs
"sockets"      thread + real loopback TCP     default same-process dev
"subprocess"   own OS process (own GIL)       CPU-heavy concurrent
                                              models on one host
"shm"          thread or subprocess; arrays   same host, large arrays
               via shared memory, socket      (zero wire copies,
               for control only               ~2-3x sockets bulk)
"ibis"         daemon-managed pilot, local    multi-resource jungle
               or remote resource; WAN-       runs; remote GPUs;
               profile pilots negotiate       thin-link sites (codec
               per-buffer compression         shrinks transfers)
ibis + relay   same pilots, but the daemon    bulk traffic through a
               only SPLICES frames (zero-     shared daemon (>= 0.9x
               decode relay; capabilities     direct sockets, gated);
               negotiate end to end, cancel   hung remote pilots stay
               forwards, micro-batching       cancellable; same-host
               auto-enables off-host)         shm keeps zero copies
=============  =============================  =========================

For a shared daemon (``python -m repro.distributed.daemon``), don't
pick a channel_type at all — ``connect()`` to it and place pilots
through a :class:`~repro.distributed.Session`: each script gets an
isolated pilot namespace, fair admission, per-session accounting, and
warm-pool spawns (demonstrated at the end of this example).

Run:  python examples/quickstart.py
"""

from repro.codes import PhiGRAPE
from repro.ic import new_plummer_model
from repro.units import nbody_system, units


def main():
    # physical scale of the problem: the converter maps N-body units
    # (G=1) onto SI, and every value crossing the worker is converted
    converter = nbody_system.nbody_to_si(
        1000.0 | units.MSun, 1.0 | units.parsec
    )
    stars = new_plummer_model(128, convert_nbody=converter, rng=42)

    # a gravity worker over a REAL loopback TCP channel; switching to
    # kernel="gpu" or channel_type="ibis" is the paper's one-line change
    gravity = PhiGRAPE(
        converter, channel_type="sockets", kernel="cpu", eta=0.05
    )
    gravity.add_particles(stars)

    e0 = gravity.total_energy
    print(f"initial total energy: {e0.value_in(units.J):.4e} J")

    for myr in (0.5, 1.0, 1.5, 2.0):
        gravity.evolve_model(myr | units.Myr)
        energy = gravity.total_energy
        drift = abs(
            (energy - e0).value_in(units.J) / e0.value_in(units.J)
        )
        print(
            f"t = {myr:4.1f} Myr   E = {energy.value_in(units.J):.4e} J"
            f"   |dE/E| = {drift:.2e}"
        )

    # the same call surface is async-capable: the worker advances in
    # the background and the future joins (converting units and
    # refreshing the mirror) at the next coupling point
    future = gravity.evolve_model.async_(2.5 | units.Myr)
    print(f"async evolve launched: {future!r}")
    future.result()
    print(
        "joined at t = "
        f"{gravity.model_time.value_in(units.Myr):.1f} Myr"
    )

    # channel_type="subprocess" is the same one-line change, but the
    # worker gets its own OS process (own interpreter, own GIL) — the
    # AMUSE process model, where concurrent models overlap real
    # compute, not just sleep/IO
    offproc = PhiGRAPE(
        converter, channel_type="subprocess", kernel="cpu", eta=0.05
    )
    offproc.add_particles(stars)
    offproc.evolve_model(0.5 | units.Myr)
    print(
        f"off-process worker (pid {offproc.channel.pid}) evolved to "
        f"{offproc.model_time.value_in(units.Myr):.1f} Myr"
    )
    offproc.stop()

    # channel_type="shm" keeps the socket as a control plane only:
    # array payloads cross through shared-memory segments (zero wire
    # copies — the bulk path for same-host workers; add
    # channel_options={"worker_mode": "subprocess"} for an off-process
    # worker that attaches the segments by name).  shm_min is lowered
    # here so even this demo's small arrays take the shm path; the
    # production default (64 KiB) keeps latency-bound calls inline.
    shm = PhiGRAPE(
        converter, channel_type="shm", kernel="cpu", eta=0.05,
        channel_options={"shm_min": 256},
    )
    shm.add_particles(stars)
    shm.evolve_model(0.5 | units.Myr)
    stats = shm.channel.transport_stats
    print(
        f"shm worker evolved to "
        f"{shm.model_time.value_in(units.Myr):.1f} Myr "
        f"({stats['shm_buffer_bytes']} array bytes via shared memory, "
        f"{stats['wire_buffer_bytes']} via the socket)"
    )
    shm.stop()

    # -- dependency-aware scheduling + fault tolerance ----------------
    # TaskGraph chains async launches with per-edge joins: each node
    # launches the moment ITS dependencies finish, so a fast code's
    # follow-up work rides the slack of the slowest worker instead of
    # waiting at a group barrier.  FaultPolicy.RESTART makes futures'
    # cancel() and worker respawn into real fault tolerance: here the
    # subprocess worker is SIGKILLed mid-evolve, respawned through its
    # channel factory with parameters and unit-converted state
    # replayed, and the graph resumes to completion.
    import os
    import signal
    import threading
    import time

    from repro.rpc import FaultPolicy, TaskGraph

    survivor = PhiGRAPE(
        converter, channel_type="subprocess", kernel="cpu", eta=0.05
    )
    survivor.add_particles(stars)
    graph = TaskGraph()
    drift = graph.add(
        "drift",
        lambda: survivor.evolve_model.async_(0.5 | units.Myr),
        code=survivor,       # binds the node for RESTART respawns
    )
    graph.add(
        "report",
        lambda: print(
            "  drift joined at "
            f"{survivor.model_time.value_in(units.Myr):.1f} Myr"
        ),
        after=[drift],
    )
    doomed_pid = survivor.channel.pid

    def kill_mid_evolve():
        # wait until the evolve is genuinely in flight (and its call
        # frame on the wire) before striking, so the kill can never
        # land on an idle worker after a fast run
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if survivor._inflight.inflight == "evolve_model":
                time.sleep(0.01)
                os.kill(doomed_pid, signal.SIGKILL)
                return
            time.sleep(0.001)

    threading.Thread(target=kill_mid_evolve, daemon=True).start()
    print(f"SIGKILLing worker pid {doomed_pid} mid-evolve...")
    graph.run(fault_policy=FaultPolicy.RESTART)
    print(
        f"run FINISHED with restarted worker pid "
        f"{survivor.channel.pid} (was {doomed_pid}); "
        f"node restarted {graph['drift'].restarts}x"
    )
    survivor.stop()

    # -- the jungle as a service: daemon CLI + sessions ---------------
    # `python -m repro.distributed.daemon` runs the Ibis gateway as a
    # standalone service.  Scripts attach with connect() and get an
    # isolated Session: a private pilot namespace (other tenants
    # cannot address these workers), fair admission control, and
    # per-session accounting on status().  --warm-pool pre-spawns
    # parked subprocess workers, so the session's first pilot claims
    # one instead of paying the interpreter + numpy spawn cost
    # (warm <= 0.5x cold time-to-first-evolve, gated by
    # benchmarks/bench_sessions.py).
    import re
    import subprocess
    import sys

    from repro.distributed import connect

    src_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in (src_dir, env.get("PYTHONPATH")) if path
    )
    service = subprocess.Popen(
        [sys.executable, "-m", "repro.distributed.daemon",
         "--port", "0", "--warm-pool", "1", "--idle-timeout", "300"],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    banner = service.stdout.readline().strip()
    print(banner)
    address = re.search(r"listening on (\S+)", banner).group(1)

    with connect(address, name="quickstart") as session:
        remote = session.code(
            PhiGRAPE, converter, channel_type="subprocess",
            kernel="cpu", eta=0.05,
        )
        remote.add_particles(stars)
        remote.evolve_model(0.5 | units.Myr)
        info = session.status()["session"]
        acct = info["accounting"]
        print(
            f"session {info['id']} evolved to "
            f"{remote.model_time.value_in(units.Myr):.1f} Myr via the "
            f"daemon service ({acct['warm_hits']} warm-pool hit, "
            f"{acct['calls']} calls, {acct['bytes_out']} bytes out)"
        )
        remote.stop()

    # -- same-host end-to-end shm through the relay data plane --------
    # connect(..., relay=True) makes every pilot of this session a
    # RELAY pilot: the daemon stops decoding frames and just splices
    # them between the two legs (kernel splice, zero userspace
    # copies), while capabilities negotiate END TO END between this
    # script and the pilot's worker loop.  With a same-host shm pilot
    # that composes into the best of both: large arrays travel through
    # the shared-memory arena (never on any socket), the daemon only
    # ever forwards tiny descriptor frames, and a hung pilot can still
    # be cancelled through the splice (AMCX frames forward).  shm_min
    # rides the relay hello, so BOTH ends apply the lowered cutoff —
    # this demo's small particle arrays still travel the arena.
    with connect(address, name="quickstart-relay",
                 relay=True) as session:
        piped = session.code(
            PhiGRAPE, converter, channel_type="shm",
            kernel="cpu", eta=0.05,
            channel_options={"shm_min": 256},
        )
        piped.add_particles(stars)
        piped.evolve_model(0.5 | units.Myr)
        stats = piped.channel.transport_stats
        acct = session.status()["session"]["accounting"]
        print(
            f"relayed shm pilot evolved to "
            f"{piped.model_time.value_in(units.Myr):.1f} Myr "
            f"(relayed={piped.channel.relayed}, "
            f"{stats['shm_buffer_bytes']} array bytes via shared "
            f"memory, {acct['relay_frames']} frames spliced by the "
            f"daemon without decoding)"
        )
        piped.stop()
    service.send_signal(signal.SIGINT)   # daemon drains and exits 0
    service.wait(timeout=30)

    # -- campaigns: declarative sweeps with content-addressed reuse ---
    # repro.ensemble turns "run this model N times over seeds and
    # parameters" into a CampaignSpec; the CampaignRunner fans members
    # across sessions (bounded by admission control), crash-isolates
    # each one (a dead worker costs at most its own member), caches
    # every result under the member-spec hash, and streams percentile
    # bands instead of hoarding per-run state.  The same campaign is
    # scriptable as `python -m repro.ensemble --spec file.json
    # --resume` — resubmission after an interrupt replays only the
    # members without a cache entry.
    import tempfile

    from repro.ensemble import CampaignRunner, CampaignSpec, ResultCache

    campaign = CampaignSpec.sweep(
        "quickstart-drift", "drift", seeds=range(6),
        parameters={"drift_scale": [1e-7, 1e-6]},
        base={"cost_s": 0.0, "n_steps": 3},
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        report = CampaignRunner(
            campaign, cache=cache, max_inflight=4,
            on_member_done=lambda m, r: print(
                f"  member {m.label()} {r.status} "
                f"({r.wall_s * 1e3:.1f} ms)"
            ),
        ).run(timeout=300)
        print(report.summary_line())
        print(report.table())
        resubmit = CampaignRunner(campaign, cache=cache).run(timeout=300)
        print(f"resubmission: {resubmit.summary_line()}")

    # -- repro.analysis: the concurrency & protocol invariant checker -
    # The runtime above leans on locks, reader threads, wire MAGIC
    # constants and shared-memory segments — all easy to get subtly
    # wrong.  `python -m repro.analysis src/repro` audits the tree
    # statically (lock-order cycles, blocking calls on reader threads,
    # orphaned frame constants, leaked shm/subprocess handles) and is
    # gated in CI against the justified `analysis-baseline.json`; the
    # lockwatch companion (REPRO_LOCKWATCH=1) cross-checks the lock
    # orders real test threads take against that static graph.  The
    # same rules run programmatically — here against a seeded
    # lock-order inversion:
    import pathlib

    from repro.analysis import analyze

    with tempfile.TemporaryDirectory() as src_dir:
        demo = pathlib.Path(src_dir) / "inverted.py"
        demo.write_text(
            "import threading\n"
            "class Transfer:\n"
            "    def __init__(self):\n"
            "        self._debit = threading.Lock()\n"
            "        self._credit = threading.Lock()\n"
            "    def forward(self):\n"
            "        with self._debit:\n"
            "            with self._credit:\n"
            "                pass\n"
            "    def backward(self):\n"
            "        with self._credit:\n"
            "            with self._debit:\n"
            "                pass\n"
        )
        for finding in analyze(str(demo), rules=["lock-order"]):
            print(f"  analysis: {finding.key}")

    # pull the final state back into the script-side set
    channel = gravity.particles.new_channel_to(stars)
    channel.copy_attributes(["position", "velocity"])
    r_half = stars.lagrangian_radii(fractions=(0.5,))[0]
    print(f"half-mass radius: {r_half.value_in(units.parsec):.3f} pc")
    gravity.stop()


if __name__ == "__main__":
    main()
