"""Topology builder tests (the paper's machine configurations)."""

import pytest

from repro.jungle import (
    FirewallPolicy,
    make_desktop_jungle,
    make_lab_jungle,
    make_sc11_jungle,
)


class TestDesktop:
    def test_no_gpu_by_default(self):
        j = make_desktop_jungle()
        assert not j.host("desktop").has_gpu

    def test_geforce_when_requested(self):
        j = make_desktop_jungle(with_gpu=True)
        assert j.host("desktop").gpu.name == "GeForce 9600GT"

    def test_quad_core(self):
        j = make_desktop_jungle()
        assert j.host("desktop").cores == 4

    def test_local_middleware(self):
        j = make_desktop_jungle()
        assert "local" in j.sites["VU desktop"].middlewares


class TestLabJungle:
    """Fig. 12: the four-site Dutch lab setup."""

    @pytest.fixture(scope="class")
    def jungle(self):
        return make_lab_jungle()

    def test_sites_of_figure_12(self, jungle):
        assert set(jungle.sites) == {
            "VU desktop", "DAS-4 (VU)", "DAS-4 (UvA)",
            "DAS-4 (TUD)", "LGM (LU)",
        }

    def test_vu_cluster_runs_gadget_8_nodes(self, jungle):
        assert len(jungle.sites["DAS-4 (VU)"].compute_hosts) == 8

    def test_uva_has_8_nodes_for_gadget(self, jungle):
        assert len(jungle.sites["DAS-4 (UvA)"].compute_hosts) == 8

    def test_tud_has_2_gpu_nodes_for_octgrav(self, jungle):
        gpus = jungle.sites["DAS-4 (TUD)"].gpu_hosts()
        assert len(gpus) == 2

    def test_lgm_has_tesla(self, jungle):
        gpus = jungle.sites["LGM (LU)"].gpu_hosts()
        assert gpus[0].gpu.name == "Tesla C2050"

    def test_leiden_on_1g_link(self, jungle):
        assert jungle.network.bandwidth(
            "VU desktop", "LGM (LU)") == pytest.approx(1e9)

    def test_starplane_10g(self, jungle):
        # lightpaths between the clusters are 10G; the desktop hangs
        # off a 1GbE drop
        assert jungle.network.bandwidth(
            "DAS-4 (VU)", "DAS-4 (UvA)") == pytest.approx(10e9)
        assert jungle.network.bandwidth(
            "VU desktop", "DAS-4 (VU)") == pytest.approx(1e9)

    def test_compute_nodes_isolated(self, jungle):
        node = jungle.host("DAS-4 (UvA)-node00")
        assert node.policy is FirewallPolicy.ISOLATED

    def test_frontends_open(self, jungle):
        assert jungle.sites["DAS-4 (UvA)"].frontend.policy is \
            FirewallPolicy.OPEN


class TestSC11Jungle:
    """Fig. 9: the transatlantic demonstration setup."""

    @pytest.fixture(scope="class")
    def jungle(self):
        return make_sc11_jungle()

    def test_all_sites_present(self, jungle):
        assert set(jungle.sites) == {
            "Seattle (SC11)", "DAS-4 (VU)", "DAS-4 (UvA)",
            "DAS-4 (TUD)", "LGM (LU)", "SARA",
        }

    def test_transatlantic_latency(self, jungle):
        # one-way Seattle <-> Amsterdam over the 1G lightpath
        latency = jungle.network.latency(
            "Seattle (SC11)", "DAS-4 (VU)"
        )
        assert 0.05 < latency < 0.1

    def test_laptop_behind_firewall(self, jungle):
        assert jungle.host("laptop").policy is \
            FirewallPolicy.FIREWALLED

    def test_vu_cluster_8_nodes(self, jungle):
        assert len(jungle.sites["DAS-4 (VU)"].compute_hosts) == 8

    def test_sara_render_capacity(self, jungle):
        # 16 render + 8 visualization nodes
        assert len(jungle.sites["SARA"].compute_hosts) == 24

    def test_every_dutch_site_routed_from_seattle(self, jungle):
        for name in ("DAS-4 (VU)", "DAS-4 (UvA)", "DAS-4 (TUD)",
                     "LGM (LU)", "SARA"):
            assert jungle.network.has_route("Seattle (SC11)", name)

    def test_middleware_diversity(self, jungle):
        kinds = set()
        for site in jungle.sites.values():
            kinds |= set(site.middlewares)
        assert {"local", "ssh", "sge", "pbs"} <= kinds
