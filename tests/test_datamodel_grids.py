"""Lat-lon grid and conservative regridding tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datamodel import LatLonGrid, regrid_area_weighted
from repro.units import units


class TestGridGeometry:
    def test_shape(self):
        grid = LatLonGrid(8, 16)
        assert grid.shape == (8, 16)

    def test_rejects_tiny_grids(self):
        with pytest.raises(ValueError):
            LatLonGrid(1, 8)

    def test_total_area_is_sphere(self):
        grid = LatLonGrid(24, 48)
        sphere = 4.0 * np.pi * grid.radius_m ** 2
        assert grid.total_area_m2 == pytest.approx(sphere, rel=1e-12)

    def test_cell_areas_largest_at_equator(self):
        grid = LatLonGrid(16, 32)
        areas = grid.cell_area_m2[:, 0]
        assert areas[len(areas) // 2] > areas[0]

    def test_lat_lon_centers(self):
        grid = LatLonGrid(4, 4)
        assert grid.lat.tolist() == [-67.5, -22.5, 22.5, 67.5]
        assert grid.lon.tolist() == [45.0, 135.0, 225.0, 315.0]


class TestFields:
    def test_new_field_and_access(self):
        grid = LatLonGrid(4, 8)
        grid.new_field("t", fill=273.0)
        assert grid.field_array("t").mean() == 273.0

    def test_set_field_with_units(self):
        grid = LatLonGrid(4, 8)
        grid.set_field("flux", np.ones(grid.shape) | units.W_per_m2)
        q = grid.field("flux")
        assert q.value_in(units.W_per_m2).sum() == 32.0

    def test_broadcast_scalar_profile(self):
        grid = LatLonGrid(4, 8)
        grid.set_field("zonal", np.arange(4.0)[:, None])
        assert grid.field_array("zonal")[3, 5] == 3.0

    def test_area_mean_constant(self):
        grid = LatLonGrid(12, 24)
        grid.new_field("x", fill=5.0)
        assert grid.area_mean("x") == pytest.approx(5.0)

    def test_zonal_mean(self):
        grid = LatLonGrid(4, 8)
        grid.new_field("v")
        grid.field_array("v")[2, :] = 2.0
        assert grid.zonal_mean("v")[2] == 2.0


class TestRegridding:
    def test_identity_resolution(self):
        src = LatLonGrid(8, 16)
        dst = LatLonGrid(8, 16)
        values = np.random.default_rng(0).normal(size=src.shape)
        out = regrid_area_weighted(src, values, dst)
        assert np.allclose(out, values)

    def test_conserves_area_integral_coarsening(self):
        src = LatLonGrid(24, 48)
        dst = LatLonGrid(8, 16)
        values = np.random.default_rng(1).normal(
            loc=280.0, scale=10.0, size=src.shape
        )
        out = regrid_area_weighted(src, values, dst)
        src_integral = (values * src.cell_area_m2).sum()
        dst_integral = (out * dst.cell_area_m2).sum()
        assert dst_integral == pytest.approx(src_integral, rel=1e-10)

    def test_conserves_area_integral_refining(self):
        src = LatLonGrid(6, 12)
        dst = LatLonGrid(30, 60)
        values = np.random.default_rng(2).uniform(size=src.shape)
        out = regrid_area_weighted(src, values, dst)
        assert (out * dst.cell_area_m2).sum() == pytest.approx(
            (values * src.cell_area_m2).sum(), rel=1e-10
        )

    def test_constant_field_stays_constant(self):
        src = LatLonGrid(10, 20)
        dst = LatLonGrid(17, 23)
        out = regrid_area_weighted(src, np.full(src.shape, 3.5), dst)
        assert np.allclose(out, 3.5)

    def test_shape_mismatch_raises(self):
        src = LatLonGrid(4, 8)
        with pytest.raises(ValueError):
            regrid_area_weighted(src, np.ones((5, 8)), src)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=4, max_value=24),
        st.integers(min_value=4, max_value=24),
    )
    def test_conservation_property(self, nlat_s, nlat_d, nlon_s, nlon_d):
        src = LatLonGrid(nlat_s, nlon_s)
        dst = LatLonGrid(nlat_d, nlon_d)
        rng = np.random.default_rng(nlat_s * 100 + nlat_d)
        values = rng.normal(size=src.shape)
        out = regrid_area_weighted(src, values, dst)
        assert (out * dst.cell_area_m2).sum() == pytest.approx(
            (values * src.cell_area_m2).sum(), rel=1e-8, abs=1e-6
        )
