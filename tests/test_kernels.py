"""Gravity kernel tests: direct summation and the Barnes–Hut octree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.kernels import (
    Octree,
    direct_acc_jerk,
    direct_acceleration,
    direct_potential,
    total_energy,
)


@pytest.fixture
def system():
    rng = np.random.default_rng(3)
    n = 300
    return (
        rng.normal(size=(n, 3)),
        rng.normal(size=(n, 3)) * 0.1,
        rng.uniform(0.5, 1.0, n) / n,
    )


class TestDirect:
    def test_two_body_newton(self):
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        mass = np.array([1.0, 2.0])
        acc = direct_acceleration(pos, mass)
        assert acc[0, 0] == pytest.approx(2.0)   # G m2 / r^2
        assert acc[1, 0] == pytest.approx(-1.0)

    def test_momentum_conservation(self, system):
        pos, vel, mass = system
        acc = direct_acceleration(pos, mass, eps2=1e-4)
        total_force = (mass[:, None] * acc).sum(axis=0)
        assert np.allclose(total_force, 0.0, atol=1e-10)

    def test_softening_bounds_force(self):
        pos = np.array([[0.0, 0, 0], [1e-8, 0, 0]])
        mass = np.array([1.0, 1.0])
        acc = direct_acceleration(pos, mass, eps2=1e-2)
        assert np.linalg.norm(acc[0]) < 1.0

    def test_external_targets(self, system):
        pos, vel, mass = system
        targets = np.array([[5.0, 0, 0], [0, 5.0, 0]])
        acc = direct_acceleration(pos, mass, targets=targets)
        # far-field ~ monopole: |a| ~ M/r^2
        m_total = mass.sum()
        assert np.linalg.norm(acc[0]) == pytest.approx(
            m_total / 25.0, rel=0.1
        )

    def test_blocking_independence(self, system):
        pos, vel, mass = system
        a1 = direct_acceleration(pos, mass, eps2=1e-4, block=7)
        a2 = direct_acceleration(pos, mass, eps2=1e-4, block=4096)
        assert np.allclose(a1, a2)

    def test_g_scaling(self, system):
        pos, vel, mass = system
        a1 = direct_acceleration(pos, mass, eps2=1e-4, G=1.0)
        a2 = direct_acceleration(pos, mass, eps2=1e-4, G=2.0)
        assert np.allclose(2.0 * a1, a2)

    def test_jerk_matches_finite_difference(self, system):
        pos, vel, mass = system
        acc, jerk = direct_acc_jerk(pos, vel, mass, eps2=1e-4)
        dt = 1e-7
        acc2 = direct_acceleration(pos + vel * dt, mass, eps2=1e-4)
        fd = (acc2 - acc) / dt
        rel = np.linalg.norm(fd - jerk, axis=1) / np.linalg.norm(
            jerk, axis=1
        )
        assert np.median(rel) < 1e-4

    def test_acc_jerk_acc_equals_direct(self, system):
        pos, vel, mass = system
        acc, _ = direct_acc_jerk(pos, vel, mass, eps2=1e-4)
        assert np.allclose(
            acc, direct_acceleration(pos, mass, eps2=1e-4)
        )

    def test_potential_pairwise(self):
        pos = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        mass = np.array([1.0, 3.0])
        phi = direct_potential(pos, mass)
        assert phi[0] == pytest.approx(-1.5)
        assert phi[1] == pytest.approx(-0.5)

    def test_potential_excludes_self_with_softening(self):
        pos = np.zeros((1, 3))
        mass = np.array([1.0])
        phi = direct_potential(pos, mass, eps2=1e-4)
        assert phi[0] == 0.0

    def test_total_energy_virial_plummer(self):
        from repro.ic import new_plummer_model
        p = new_plummer_model(200, rng=0)
        e = total_energy(
            p.position.number, p.velocity.number, p.mass.number
        )
        assert e == pytest.approx(-0.25, rel=0.02)


class TestOctree:
    def test_accuracy_vs_direct(self, system):
        pos, vel, mass = system
        tree = Octree(pos, mass)
        a_tree = tree.accelerations(theta=0.5, eps2=1e-4)
        a_dir = direct_acceleration(pos, mass, eps2=1e-4)
        rel = np.linalg.norm(a_tree - a_dir, axis=1) / np.linalg.norm(
            a_dir, axis=1
        )
        assert np.median(rel) < 5e-3
        assert rel.max() < 5e-2

    def test_theta_zero_is_exact(self, system):
        pos, vel, mass = system
        tree = Octree(pos, mass, leaf_size=1)
        a_tree = tree.accelerations(theta=1e-9, eps2=1e-4)
        a_dir = direct_acceleration(pos, mass, eps2=1e-4)
        assert np.allclose(a_tree, a_dir, rtol=1e-8, atol=1e-10)

    def test_potential_accuracy(self, system):
        pos, vel, mass = system
        tree = Octree(pos, mass)
        phi_t = tree.potentials(theta=0.5, eps2=1e-4)
        phi_d = direct_potential(pos, mass, eps2=1e-4)
        assert np.median(np.abs((phi_t - phi_d) / phi_d)) < 2e-3

    def test_accuracy_improves_with_smaller_theta(self, system):
        pos, vel, mass = system
        tree = Octree(pos, mass)
        a_dir = direct_acceleration(pos, mass, eps2=1e-4)

        def err(theta):
            a = tree.accelerations(theta=theta, eps2=1e-4)
            return np.median(
                np.linalg.norm(a - a_dir, axis=1)
                / np.linalg.norm(a_dir, axis=1)
            )

        assert err(0.3) <= err(0.9)

    def test_empty_tree(self):
        tree = Octree(np.empty((0, 3)), np.empty(0))
        assert tree.accelerations(
            targets=np.zeros((2, 3))).shape == (2, 3)

    def test_single_particle(self):
        tree = Octree(np.zeros((1, 3)), np.array([2.0]))
        acc = tree.accelerations(targets=np.array([[1.0, 0, 0]]))
        assert acc[0, 0] == pytest.approx(-2.0)

    def test_coincident_particles_no_recursion_error(self):
        pos = np.zeros((100, 3))
        mass = np.ones(100)
        tree = Octree(pos, mass, leaf_size=4)
        acc = tree.accelerations(
            targets=np.array([[1.0, 0, 0]]), theta=0.5
        )
        assert acc[0, 0] == pytest.approx(-100.0, rel=1e-6)

    def test_mass_conservation_in_nodes(self, system):
        pos, vel, mass = system
        tree = Octree(pos, mass)
        assert tree.nodes[0].mass == pytest.approx(mass.sum())

    def test_com_of_root(self, system):
        pos, vel, mass = system
        tree = Octree(pos, mass)
        com = (mass[:, None] * pos).sum(axis=0) / mass.sum()
        assert np.allclose(tree.nodes[0].com, com)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Octree(np.zeros((5, 2)), np.ones(5))

    def test_external_targets(self, system):
        pos, vel, mass = system
        tree = Octree(pos, mass)
        targets = np.array([[10.0, 0, 0]])
        acc = tree.accelerations(targets=targets, theta=0.5)
        assert acc[0, 0] == pytest.approx(-mass.sum() / 100.0, rel=0.05)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=200))
    def test_momentum_conservation_property(self, n):
        rng = np.random.default_rng(n)
        pos = rng.normal(size=(n, 3))
        mass = rng.uniform(0.1, 1.0, n)
        tree = Octree(pos, mass)
        # theta=0 exact -> forces antisymmetric -> total momentum 0
        acc = tree.accelerations(theta=1e-9, eps2=1e-3)
        assert np.allclose(
            (mass[:, None] * acc).sum(axis=0), 0.0, atol=1e-8
        )
