"""Tree gravity codes (Octgrav / Fi) tests."""

import numpy as np
import pytest

from repro.codes.kernels import direct_acceleration
from repro.codes.treecode import FiInterface, OctgravInterface
from repro.ic import new_plummer_model


def load(interface, n=64, rng=0):
    p = new_plummer_model(n, rng=rng)
    pos, vel, mass = p.position.number, p.velocity.number, p.mass.number
    return interface.new_particle(
        mass, pos[:, 0], pos[:, 1], pos[:, 2],
        vel[:, 0], vel[:, 1], vel[:, 2],
    ), pos, mass


class TestTreeCodes:
    def test_devices(self):
        assert OctgravInterface.KERNEL_DEVICE == "gpu"
        assert FiInterface.KERNEL_DEVICE == "cpu"

    def test_default_opening_angles_differ(self):
        assert OctgravInterface().theta > FiInterface().theta

    def test_field_matches_direct(self):
        oct_ = OctgravInterface(eps2=1e-3, theta=0.4)
        _, pos, mass = load(oct_, 200, rng=3)
        targets = np.array([[2.0, 0, 0], [0, 3.0, 0]])
        acc = oct_.get_gravity_at_point(1e-3, targets)
        ref = direct_acceleration(pos, mass, 1e-3, targets)
        rel = np.linalg.norm(acc - ref, axis=1) / np.linalg.norm(
            ref, axis=1
        )
        assert rel.max() < 0.02

    def test_energy_conservation_leapfrog(self):
        fi = FiInterface(eps2=1e-3, timestep=1.0 / 128.0)
        load(fi, 64, rng=4)
        e0 = fi.get_total_energy()
        fi.ensure_state("RUN")
        fi.evolve_model(0.25)
        e1 = fi.get_total_energy()
        assert abs((e1 - e0) / e0) < 5e-3

    def test_load_field_particles(self):
        oct_ = OctgravInterface()
        oct_.load_field_particles(
            np.array([1.0]), np.array([[0.0, 0.0, 0.0]])
        )
        assert oct_.get_number_of_particles() == 1
        acc = oct_.get_gravity_at_point(0.0, np.array([[2.0, 0, 0]]))
        # the code's own eps2 (1e-4) still softens slightly
        assert acc[0, 0] == pytest.approx(-0.25, rel=1e-4)

    def test_load_field_particles_replaces(self):
        fi = FiInterface()
        load(fi, 10)
        fi.load_field_particles(np.ones(3), np.zeros((3, 3)))
        assert fi.get_number_of_particles() == 3

    def test_evolve_respects_end_time(self):
        fi = FiInterface(timestep=1.0 / 32.0)
        load(fi, 16, rng=5)
        fi.ensure_state("RUN")
        fi.evolve_model(0.1)
        assert fi.get_model_time() == pytest.approx(0.1, abs=1e-9)

    def test_tree_rebuilt_after_position_edit(self):
        fi = FiInterface()
        ids, pos, mass = load(fi, 16, rng=6)
        before = fi.get_gravity_at_point(
            1e-3, np.array([[5.0, 0, 0]])
        )[0, 0]
        fi.set_position(ids, pos + np.array([2.0, 0.0, 0.0]))
        after = fi.get_gravity_at_point(
            1e-3, np.array([[5.0, 0, 0]])
        )[0, 0]
        assert after != before

    def test_mass_update_refreshes_field(self):
        fi = FiInterface()
        ids, pos, mass = load(fi, 16, rng=7)
        g1 = fi.get_gravity_at_point(1e-3, np.array([[5.0, 0, 0]]))
        fi.set_mass(ids, mass * 2.0)
        g2 = fi.get_gravity_at_point(1e-3, np.array([[5.0, 0, 0]]))
        assert g2[0, 0] == pytest.approx(2.0 * g1[0, 0], rel=1e-9)

    def test_octgrav_and_fi_agree(self):
        """Multi-kernel claim: same model, interchangeable kernels."""
        results = {}
        for cls in (OctgravInterface, FiInterface):
            code = cls(eps2=1e-3, theta=0.5)
            load(code, 128, rng=8)
            results[cls.__name__] = code.get_gravity_at_point(
                1e-3, np.array([[1.0, 1.0, 0.0]])
            )
        assert np.allclose(
            results["OctgravInterface"], results["FiInterface"],
            rtol=1e-9,
        )
