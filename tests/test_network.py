"""Network model tests: firewalls, latency, traffic accounting."""

import pytest

from repro.jungle import FirewallPolicy, Host, Jungle, Site
from repro.jungle.network import (
    LAN_LATENCY_S,
    TrafficRecorder,
)


@pytest.fixture
def jungle():
    j = Jungle()
    for name in ("A", "B", "C"):
        j.new_site(name, "cluster")
    j.connect("A", "B", 0.010, 1.0, name="link-ab")
    j.connect("B", "C", 0.020, 10.0, name="link-bc")
    return j


def host(site, policy):
    h = Host(f"h-{site}-{policy.value}", policy=policy)
    h.site = site
    return h


class TestConnectivityPolicies:
    def test_open_accepts(self, jungle):
        src = host("A", FirewallPolicy.OPEN)
        dst = host("B", FirewallPolicy.OPEN)
        assert jungle.network.can_accept(src, dst)

    def test_firewalled_refuses_inbound(self, jungle):
        src = host("A", FirewallPolicy.OPEN)
        dst = host("B", FirewallPolicy.FIREWALLED)
        assert not jungle.network.can_accept(src, dst)

    def test_firewalled_can_originate(self, jungle):
        src = host("A", FirewallPolicy.FIREWALLED)
        dst = host("B", FirewallPolicy.OPEN)
        assert jungle.network.can_accept(src, dst)
        assert jungle.network.can_originate(src, "B")

    def test_nat_refuses_inbound(self, jungle):
        src = host("A", FirewallPolicy.OPEN)
        dst = host("B", FirewallPolicy.NAT)
        assert not jungle.network.can_accept(src, dst)

    def test_isolated_no_offsite_either_way(self, jungle):
        iso = host("A", FirewallPolicy.ISOLATED)
        remote = host("B", FirewallPolicy.OPEN)
        assert not jungle.network.can_accept(iso, remote)
        assert not jungle.network.can_accept(remote, iso)
        assert not jungle.network.can_originate(iso, "B")

    def test_same_site_always_connects(self, jungle):
        a = host("A", FirewallPolicy.ISOLATED)
        b = host("A", FirewallPolicy.FIREWALLED)
        assert jungle.network.can_accept(a, b)
        assert jungle.network.can_accept(b, a)

    def test_unconnected_site_unreachable(self, jungle):
        jungle.new_site("island", "standalone")
        src = host("A", FirewallPolicy.OPEN)
        dst = host("island", FirewallPolicy.OPEN)
        assert not jungle.network.can_accept(src, dst)


class TestTiming:
    def test_direct_link_latency(self, jungle):
        assert jungle.network.latency("A", "B") == pytest.approx(0.010)

    def test_multihop_latency_adds(self, jungle):
        assert jungle.network.latency("A", "C") == pytest.approx(0.030)

    def test_intra_site_latency(self, jungle):
        assert jungle.network.latency("A", "A") == LAN_LATENCY_S

    def test_bottleneck_bandwidth(self, jungle):
        assert jungle.network.bandwidth("A", "C") == pytest.approx(1e9)

    def test_transfer_time_formula(self, jungle):
        t = jungle.network.transfer_time("A", "B", 1_000_000)
        assert t == pytest.approx(0.010 + 8e6 / 1e9)

    def test_transfer_records_traffic(self, jungle):
        src = host("A", FirewallPolicy.OPEN)
        dst = host("B", FirewallPolicy.OPEN)
        event = jungle.network.transfer(
            jungle.env, src, dst, 5000, protocol="ipl"
        )
        assert jungle.network.traffic.matrix("ipl")[("A", "B")] == 5000
        jungle.env.run()
        assert event.triggered

    def test_link_names(self, jungle):
        assert jungle.network.link_names() == ["link-ab", "link-bc"]


class TestTrafficRecorder:
    def test_accumulates_by_protocol(self):
        rec = TrafficRecorder()
        rec.record("A", "B", 100, "ipl")
        rec.record("A", "B", 50, "ipl")
        rec.record("A", "B", 10, "mpi")
        assert rec.matrix("ipl")[("A", "B")] == 150
        assert rec.matrix("mpi")[("A", "B")] == 10
        assert rec.matrix()[("A", "B")] == 160
        assert rec.total_bytes("ipl") == 150

    def test_message_counts(self):
        rec = TrafficRecorder()
        rec.record("A", "B", 100, "ipl")
        rec.record("A", "B", 100, "ipl")
        assert rec.messages[("A", "B", "ipl")] == 2

    def test_load_accounting(self):
        rec = TrafficRecorder()
        rec.record_busy("host1", 30.0, "cpu")
        rec.record_busy("host1", 30.0, "cpu")
        assert rec.load("host1", 100.0, "cpu") == pytest.approx(0.6)
        assert rec.load("host1", 10.0, "cpu") == 1.0   # clamped
        assert rec.load("other", 10.0, "cpu") == 0.0

    def test_zero_elapsed(self):
        rec = TrafficRecorder()
        assert rec.load("h", 0.0) == 0.0


class TestJungleContainer:
    def test_host_lookup(self, jungle):
        site = jungle.sites["A"]
        h = Host("node-1")
        site.add_host(h)
        assert jungle.host("node-1") is h
        with pytest.raises(KeyError):
            jungle.host("nope")

    def test_site_kind_validation(self):
        with pytest.raises(ValueError):
            Site("x", "spaceship")

    def test_frontend_defaults_to_first_host(self):
        site = Site("s", "cluster")
        first = site.add_host(Host("a"))
        site.add_host(Host("b"))
        assert site.frontend is first
