"""Daemon zero-decode relay data plane tests.

Covers the splice primitive (:func:`repro.rpc.protocol.relay_frame`),
the ``attach_worker`` flow (end-to-end capability negotiation through
the daemon: compression, shm arenas, AMCX cancellation), the fault
paths (pilot SIGKILLed mid-relay, malformed/oversized spliced frames,
no-capability pilots), FaultPolicy.RESTART of a hung remote pilot, and
the Nagle-style adaptive micro-batching of the StreamChannel send path.
"""

import functools
import os
import signal
import socket
import struct
import threading
import time

import numpy as np
import pytest

import repro.distributed.channel as channel_mod
from repro.codes.testing import (
    ArrayEchoInterface,
    CrashingInterface,
    SleepCode,
    SleepInterface,
)
from repro.distributed import IbisDaemon, connect
from repro.rpc import SocketChannel, new_channel
from repro.rpc.channel import ConnectionLostError
from repro.rpc.protocol import (
    HEADER,
    MAX_FRAME,
    CancelledError,
    ProtocolError,
    RemoteError,
    WireState,
    recv_frame,
    relay_frame,
    send_frame,
    send_frame_v2,
)
from repro.rpc.taskgraph import FaultPolicy, TaskGraph
from repro.units import nbody_system

pytestmark = pytest.mark.network


@pytest.fixture(scope="module")
def daemon():
    d = IbisDaemon()
    d.start()
    yield d
    d.shutdown()


# -- the splice primitive -----------------------------------------------------


class TestRelayFrame:
    def _pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_splices_v2_frame_verbatim(self):
        # 2 MiB payload: larger than the socketpair buffers AND the
        # relay chunk, so sender / splice / receiver must pipeline
        # (and the splice exercises its multi-chunk loop)
        src_w, src_r = self._pair()
        dst_w, dst_r = self._pair()
        try:
            payload = np.arange(1 << 18, dtype=np.float64)
            message = ("result", 7, payload)
            wire = WireState(version=2)
            sent, spliced = {}, {}
            sender = threading.Thread(
                target=lambda: sent.update(
                    n=send_frame_v2(src_w, message, wire)
                )
            )
            relayer = threading.Thread(
                target=lambda: spliced.update(
                    n=relay_frame(src_r, dst_w)
                )
            )
            sender.start()
            relayer.start()
            out = recv_frame(dst_r, WireState(version=2))
            sender.join(timeout=10)
            relayer.join(timeout=10)
            assert spliced["n"] == sent["n"]
            assert out[0] == "result" and out[1] == 7
            assert np.array_equal(out[2], payload)
        finally:
            for s in (src_w, src_r, dst_w, dst_r):
                s.close()

    def test_splices_v1_frame_verbatim(self):
        src_w, src_r = self._pair()
        dst_w, dst_r = self._pair()
        try:
            send_frame(src_w, ("hello", 1, 2))
            relay_frame(src_r, dst_w)
            assert recv_frame(dst_r, WireState()) == ("hello", 1, 2)
        finally:
            for s in (src_w, src_r, dst_w, dst_r):
                s.close()

    def test_clean_eof_between_frames_returns_none(self):
        src_w, src_r = self._pair()
        dst_w, dst_r = self._pair()
        try:
            src_w.close()
            assert relay_frame(src_r, dst_w) is None
        finally:
            for s in (src_r, dst_w, dst_r):
                s.close()

    def test_unknown_magic_raises(self):
        src_w, src_r = self._pair()
        dst_w, dst_r = self._pair()
        try:
            src_w.sendall(b"JUNK" + struct.pack("<I", 4) + b"....")
            with pytest.raises(ProtocolError):
                relay_frame(src_r, dst_w)
        finally:
            for s in (src_w, src_r, dst_w, dst_r):
                s.close()

    def test_oversized_frame_raises_without_allocating(self):
        src_w, src_r = self._pair()
        dst_w, dst_r = self._pair()
        try:
            src_w.sendall(HEADER.pack(b"AMS2", MAX_FRAME + 1))
            with pytest.raises(ProtocolError):
                relay_frame(src_r, dst_w)
        finally:
            for s in (src_w, src_r, dst_w, dst_r):
                s.close()

    def test_truncation_mid_frame_raises(self):
        src_w, src_r = self._pair()
        dst_w, dst_r = self._pair()
        try:
            src_w.sendall(HEADER.pack(b"AMSE", 64) + b"half")
            src_w.close()
            with pytest.raises(ProtocolError):
                relay_frame(src_r, dst_w)
        finally:
            for s in (src_r, dst_w, dst_r):
                s.close()


# -- relay pilots through the daemon ------------------------------------------


class TestRelayDataPlane:
    @pytest.mark.parametrize("mode", ["thread", "subprocess"])
    def test_calls_travel_the_splice(self, daemon, mode):
        with connect(daemon, relay=True) as session:
            ch = session.code(ArrayEchoInterface, channel_type=mode)
            assert ch.relayed
            assert ch.call("scale", 3.0, 4.0) == 12.0
            arr = np.arange(1 << 15, dtype=np.float64)
            assert np.array_equal(ch.call("echo", arr), arr)
            meta = session.status()["session"]["workers"]
            assert meta[ch.worker_id]["relay"] is True
            # the downstream pump accounts a frame just AFTER the
            # client can observe its payload, so poll briefly
            deadline = time.monotonic() + 5.0
            while True:
                acct = session.status()["session"]["accounting"]
                if acct["bytes_out"] > arr.nbytes \
                        or time.monotonic() > deadline:
                    break
                time.sleep(0.01)
            assert acct["relay_frames"] >= 4
            assert acct["bytes_in"] > arr.nbytes
            assert acct["bytes_out"] > arr.nbytes
            ch.stop()

    def test_end_to_end_shm_zero_wire_copies(self, daemon):
        """Same-host coupler -> daemon -> shm pilot: arenas negotiated
        END TO END through the splice, large arrays never hit the
        socket (AMSH descriptors are spliced, buffers live in shm)."""
        with connect(daemon, relay=True) as session:
            ch = session.code(ArrayEchoInterface, channel_type="shm")
            assert ch.relayed
            stats = ch.transport_stats
            assert stats["shm"] is True
            arr = np.arange(1 << 17, dtype=np.float64)
            assert np.array_equal(ch.call("echo", arr), arr)
            stats = ch.transport_stats
            assert stats["shm_buffer_bytes"] >= arr.nbytes
            # the descriptor frames spliced by the daemon stay tiny:
            # the daemon never carried the array bytes
            acct = session.status()["session"]["accounting"]
            assert acct["bytes_in"] < arr.nbytes
            ch.stop()

    def test_shm_min_rides_the_offer_end_to_end(self, daemon):
        """channel_options={"shm_min": N} lowers the shm threshold on
        BOTH ends of the splice: the pilot applies the offered cutoff,
        so arrays far below the default 64 KiB still travel the arena."""
        with connect(daemon, relay=True) as session:
            ch = session.code(ArrayEchoInterface, channel_type="shm",
                              channel_options={"shm_min": 256})
            before = session.status()["session"]["accounting"]
            arr = np.arange(1 << 9, dtype=np.float64)   # 4 KiB
            rounds = 8
            for _ in range(rounds):
                assert np.array_equal(ch.call("echo", arr), arr)
            # client leg: sends went through the arena at the lowered
            # cutoff (send-side counter; replies are the pilot's)
            assert ch.transport_stats["shm_buffer_bytes"] >= \
                rounds * arr.nbytes
            # pilot leg: the REPLIES only stay off the socket if the
            # pilot honoured the offered cutoff too, so the daemon
            # spliced descriptor frames, never the array bytes (poll:
            # the downstream pump accounts just after delivery)
            deadline = time.monotonic() + 5.0
            while True:
                acct = session.status()["session"]["accounting"]
                if acct["relay_frames"] - before["relay_frames"] \
                        >= 2 * rounds or time.monotonic() > deadline:
                    break
                time.sleep(0.01)
            assert acct["bytes_out"] - before["bytes_out"] < \
                rounds * arr.nbytes
            ch.stop()

    def test_relay_negotiates_cancel_unlike_decoded_path(self, daemon):
        with connect(daemon) as session:
            decoded = session.code(ArrayEchoInterface)
            assert decoded.transport_stats["cancel"] is False
            decoded.stop()
        with connect(daemon, relay=True) as session:
            relayed = session.code(ArrayEchoInterface,
                                   channel_type="thread")
            assert relayed.transport_stats["cancel"] is True
            relayed.stop()

    def test_attached_worker_rejects_decoded_dispatch(self, daemon):
        """The daemon dispatcher must refuse calls addressed to a
        relay-attached pilot — its frames belong to the splice."""
        with connect(daemon, relay=True) as session:
            ch = session.code(ArrayEchoInterface, channel_type="thread")
            with pytest.raises(RemoteError) as err:
                session._link._request(
                    ("call", ch.worker_id, "scale", (1.0, 1.0), {},
                     session.id)
                ).result(timeout=10)
            assert "relay" in str(err.value)
            # the splice itself is unaffected
            assert ch.call("scale", 2.0, 2.0) == 4.0
            ch.stop()

    def test_old_daemon_degrades_to_decoded_path(self, daemon,
                                                 monkeypatch):
        """A daemon that never acks the relay capability (pre-relay
        build) keeps the decoded dispatcher path, transparently."""
        original = channel_mod._DaemonLink._hello_caps

        def without_relay(self):
            caps = original(self)
            caps.pop("relay", None)
            return caps

        monkeypatch.setattr(
            channel_mod._DaemonLink, "_hello_caps", without_relay
        )
        with connect(daemon, relay=True) as session:
            ch = session.code(ArrayEchoInterface, channel_type="thread")
            assert not ch.relayed
            assert ch.call("scale", 2.0, 3.0) == 6.0
            ch.stop()

    def test_relay_restart_worker_respawns_through_splice(self, daemon):
        with connect(daemon, relay=True) as session:
            code = session.code(SleepCode, cost_s=0.01,
                                channel_type="subprocess",
                                channel_options={"stop_timeout": 3.0})
            assert code.channel.relayed
            code.evolve_model(2 | nbody_system.time)
            old_worker = code.channel.worker_id
            code.restart_worker()
            assert code.channel.relayed
            assert code.channel.worker_id != old_worker
            # replayed clock, immediately evolvable
            assert code.model_time.value_in(nbody_system.time) == 2.0
            code.evolve_model(3 | nbody_system.time)
            code.stop()


# -- fault paths ---------------------------------------------------------------


class TestRelayFaults:
    def test_pilot_crash_surfaces_exit_code_and_stderr(self, daemon):
        with connect(daemon, relay=True) as session:
            ch = session.code(CrashingInterface,
                              channel_type="subprocess")
            with pytest.raises(ConnectionLostError) as err:
                ch.call("crash")
            assert err.value.returncode == 3
            assert "worker crashed on purpose" in err.value.stderr_tail
            assert "exit code 3" in str(err.value)
            ch.stop()

    def test_pilot_sigkill_mid_relay_surfaces_signal(self, daemon):
        with connect(daemon, relay=True) as session:
            ch = session.code(
                functools.partial(SleepInterface, cost_s=30.0),
                channel_type="subprocess",
                channel_options={"stop_timeout": 2.0},
            )
            meta = session.status()["session"]["workers"]
            pid = meta[ch.worker_id]["pid"]
            fut = ch.async_call("evolve_model", 30.0)
            time.sleep(0.2)
            os.kill(pid, signal.SIGKILL)
            with pytest.raises(ConnectionLostError) as err:
                fut.result(timeout=10)
            assert err.value.returncode == -signal.SIGKILL
            ch.stop()

    def test_malformed_frame_closes_only_offending_connection(
            self, daemon):
        with connect(daemon, relay=True) as healthy_session, \
                connect(daemon, relay=True) as bad_session:
            healthy = healthy_session.code(ArrayEchoInterface,
                                           channel_type="thread")
            bad = bad_session.code(ArrayEchoInterface,
                                   channel_type="thread")
            assert bad.call("scale", 1.0, 1.0) == 1.0
            # inject garbage into the splice: the daemon's upstream
            # pump must drop THIS connection only
            with bad._send_lock:
                bad._sock.sendall(
                    b"EVIL" + struct.pack("<I", 8) + b"deadbeef"
                )
            with pytest.raises((ProtocolError, ConnectionLostError)):
                for _ in range(50):
                    bad.call("scale", 1.0, 1.0)
                    time.sleep(0.05)
            # the other tenant never noticed
            assert healthy.call("scale", 5.0, 5.0) == 25.0
            healthy.stop()

    def test_oversized_frame_closes_only_offending_connection(
            self, daemon):
        with connect(daemon, relay=True) as healthy_session, \
                connect(daemon, relay=True) as bad_session:
            healthy = healthy_session.code(ArrayEchoInterface,
                                           channel_type="thread")
            bad = bad_session.code(ArrayEchoInterface,
                                   channel_type="thread")
            with bad._send_lock:
                bad._sock.sendall(HEADER.pack(b"AMS2", MAX_FRAME + 1))
            with pytest.raises((ProtocolError, ConnectionLostError)):
                for _ in range(50):
                    bad.call("scale", 1.0, 1.0)
                    time.sleep(0.05)
            assert healthy.call("scale", 6.0, 7.0) == 42.0
            healthy.stop()

    def test_cancel_to_no_capability_pilot_degrades(self, daemon):
        """A pilot spawned without capabilities never acks cancel: the
        client-side abandon is all there is, and it must not wedge."""
        with connect(daemon, relay=True) as session:
            ch = session.code(
                functools.partial(SleepInterface, cost_s=1.0),
                channel_type="subprocess",
                channel_options={"pilot_capabilities": False,
                                 "stop_timeout": 3.0},
            )
            assert ch.relayed
            assert ch.transport_stats["cancel"] is False
            fut = ch.async_call("evolve_model", 1.0)
            time.sleep(0.1)
            assert fut.cancel() is True     # client-side only
            assert getattr(fut, "cancel_ack", None) is None
            with pytest.raises(CancelledError):
                fut.result(timeout=5)
            # the stray reply is dropped; the channel keeps working
            assert ch.call("get_model_time") in (0.0, 1.0)
            ch.stop()


# -- AMCX through the splice + RESTART ----------------------------------------


class TestRelayCancelAndRestart:
    def test_amcx_forwarded_to_hung_pilot(self, daemon):
        with connect(daemon, relay=True) as session:
            ch = session.code(
                functools.partial(SleepInterface, cost_s=30.0),
                channel_type="subprocess",
                channel_options={"stop_timeout": 2.0},
            )
            assert ch.transport_stats["cancel"] is True
            fut = ch.async_call("evolve_model", 30.0)
            time.sleep(0.3)
            assert fut.cancel() is True
            with pytest.raises(CancelledError):
                fut.result(timeout=5)
            # the pilot's worker_loop acked the spliced AMCX frame
            ack = fut.cancel_ack.result(timeout=10)
            assert ack["state"] in ("abandoned", "dequeued")
            ch.stop()

    def test_hung_remote_pilot_cancelled_and_restarted(self, daemon):
        """The acceptance scenario: a hung pilot BEHIND the daemon is
        cancelled via forwarded AMCX and respawned by RESTART, and the
        graph finishes with the replacement pilot — all end to end
        through the relay."""
        with connect(daemon, relay=True) as session:
            code = session.code(SleepCode, cost_s=1.5,
                                channel_type="subprocess",
                                channel_options={"stop_timeout": 3.0})
            assert code.channel.relayed
            restarted = []

            def unhang(node):
                restarted.append(node.name)
                code.parameters.cost_s = 0.01

            graph = TaskGraph()
            graph.add(
                "hung",
                lambda: code.evolve_model.async_(
                    1 | nbody_system.time
                ),
                code=code,
            )
            results = graph.run(
                timeout=0.3, fault_policy=FaultPolicy.RESTART,
                on_restart=unhang,
            )
            assert restarted == ["hung"]
            assert graph["hung"].state == "done"
            assert "hung" in results
            # the replacement pilot went through the splice again
            assert code.channel.relayed
            code.stop()


# -- adaptive micro-batching ---------------------------------------------------


class TestAutobatch:
    def test_async_calls_coalesce_into_one_frame(self):
        channel = SocketChannel(ArrayEchoInterface, autobatch=0.05)
        try:
            before = channel.frames_sent
            futures = [
                channel.async_call("scale", float(i), 2.0)
                for i in range(10)
            ]
            results = [f.result(timeout=10) for f in futures]
            assert results == [i * 2.0 for i in range(10)]
            assert channel.frames_sent - before == 1
        finally:
            channel.stop()

    def test_ordering_preserved_across_flushes(self):
        channel = SocketChannel(
            lambda: SleepInterface(cost_s=0.0), autobatch=0.002
        )
        try:
            channel.call("ensure_state", "RUN")
            futures = [
                channel.async_call("evolve_model", float(i + 1))
                for i in range(20)
            ]
            for f in futures:
                f.result(timeout=10)
            # in-order execution: the final clock is the LAST end time
            assert channel.call("get_model_time") == 20.0
        finally:
            channel.stop()

    def test_sync_call_flushes_queued_asyncs_first(self):
        channel = SocketChannel(
            lambda: SleepInterface(cost_s=0.0), autobatch=60.0
        )
        try:
            channel.call("ensure_state", "RUN")
            queued = channel.async_call("evolve_model", 5.0)
            # program order: the sync call must observe the queued
            # evolve, not overtake it
            assert channel.call("get_model_time") == 5.0
            assert queued.result(timeout=5) == 0
        finally:
            channel.stop()

    def test_window_expiry_flushes_without_waiter(self):
        channel = SocketChannel(ArrayEchoInterface, autobatch=0.01)
        try:
            future = channel.async_call("scale", 6.0, 7.0)
            deadline = time.monotonic() + 5.0
            while not future.done() and time.monotonic() < deadline:
                time.sleep(0.005)
            assert future.done()    # nobody called result()
            assert future.result(timeout=1) == 42.0
        finally:
            channel.stop()

    def test_queued_entry_cancel_before_flush(self):
        channel = SocketChannel(ArrayEchoInterface, autobatch=60.0)
        try:
            before = channel.frames_sent
            future = channel.async_call("scale", 1.0, 1.0)
            assert future.cancel() is True
            with pytest.raises(CancelledError, match="before its frame"):
                future.result(timeout=1)
            assert channel.frames_sent == before    # never hit the wire
        finally:
            channel.stop()

    def test_queue_full_flushes_immediately(self):
        from repro.rpc.channel import _AUTOBATCH_MAX_QUEUE

        channel = SocketChannel(ArrayEchoInterface, autobatch=60.0)
        try:
            futures = [
                channel.async_call("scale", float(i), 1.0)
                for i in range(_AUTOBATCH_MAX_QUEUE)
            ]
            # hitting the cap flushed WITHOUT any blocking waiter
            assert [f.result(timeout=10) for f in futures] == \
                [float(i) for i in range(_AUTOBATCH_MAX_QUEUE)]
        finally:
            channel.stop()

    def test_v1_peer_keeps_autobatch_off(self):
        channel = new_channel(
            "sockets", ArrayEchoInterface, worker_max_version=1,
            autobatch=0.01,
        )
        try:
            assert channel._autobatch is None
            assert channel.call("scale", 2.0, 2.0) == 4.0
        finally:
            channel.stop()

    def test_relay_auto_enables_for_wan_profile_only(self, daemon):
        with connect(daemon, relay=True) as session:
            local = session.code(ArrayEchoInterface,
                                 channel_type="thread")
            assert local._autobatch is None
            remote = session.code(ArrayEchoInterface,
                                  channel_type="thread",
                                  resource="cluster.example.org")
            assert remote._autobatch == "adaptive"
            futures = [
                remote.async_call("scale", float(i), 3.0)
                for i in range(8)
            ]
            assert [f.result(timeout=10) for f in futures] == \
                [i * 3.0 for i in range(8)]
            local.stop()
            remote.stop()

    def test_connection_loss_fails_queued_entries(self):
        channel = SocketChannel(ArrayEchoInterface, autobatch=60.0)
        try:
            future = channel.async_call("scale", 1.0, 1.0)
            # kill the socket before the window expires: the queued
            # entry must fail with the loss error, never hang
            channel._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises((ConnectionLostError, ProtocolError)):
                future.result(timeout=5)
        finally:
            channel.stop()

    def test_concurrent_producers_keep_program_order(self):
        channel = SocketChannel(ArrayEchoInterface, autobatch=0.001)
        try:
            results = []
            errors = []

            def produce(base):
                try:
                    futs = [
                        channel.async_call("scale", base + i, 1.0)
                        for i in range(25)
                    ]
                    results.extend(f.result(timeout=10) for f in futs)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=produce, args=(100.0 * t,))
                for t in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            assert len(results) == 100
        finally:
            channel.stop()
