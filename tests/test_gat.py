"""PyGAT tests: adaptor selection, job lifecycle, files."""

import pytest

from repro.ibis.gat import (
    GAT,
    GATError,
    JobDescription,
    JobState,
    SshAdaptor,
)
from repro.jungle import FirewallPolicy, Host, Jungle, Site


@pytest.fixture
def jungle():
    j = Jungle()
    client_site = j.new_site("home", "standalone", middleware="local")
    client = Host("client", policy=FirewallPolicy.OPEN)
    client_site.add_host(client, frontend=True)

    cluster = Site("cluster", "cluster")
    j.add_site(cluster)
    fe = Host("fe", policy=FirewallPolicy.OPEN)
    cluster.add_host(fe, frontend=True)
    cluster.add_hosts("node", 4, policy=FirewallPolicy.ISOLATED)
    cluster.add_middleware("pbs", j.env, slots=4)

    gpu_site = Site("gpusite", "cluster")
    j.add_site(gpu_site)
    gpu_fe = Host("gpu-fe", policy=FirewallPolicy.OPEN)
    gpu_site.add_host(gpu_fe, frontend=True)
    from repro.jungle import TESLA_C2050
    gpu_site.add_hosts("gnode", 2, gpu=TESLA_C2050)
    gpu_site.add_middleware("ssh", j.env)

    j.connect("home", "cluster", 0.005, 1.0)
    j.connect("home", "gpusite", 0.002, 1.0)
    return j


@pytest.fixture
def gat(jungle):
    return GAT(jungle, jungle.host("client"))


class TestAdaptorSelection:
    def test_pbs_site_uses_pbs_adaptor(self, gat, jungle):
        job = gat.submit_job(
            JobDescription("j", duration_s=1.0),
            jungle.sites["cluster"],
        )
        assert job.adaptor_name == "PbsAdaptor"

    def test_ssh_site_uses_ssh_adaptor(self, gat, jungle):
        job = gat.submit_job(
            JobDescription("j", duration_s=1.0),
            jungle.sites["gpusite"],
        )
        assert job.adaptor_name == "SshAdaptor"

    def test_no_adaptor_raises_with_causes(self, gat, jungle):
        empty = Site("bare", "standalone")
        jungle.add_site(empty)
        empty.add_host(Host("h"))
        with pytest.raises(GATError) as err:
            gat.submit_job(JobDescription("j"), empty)
        assert len(err.value.causes) > 0

    def test_adaptor_log(self, gat, jungle):
        gat.submit_job(
            JobDescription("logged", duration_s=1.0),
            jungle.sites["cluster"],
        )
        assert ("logged", "cluster", "pbs") in gat.adaptor_log

    def test_preferred_adaptor_ordering(self, jungle):
        # a site speaking two middlewares honours the preference
        site = jungle.sites["cluster"]
        site.add_middleware("ssh", jungle.env)
        gat = GAT(jungle, jungle.host("client"))
        job = gat.submit_job(
            JobDescription("j", duration_s=1.0), site, preferred="ssh"
        )
        assert job.adaptor_name == "SshAdaptor"


class TestJobLifecycle:
    def test_states_progress(self, gat, jungle):
        job = gat.submit_job(
            JobDescription("j", duration_s=10.0),
            jungle.sites["cluster"],
        )
        states = []
        job.add_state_listener(lambda j, s: states.append(s))
        jungle.env.run()
        assert states == [
            JobState.PRE_STAGING, JobState.SCHEDULED,
            JobState.RUNNING, JobState.POST_STAGING, JobState.STOPPED,
        ]

    def test_pbs_queue_delay_charged(self, gat, jungle):
        job = gat.submit_job(
            JobDescription("j", duration_s=1.0),
            jungle.sites["cluster"],
        )
        jungle.env.run()
        # pbs: 5 s submit + 30 s queue
        assert job.started_at >= 35.0

    def test_when_state_event(self, gat, jungle):
        job = gat.submit_job(
            JobDescription("j", duration_s=5.0),
            jungle.sites["gpusite"],
        )
        event = job.when_state(JobState.RUNNING)
        jungle.env.run()
        assert event.triggered
        assert job.state == JobState.STOPPED

    def test_when_state_already_passed(self, gat, jungle):
        job = gat.submit_job(
            JobDescription("j", duration_s=1.0),
            jungle.sites["gpusite"],
        )
        jungle.env.run()
        event = job.when_state(JobState.RUNNING)   # already beyond
        assert event.triggered

    def test_needs_gpu_host_selection(self, gat, jungle):
        job = gat.submit_job(
            JobDescription("j", duration_s=1.0, needs_gpu=True),
            jungle.sites["gpusite"],
        )
        jungle.env.run()
        assert all(h.has_gpu for h in job.hosts)

    def test_gpu_unavailable_is_submission_error(self, gat, jungle):
        job = gat.submit_job(
            JobDescription("j", duration_s=1.0, needs_gpu=True),
            jungle.sites["cluster"],
        )
        jungle.env.run()
        assert job.state == JobState.SUBMISSION_ERROR
        assert isinstance(job.error, GATError)

    def test_node_count_respected(self, gat, jungle):
        job = gat.submit_job(
            JobDescription("j", node_count=3, duration_s=1.0),
            jungle.sites["cluster"],
        )
        jungle.env.run()
        assert len(job.hosts) == 3

    def test_slots_serialise_jobs(self, gat, jungle):
        first = gat.submit_job(
            JobDescription("a", node_count=4, duration_s=50.0),
            jungle.sites["cluster"],
        )
        second = gat.submit_job(
            JobDescription("b", node_count=4, duration_s=1.0),
            jungle.sites["cluster"],
        )
        jungle.env.run()
        assert second.started_at >= first.stopped_at - 1e-9

    def test_cancel(self, gat, jungle):
        job = gat.submit_job(
            JobDescription("j", duration_s=1e9),
            jungle.sites["gpusite"],
        )
        jungle.env.run(until=30.0)
        assert job.state == JobState.RUNNING
        job.cancel()
        jungle.env.run(until=40.0)
        assert job.state == JobState.STOPPED
        assert job.error is not None

    def test_body_runs_with_hosts(self, gat, jungle):
        seen = {}

        def body(env, hosts):
            seen["hosts"] = [h.name for h in hosts]
            yield env.timeout(1.0)

        job = gat.submit_job(
            JobDescription("j", node_count=2, body=body),
            jungle.sites["cluster"],
        )
        jungle.env.run()
        assert len(seen["hosts"]) == 2
        assert job.state == JobState.STOPPED


class TestFiles:
    def test_stage_in_charges_transfer(self, gat, jungle):
        gat.submit_job(
            JobDescription(
                "j", duration_s=1.0,
                stage_in={"data.bin": 10_000_000},
            ),
            jungle.sites["cluster"],
        )
        jungle.env.run()
        assert jungle.network.traffic.matrix("file")[
            ("home", "cluster")] == 10_000_000

    def test_stage_out(self, gat, jungle):
        gat.submit_job(
            JobDescription(
                "j", duration_s=1.0, stage_out={"result": 2048}
            ),
            jungle.sites["cluster"],
        )
        jungle.env.run()
        assert jungle.network.traffic.matrix("file")[
            ("cluster", "home")] == 2048

    def test_job_table(self, gat, jungle):
        gat.submit_job(
            JobDescription("named", duration_s=1.0, role="hydro"),
            jungle.sites["cluster"],
        )
        table = gat.job_table()
        assert table[0]["name"] == "named"
        assert table[0]["role"] == "hydro"
