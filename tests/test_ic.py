"""Initial-condition generator tests (Plummer, IMFs)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ic import (
    new_kroupa_mass_distribution,
    new_plummer_gas_model,
    new_plummer_model,
    new_salpeter_mass_distribution,
)
from repro.units import nbody_system, units


class TestPlummer:
    def test_standard_units(self):
        p = new_plummer_model(300, rng=0)
        assert p.total_mass().number == pytest.approx(1.0)
        assert p.kinetic_energy().number == pytest.approx(0.25, rel=1e-8)
        assert p.potential_energy(
            G=nbody_system.G).number == pytest.approx(-0.5, rel=1e-8)

    def test_virial_radius_unity(self):
        p = new_plummer_model(300, rng=1)
        assert p.virial_radius().number == pytest.approx(1.0, rel=1e-6)

    def test_centered(self):
        p = new_plummer_model(100, rng=2)
        assert np.allclose(p.center_of_mass().number, 0.0, atol=1e-12)
        assert np.allclose(
            p.center_of_mass_velocity().number, 0.0, atol=1e-12
        )

    def test_determinism(self):
        a = new_plummer_model(50, rng=7)
        b = new_plummer_model(50, rng=7)
        assert np.array_equal(a.position.number, b.position.number)

    def test_different_seeds_differ(self):
        a = new_plummer_model(50, rng=7)
        b = new_plummer_model(50, rng=8)
        assert not np.array_equal(a.position.number, b.position.number)

    def test_converted_to_si(self):
        conv = nbody_system.nbody_to_si(
            500.0 | units.MSun, 2.0 | units.parsec
        )
        p = new_plummer_model(100, convert_nbody=conv, rng=3)
        assert p.total_mass().value_in(units.MSun) == pytest.approx(
            500.0
        )

    @pytest.mark.slow
    def test_half_mass_radius_matches_plummer(self):
        # Plummer: r_h ~ 0.7686 in virial units
        p = new_plummer_model(3000, rng=4)
        r_h = p.lagrangian_radii(fractions=(0.5,)).number[0]
        assert r_h == pytest.approx(0.7686, rel=0.1)

    def test_unscaled_model(self):
        p = new_plummer_model(100, rng=5, do_scale=False)
        assert p.total_mass().number == pytest.approx(1.0)


class TestGasPlummer:
    def test_cold_bulk(self):
        gas = new_plummer_gas_model(200, rng=0)
        assert np.all(gas.velocity.number == 0.0)

    def test_internal_energy_positive_and_central(self):
        gas = new_plummer_gas_model(500, rng=1)
        u = gas.u.number
        assert np.all(u > 0)
        r = np.linalg.norm(gas.position.number, axis=1)
        # central gas is hotter than the outskirts
        assert u[r < 0.3].mean() > u[r > 1.5].mean()

    def test_gas_fraction_scales_mass(self):
        gas = new_plummer_gas_model(100, rng=2, gas_fraction=0.5)
        assert gas.total_mass().number == pytest.approx(0.5)

    def test_si_conversion(self):
        conv = nbody_system.nbody_to_si(
            100.0 | units.MSun, 1.0 | units.parsec
        )
        gas = new_plummer_gas_model(100, convert_nbody=conv, rng=3)
        assert gas.u.unit.powers == (
            units.J / units.kg).base_form().powers


class TestIMF:
    def test_salpeter_bounds(self):
        m = new_salpeter_mass_distribution(
            500, mass_min=0.5, mass_max=20.0, rng=0
        ).value_in(units.MSun)
        assert m.min() >= 0.5
        assert m.max() <= 20.0

    def test_salpeter_slope(self):
        m = new_salpeter_mass_distribution(
            200000, mass_min=1.0, mass_max=100.0, rng=1
        ).value_in(units.MSun)
        # fraction above 10 MSun for alpha=2.35 on [1,100]:
        # (10^-1.35 - 100^-1.35)/(1 - 100^-1.35) ~ 0.0435
        frac = (m > 10.0).mean()
        assert frac == pytest.approx(0.0435, rel=0.15)

    def test_kroupa_bounds_and_median(self):
        m = new_kroupa_mass_distribution(
            20000, mass_min=0.08, mass_max=50.0, rng=2
        ).value_in(units.MSun)
        assert m.min() >= 0.08
        assert m.max() <= 50.0
        # Kroupa median is well below a solar mass
        assert 0.1 < np.median(m) < 0.6

    def test_determinism(self):
        a = new_salpeter_mass_distribution(100, rng=5)
        b = new_salpeter_mass_distribution(100, rng=5)
        assert np.array_equal(a.number, b.number)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=10, max_value=2000),
        st.floats(min_value=0.1, max_value=2.0),
    )
    def test_salpeter_property_bounds(self, n, m_lo):
        m = new_salpeter_mass_distribution(
            n, mass_min=m_lo, mass_max=m_lo * 50.0, rng=n
        ).value_in(units.MSun)
        assert len(m) == n
        assert m.min() >= m_lo * (1 - 1e-12)
        assert m.max() <= m_lo * 50.0 * (1 + 1e-12)
